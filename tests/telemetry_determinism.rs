//! The telemetry determinism contract, differentially tested.
//!
//! Every metric in [`synergy::telemetry::Namespace::Det`] must be
//! *bit-identical* between `SchedPolicy::Sequential` and
//! `SchedPolicy::Parallel` for the same fleet and round count — the
//! comparison is byte equality of [`synergy::Registry::det_text`], the
//! canonical snapshot rendering. Host-time samples (round wall costs,
//! worker-pool behaviour) live in the `NonDet` namespace and are excluded.
//!
//! Also pins the exporter wire formats (Prometheus text + jsonish) against
//! golden files under `tests/golden/`; regenerate with
//! `SYNERGY_BLESS_GOLDEN=1 cargo test -p synergy --test telemetry_determinism`.

use proptest::prelude::*;
use synergy::telemetry::{self, Namespace, Registry, POW2_BUCKETS};
use synergy::workloads::{fuzz_input_data, generate_fuzz_design, HOSTILE_DESIGN};
use synergy::{Device, DomainId, EnginePolicy, Hypervisor, Runtime, SchedPolicy};

/// One tenant of a differential fleet.
enum Tenant {
    /// A Table-1 workload by name.
    Workload { name: String, policy: EnginePolicy },
    /// A fuzz-generated design from this seed.
    Fuzz { seed: u64 },
    /// A tenant whose engine errors mid-round (exercises quarantine
    /// counters and flight-recorder postmortems).
    Hostile,
}

/// Builds the same fleet on a fresh hypervisor under the given policy.
fn build_hv(fleet: &[Tenant], sched: SchedPolicy) -> Hypervisor {
    let mut hv = Hypervisor::new(Device::f1());
    hv.set_sched_policy(sched);
    hv.set_round_tick_cap(8);
    for (i, tenant) in fleet.iter().enumerate() {
        let domain = DomainId(i as u64 + 1);
        match tenant {
            Tenant::Workload { name, policy } => {
                let bench = synergy::workloads::by_name(name).expect("known workload");
                let mut rt = Runtime::with_policy(
                    bench.name.clone(),
                    &bench.source,
                    &bench.top,
                    &bench.clock,
                    *policy,
                )
                .expect("workload compiles");
                if let Some(path) = &bench.input_path {
                    rt.add_file(
                        path.clone(),
                        synergy::workloads::input_data(&bench.name, 4096),
                    );
                }
                hv.connect(rt, domain, false);
            }
            Tenant::Fuzz { seed } => {
                let d = generate_fuzz_design(*seed);
                let mut rt = Runtime::with_policy(
                    format!("fuzz_{}", seed),
                    &d.source,
                    &d.top,
                    &d.clock,
                    if seed % 2 == 0 {
                        EnginePolicy::Auto
                    } else {
                        EnginePolicy::Interpreter
                    },
                )
                .expect("fuzz designs always elaborate");
                if let Some(path) = &d.input_path {
                    rt.add_file(path.clone(), fuzz_input_data(*seed, 64));
                }
                hv.connect(rt, domain, seed % 2 == 0);
            }
            Tenant::Hostile => {
                let rt = Runtime::new("hostile", HOSTILE_DESIGN, "Hostile", "clock").unwrap();
                hv.connect(rt, domain, false);
            }
        }
    }
    hv
}

/// Runs `rounds` rounds under both policies and asserts the deterministic
/// metric snapshots are byte-identical (and non-empty — an accidentally
/// disabled gate must not vacuously pass).
fn assert_det_metrics_identical(fleet: &[Tenant], workers: usize, rounds: usize) {
    telemetry::set_enabled(true);
    let mut seq = build_hv(fleet, SchedPolicy::Sequential);
    let mut par = build_hv(fleet, SchedPolicy::Parallel { workers });
    for _ in 0..rounds {
        seq.run_round(0.00002).expect("sequential round");
        par.run_round(0.00002).expect("parallel round");
    }
    let s = seq.metrics().det_text();
    let p = par.metrics().det_text();
    assert!(!s.is_empty(), "deterministic snapshot is empty");
    assert_eq!(
        s, p,
        "deterministic metric snapshots diverge between sequential and {}-worker parallel",
        workers
    );
}

#[test]
fn each_table1_workload_has_policy_identical_det_metrics() {
    for bench in synergy::workloads::all() {
        // Each workload twice — compiled where it lowers, and interpreted —
        // so both engines' instrumentation paths are compared.
        let fleet = vec![
            Tenant::Workload {
                name: bench.name.clone(),
                policy: EnginePolicy::Auto,
            },
            Tenant::Workload {
                name: bench.name.clone(),
                policy: EnginePolicy::Interpreter,
            },
        ];
        assert_det_metrics_identical(&fleet, 4, 3);
    }
}

#[test]
fn mixed_table1_fleet_has_policy_identical_det_metrics() {
    let mut fleet: Vec<Tenant> = synergy::workloads::all()
        .into_iter()
        .enumerate()
        .map(|(i, bench)| Tenant::Workload {
            name: bench.name,
            policy: if i % 2 == 0 {
                EnginePolicy::Auto
            } else {
                EnginePolicy::Interpreter
            },
        })
        .collect();
    fleet.push(Tenant::Hostile);
    assert_det_metrics_identical(&fleet, 4, 3);
}

/// Sweeps `SYNERGY_METRICS_FUZZ_SEEDS` fuzz fleets (default 16; the nightly
/// CI sweep sets 256) of four generated tenants each.
#[test]
fn fuzz_fleet_sweep_has_policy_identical_det_metrics() {
    let fleets: u64 = std::env::var("SYNERGY_METRICS_FUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
        / 4;
    for fleet_idx in 0..fleets.max(1) {
        let base = fleet_idx * 4;
        let fleet: Vec<Tenant> = (base..base + 4).map(|seed| Tenant::Fuzz { seed }).collect();
        let workers = 2 + (fleet_idx as usize % 7);
        assert_det_metrics_identical(&fleet, workers, 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random mixed fleets (Table-1 + fuzz + one hostile tenant), random
    /// worker counts: the deterministic snapshot must not depend on the
    /// scheduling policy even when tenants error and quarantine mid-run.
    #[test]
    fn random_mixed_fleets_have_policy_identical_det_metrics(
        seed in any::<u64>(),
        workers in 2usize..9,
        size in 2usize..5,
    ) {
        let names: Vec<String> =
            synergy::workloads::all().into_iter().map(|b| b.name).collect();
        let mut fleet: Vec<Tenant> = (0..size as u64)
            .map(|i| {
                let s = seed.wrapping_add(i);
                if s % 3 == 0 {
                    Tenant::Workload {
                        name: names[(s % names.len() as u64) as usize].clone(),
                        policy: EnginePolicy::Auto,
                    }
                } else {
                    Tenant::Fuzz { seed: s }
                }
            })
            .collect();
        fleet.insert((seed % (size as u64 + 1)) as usize, Tenant::Hostile);
        assert_det_metrics_identical(&fleet, workers, 2);
    }
}

// ------------------------------------------------------------ exporter golden

/// Builds a fixed registry covering every metric kind, both namespaces,
/// labelled and unlabelled keys, and histogram overflow — the exporter
/// surface the golden files pin.
fn golden_registry() -> Registry {
    telemetry::set_enabled(true);
    let mut r = Registry::default();
    r.counter_add(
        Namespace::Det,
        "runtime_ticks_total",
        &[("engine", "compiled_regalloc")],
        4096,
    );
    r.counter_add(
        Namespace::Det,
        "runtime_ticks_total",
        &[("engine", "software")],
        128,
    );
    r.counter_add(Namespace::Det, "hv_rounds_total", &[], 12);
    r.gauge_set(Namespace::Det, "hv_drr_banked_ticks", &[], -3);
    r.gauge_set(Namespace::Det, "hv_tenants", &[], 7);
    r.observe(
        Namespace::Det,
        "hv_round_latency_ticks",
        &[],
        POW2_BUCKETS,
        1,
    );
    r.observe(
        Namespace::Det,
        "hv_round_latency_ticks",
        &[],
        POW2_BUCKETS,
        300,
    );
    // Past the last bound: lands in the implicit overflow bucket.
    r.observe(
        Namespace::Det,
        "hv_round_latency_ticks",
        &[],
        POW2_BUCKETS,
        1 << 30,
    );
    r.counter_add(
        Namespace::NonDet,
        "hv_host_round_ns_total",
        &[("app", "3")],
        1_500_000,
    );
    r.gauge_set(Namespace::NonDet, "hv_pool_steals", &[], 2);
    r
}

fn golden_path(name: &str) -> String {
    format!("{}/../../tests/golden/{}", env!("CARGO_MANIFEST_DIR"), name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("SYNERGY_BLESS_GOLDEN").is_ok() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({}); bless with SYNERGY_BLESS_GOLDEN=1",
            path, e
        )
    });
    assert_eq!(
        actual, expected,
        "exporter output diverged from {}; re-bless with SYNERGY_BLESS_GOLDEN=1 if intentional",
        name
    );
}

#[test]
fn prometheus_exporter_matches_golden() {
    assert_matches_golden("metrics_snapshot.txt", &golden_registry().to_prometheus());
}

#[test]
fn jsonish_exporter_matches_golden() {
    assert_matches_golden("metrics_snapshot.json", &golden_registry().to_jsonish());
}

#[test]
fn det_text_excludes_the_nondeterministic_namespace() {
    let r = golden_registry();
    let det = r.det_text();
    assert!(det.contains("runtime_ticks_total"));
    assert!(!det.contains("hv_host_round_ns_total"));
    assert!(!det.contains("hv_pool_steals"));
}
