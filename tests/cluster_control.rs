//! Cluster control-plane chaos tests: the crash-recovery convergence
//! differential, the env-scaled seeded fault-plan sweep (zero tenant loss),
//! and property tests that a corrupted or truncated fleet checkpoint can
//! never panic the restore path.
//!
//! The convergence contract under test: a fleet that crashes and recovers
//! through the checkpoint ring + journal replay must end bit-identical (per
//! tenant, register-for-register) to a fleet that never crashed, under
//! either scheduling policy. `SYNERGY_CHAOS_PLANS=<n>` widens the seeded
//! sweep (CI nightly runs 256 plans; the default is a fast smoke handful).

use proptest::prelude::*;
use std::collections::BTreeMap;
use synergy::interp::Value;
use synergy::{
    BitstreamCache, ControlConfig, ControlPlane, Device, FaultPlan, Hypervisor, SchedPolicy,
    TenantSpec,
};

const COUNTER: &str = r#"
    module Counter(input wire clock, output wire [31:0] out);
        reg [31:0] count = 0;
        always @(posedge clock) count <= count + 1;
        assign out = count;
    endmodule
"#;

fn spec(i: usize) -> TenantSpec {
    TenantSpec {
        name: format!("tenant-{:03}", i),
        source: COUNTER.to_string(),
        top: "Counter".to_string(),
        clock: "clock".to_string(),
        domain: i as u64 + 1,
        io_bound: false,
    }
}

/// Drives a small fleet through a fixed churn schedule: admissions spread
/// over the first rounds, two departures mid-run. Returns the plane after
/// `rounds` control rounds plus the names expected alive at the end.
fn run_fleet(sched: SchedPolicy, plan: FaultPlan, rounds: u64) -> (ControlPlane, Vec<String>) {
    let mut cp = ControlPlane::new(ControlConfig {
        software_capacity: Some(8),
        checkpoint_interval: 3,
        ..ControlConfig::default()
    });
    cp.set_sched_policy(sched);
    cp.add_node(Device::de10());
    cp.add_node(Device::de10());
    cp.add_node(Device::f1());
    cp.set_fault_plan(plan);

    let mut alive: Vec<String> = Vec::new();
    for round in 0..rounds {
        if round < 5 {
            for i in 0..2 {
                let s = spec((round * 2 + i) as usize);
                alive.push(s.name.clone());
                cp.admit(s).expect("admission with headroom");
            }
        }
        if round == 6 {
            for name in ["tenant-001", "tenant-004"] {
                alive.retain(|n| n != name);
                cp.depart(name).expect("departing a live tenant");
            }
        }
        cp.step().expect("control round");
    }
    (cp, alive)
}

/// Per-tenant register state, name-keyed. Compares `.values` only: snapshot
/// `time` is virtual nanoseconds and legitimately differs across engine
/// placements; register values are determined by rounds lived alone.
fn states(cp: &ControlPlane, names: &[String]) -> BTreeMap<String, BTreeMap<String, Value>> {
    names
        .iter()
        .map(|n| {
            let snap = cp
                .tenant_state(n)
                .unwrap_or_else(|| panic!("tenant {} must be alive", n));
            (n.clone(), snap.values)
        })
        .collect()
}

fn assert_no_loss(cp: &ControlPlane, expected: &[String]) {
    assert!(
        cp.lost_tenants().is_empty(),
        "loss ledger must stay empty, got {:?}",
        cp.lost_tenants()
    );
    let present: Vec<String> = cp.tenants().into_iter().map(|t| t.name).collect();
    for name in expected {
        assert!(
            present.contains(name),
            "tenant {} silently lost (present: {:?})",
            name,
            present
        );
    }
    assert_eq!(present.len(), expected.len(), "no surplus tenants either");
}

/// The pinned chaos differential: one kill-node fault, recovery via the
/// checkpoint ring, convergence to the never-crashed fleet — under both
/// scheduling policies, which must also agree with each other.
#[test]
fn crashed_fleet_converges_to_never_crashed_fleet_under_both_policies() {
    let mut chaos_plan = FaultPlan::none();
    chaos_plan.push(7, synergy::FaultKind::KillNode(0));

    let mut reference_states = None;
    for sched in [
        SchedPolicy::Sequential,
        SchedPolicy::Parallel { workers: 4 },
    ] {
        let (reference, expected) = run_fleet(sched, FaultPlan::none(), 12);
        let (chaos, chaos_expected) = run_fleet(sched, chaos_plan.clone(), 12);
        assert_eq!(expected, chaos_expected);
        assert_eq!(
            chaos.recoveries().len(),
            1,
            "the kill must trigger recovery"
        );
        assert_no_loss(&chaos, &expected);
        assert_no_loss(&reference, &expected);

        let ref_states = states(&reference, &expected);
        let chaos_states = states(&chaos, &expected);
        assert_eq!(
            ref_states, chaos_states,
            "recovered fleet must be bit-identical to the never-crashed fleet ({:?})",
            sched
        );
        // Scheduling policy may not leak into tenant state either: both
        // policies' reference fleets agree register-for-register.
        match &reference_states {
            None => reference_states = Some(ref_states),
            Some(prev) => assert_eq!(
                prev, &ref_states,
                "SchedPolicy must not change tenant state"
            ),
        }
    }
}

/// The env-scaled chaos sweep: every seeded fault plan (node kills, failed
/// migrations, corrupted checkpoints) must end with zero tenant loss and
/// states bit-identical to the fault-free reference. CI nightly sets
/// `SYNERGY_CHAOS_PLANS=256`.
#[test]
fn seeded_chaos_sweep_never_loses_a_tenant() {
    let plans: u64 = std::env::var("SYNERGY_CHAOS_PLANS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let rounds = 12;
    let (reference, expected) = run_fleet(SchedPolicy::Sequential, FaultPlan::none(), rounds);
    let reference_states = states(&reference, &expected);

    for seed in 0..plans {
        let plan = FaultPlan::seeded(seed, rounds, 3);
        let faults = format!("{:?}", plan.events());
        let (chaos, chaos_expected) = run_fleet(SchedPolicy::Sequential, plan, rounds);
        assert_eq!(expected, chaos_expected);
        assert_no_loss(&chaos, &expected);
        assert_eq!(
            reference_states,
            states(&chaos, &expected),
            "seed {} (faults {}) must converge to the fault-free fleet",
            seed,
            faults
        );
    }
}

/// A clean fleet checkpoint taken mid-churn restores bit-identically into a
/// fresh hypervisor (the invariant coordinated recovery leans on).
#[test]
fn clean_mid_churn_fleet_checkpoint_restores_bit_identically() {
    let cache = BitstreamCache::new();
    let mut hv = Hypervisor::with_cache(Device::de10(), cache.clone());
    for i in 0..3 {
        let s = spec(i);
        let rt = synergy::Runtime::new(s.name, &s.source, &s.top, &s.clock).unwrap();
        let app = hv.connect(rt, synergy::DomainId(s.domain), s.io_bound);
        let _ = hv.deploy(app);
        // Stagger connects across rounds so tenants are mid-flight at
        // different ages when the checkpoint is cut.
        hv.run_round(0.001).unwrap();
    }
    let bytes = hv.checkpoint_fleet();
    let mut restored = Hypervisor::with_cache(Device::de10(), cache);
    let ids = restored.restore_fleet(&bytes).unwrap();
    assert_eq!(ids, hv.apps());
    for app in hv.apps() {
        assert_eq!(
            restored.app(app).unwrap().peek_state(),
            hv.app(app).unwrap().peek_state(),
            "tenant {} must restore bit-identically",
            app.0
        );
    }
}

/// Builds the checkpoint bytes once: compiling tenants per proptest case
/// would dominate the suite's runtime.
fn fleet_bytes() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| {
        let mut hv = Hypervisor::new(Device::de10());
        for i in 0..2 {
            let s = spec(i);
            let rt = synergy::Runtime::new(s.name, &s.source, &s.top, &s.clock).unwrap();
            let app = hv.connect(rt, synergy::DomainId(s.domain), s.io_bound);
            let _ = hv.deploy(app);
        }
        hv.run_round(0.001).unwrap();
        hv.checkpoint_fleet()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any byte of a fleet checkpoint yields a typed error (or, for
    /// flips the CRC provably cannot miss inside the payload, never a panic
    /// and never a half-restored hypervisor).
    #[test]
    fn corrupted_fleet_checkpoint_never_panics(pos in 0usize..10_000, mask in 1usize..256) {
        let mut bytes = fleet_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= mask as u8;
        let mut hv = Hypervisor::new(Device::de10());
        if hv.restore_fleet(&bytes).is_err() {
            prop_assert!(hv.apps().is_empty(), "a failed restore must not leave tenants behind");
        }
    }

    /// Truncating a fleet checkpoint at any point yields a typed error, never
    /// a panic, and never a half-restored hypervisor.
    #[test]
    fn truncated_fleet_checkpoint_never_panics(cut in 0usize..10_000) {
        let bytes = fleet_bytes();
        let cut = cut % bytes.len();
        let mut hv = Hypervisor::new(Device::de10());
        let result = hv.restore_fleet(&bytes[..cut]);
        prop_assert!(result.is_err(), "a truncated frame must be rejected");
        prop_assert!(hv.apps().is_empty(), "a failed restore must not leave tenants behind");
    }
}
