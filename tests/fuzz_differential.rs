//! Cross-engine differential fuzzing: random designs from the
//! `synergy-workloads` fuzz generator run in lockstep on the reference
//! interpreter, *both* compiled-engine tiers (stack bytecode and the
//! register-allocated word tier), and an optimizer leg (the full
//! `synergy-opt` pass pipeline over the netlist before regalloc lowering),
//! and must stay bit-identical — snapshots at every tick, `$display`
//! output, raised effects, and exit codes. Any divergence is an engine (or
//! optimizer) bug by definition (the interpreter is the semantic
//! reference), and its seed gets pinned in the regression corpus below.
//! Constructing the regalloc tier strictly (no silent stack fallback) also
//! proves the translation is total over the fuzz envelope.

use proptest::prelude::*;
use synergy::codegen::{compile, CompiledSim, Tier};
use synergy::interp::{BufferEnv, Interpreter};
use synergy::workloads::{fuzz_input_data, generate_fuzz_design};

/// Ticks per fuzzed design: enough for loops, streams, and `$finish` paths
/// to fire while keeping a 256-case CI run in seconds.
const TICKS: usize = 24;

/// Runs one seed in lockstep and asserts bit-identical behaviour.
fn assert_engines_agree(seed: u64) {
    let d = generate_fuzz_design(seed);
    let design = synergy::vlog::compile(&d.source, &d.top)
        .unwrap_or_else(|e| panic!("seed {}: invalid design: {}\n{}", seed, e, d.source));
    let prog = compile(&design).unwrap_or_else(|e| {
        panic!(
            "seed {}: generated design left the compiled envelope: {}\n{}",
            seed, e, d.source
        )
    });
    let mut interp = Interpreter::new(design);
    let mut sim = CompiledSim::with_tier(prog.clone(), Tier::RegAlloc).unwrap_or_else(|e| {
        panic!(
            "seed {}: regalloc tier must translate every fuzz design: {}\n{}",
            seed, e, d.source
        )
    });
    let mut stack = CompiledSim::with_tier(prog.clone(), Tier::Stack).unwrap();
    let mut oprog = prog;
    let report = synergy::opt::optimize(&mut oprog);
    assert!(
        !report.any_reverted(),
        "seed {}: an optimization pass failed validation and reverted\n{}",
        seed,
        d.source
    );
    let mut osim = CompiledSim::with_tier(oprog, Tier::RegAlloc).unwrap_or_else(|e| {
        panic!(
            "seed {}: optimized netlist left the regalloc envelope: {}\n{}",
            seed, e, d.source
        )
    });
    let mut ienv = BufferEnv::new();
    let mut cenv = BufferEnv::new();
    let mut senv = BufferEnv::new();
    let mut oenv = BufferEnv::new();
    if let Some(path) = &d.input_path {
        let data = fuzz_input_data(seed, TICKS / 2);
        ienv.add_file(path.clone(), data.clone());
        senv.add_file(path.clone(), data.clone());
        oenv.add_file(path.clone(), data.clone());
        cenv.add_file(path.clone(), data);
    }

    for t in 0..TICKS {
        // Runtime errors (e.g. a generated design that genuinely oscillates)
        // must surface *identically* on both engines — error parity is part
        // of the differential contract.
        let ir = interp.tick(&d.clock, &mut ienv);
        let cr = sim.tick(&d.clock, &mut cenv);
        let sr = stack.tick(&d.clock, &mut senv);
        let or = osim.tick(&d.clock, &mut oenv);
        match (&cr, &sr) {
            (Ok(()), Ok(())) => {}
            (Err(a), Err(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "seed {}: tiers error differently at tick {}\n{}",
                seed,
                t,
                d.source
            ),
            _ => panic!(
                "seed {}: only one tier errored at tick {} (regalloc: {:?}, stack: {:?})\n{}",
                seed, t, cr, sr, d.source
            ),
        }
        match (&cr, &or) {
            (Ok(()), Ok(())) => {}
            (Err(a), Err(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "seed {}: optimized leg errors differently at tick {}\n{}",
                seed,
                t,
                d.source
            ),
            _ => panic!(
                "seed {}: only one leg errored at tick {} (O0: {:?}, optimized: {:?})\n{}",
                seed, t, cr, or, d.source
            ),
        }
        match (&ir, &cr) {
            (Ok(()), Ok(())) => {}
            (Err(a), Err(b)) => {
                assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "seed {}: engines error differently at tick {}\n{}",
                    seed,
                    t,
                    d.source
                );
                // Shared failure: stop ticking but still require the output
                // and effects produced *before* the error to match.
                break;
            }
            _ => panic!(
                "seed {}: only one engine errored at tick {} (interp: {:?}, compiled: {:?})\n{}",
                seed, t, ir, cr, d.source
            ),
        }
        let isnap = interp.save_state();
        assert_eq!(
            isnap,
            sim.save_state(),
            "seed {}: snapshots diverge at tick {}\n{}",
            seed,
            t,
            d.source
        );
        assert_eq!(
            isnap,
            stack.save_state(),
            "seed {}: stack-tier snapshots diverge at tick {}\n{}",
            seed,
            t,
            d.source
        );
        assert_eq!(
            isnap,
            osim.save_state(),
            "seed {}: optimized snapshots diverge at tick {}\n{}",
            seed,
            t,
            d.source
        );
        assert_eq!(
            interp.finished(),
            sim.finished(),
            "seed {}: finish state diverges at tick {}\n{}",
            seed,
            t,
            d.source
        );
        assert_eq!(
            interp.finished(),
            osim.finished(),
            "seed {}: optimized finish state diverges at tick {}\n{}",
            seed,
            t,
            d.source
        );
        if interp.finished().is_some() {
            break;
        }
    }
    assert_eq!(
        ienv.output_text(),
        cenv.output_text(),
        "seed {}: output diverges\n{}",
        seed,
        d.source
    );
    assert_eq!(
        ienv.output_text(),
        senv.output_text(),
        "seed {}: stack-tier output diverges\n{}",
        seed,
        d.source
    );
    assert_eq!(
        ienv.output_text(),
        oenv.output_text(),
        "seed {}: optimized output diverges\n{}",
        seed,
        d.source
    );
    let ieffects = interp.take_effects();
    assert_eq!(
        ieffects,
        sim.take_effects(),
        "seed {}: effects diverge\n{}",
        seed,
        d.source
    );
    assert_eq!(
        ieffects,
        osim.take_effects(),
        "seed {}: optimized effects diverge\n{}",
        seed,
        d.source
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 256 random designs per run: interpreter and compiled engine must be
    /// indistinguishable on all of them.
    #[test]
    fn random_designs_run_identically_on_both_engines(seed in any::<u64>()) {
        assert_engines_agree(seed);
    }
}

/// Regression corpus: the fixed seed spread pinned in
/// `synergy_workloads::REGRESSION_CORPUS` so the exact same designs run on
/// every CI invocation (the random sweep above draws fresh seeds per harness
/// change); CI also uploads the corpus sources as a workflow artifact via
/// `showseed corpus`. Fuzzing with this generator caught two real engine
/// bugs during development, both now also pinned as structural unit tests in
/// `synergy-codegen`:
///
/// * merged partial-driver groups did not rebase branch targets when member
///   bytecode was concatenated (executor stack underflow mid-propagate) —
///   see `partial_continuous_drivers_match_interpreter`;
/// * zero-delay self-triggering designs hung `settle()` forever on *both*
///   engines instead of erroring — see
///   `self_triggering_designs_error_identically_on_both_engines`.
#[test]
fn regression_corpus_stays_bit_identical() {
    for &seed in synergy::workloads::REGRESSION_CORPUS {
        assert_engines_agree(seed);
    }
}
