//! Cross-crate integration tests: the full SYNERGY pipeline from Verilog source to
//! virtualized execution on the simulated data-center substrate.

use synergy::transform::{transform, TransformOptions};
use synergy::workloads;
use synergy::{BitstreamCache, Device, DomainId, ExecMode, Runtime, SynergyVm};

/// Every Table-1 benchmark runs the whole pipeline (parse → elaborate → transform →
/// hardware execution) and produces the same architectural state as pure software
/// interpretation.
#[test]
fn hardware_execution_matches_software_for_every_benchmark() {
    for bench in workloads::all() {
        let ticks = 40u64;
        // Software reference.
        let mut sw = Runtime::new(
            format!("{}-sw", bench.name),
            &bench.source,
            &bench.top,
            &bench.clock,
        )
        .unwrap();
        // Hardware run.
        let mut hw = Runtime::new(
            format!("{}-hw", bench.name),
            &bench.source,
            &bench.top,
            &bench.clock,
        )
        .unwrap();
        if let Some(path) = &bench.input_path {
            let data = workloads::input_data(&bench.name, 4 * ticks as usize);
            sw.add_file(path.clone(), data.clone());
            hw.add_file(path.clone(), data);
        }
        sw.run_ticks(2).unwrap();
        hw.run_ticks(2).unwrap();
        let cache = BitstreamCache::new();
        hw.migrate_to_hardware(&Device::f1(), &cache).unwrap();

        sw.run_ticks(ticks).unwrap();
        hw.run_ticks(ticks).unwrap();

        let sw_metric = sw.get_bits(&bench.metric_var).unwrap().to_u64();
        let hw_metric = hw.get_bits(&bench.metric_var).unwrap().to_u64();
        assert_eq!(
            sw_metric, hw_metric,
            "{}: hardware and software progress must match after {} ticks",
            bench.name, ticks
        );
        assert!(sw_metric > 0, "{}: benchmark made no progress", bench.name);
    }
}

/// The suspend/resume/migrate loop preserves program semantics across device types
/// and engine kinds (software ↔ DE10 ↔ F1).
#[test]
fn state_round_trips_across_engines_and_devices() {
    let bench = workloads::mips32();
    let cache = BitstreamCache::new();
    let mut rt = Runtime::new("mips", &bench.source, &bench.top, &bench.clock).unwrap();
    rt.run_ticks(50).unwrap();
    rt.migrate_to_hardware(&Device::de10(), &cache).unwrap();
    rt.run_ticks(100).unwrap();
    let snapshot = rt.save("mid");
    let instret_at_save = rt.get_bits("instret_lo").unwrap().to_u64();

    // Resume the snapshot on F1 and in software; both continue identically for the
    // next 25 ticks.
    let mut on_f1 = Runtime::new("mips-f1", &bench.source, &bench.top, &bench.clock).unwrap();
    on_f1.migrate_to_hardware(&Device::f1(), &cache).unwrap();
    on_f1.restore(&snapshot);
    let mut in_sw = Runtime::new("mips-sw", &bench.source, &bench.top, &bench.clock).unwrap();
    in_sw.restore(&snapshot);

    assert_eq!(
        on_f1.get_bits("instret_lo").unwrap().to_u64(),
        instret_at_save
    );
    on_f1.run_ticks(25).unwrap();
    in_sw.run_ticks(25).unwrap();
    assert_eq!(
        on_f1.get_bits("instret_lo").unwrap().to_u64(),
        in_sw.get_bits("instret_lo").unwrap().to_u64()
    );
    assert_eq!(
        on_f1.get_bits("phase").unwrap().to_u64(),
        in_sw.get_bits("phase").unwrap().to_u64()
    );
}

/// The hypervisor multiplexes multiple tenants on one device while each program
/// keeps making progress and the protection layer keeps them apart.
#[test]
fn multi_tenant_deployment_over_the_facade() {
    let mut vm = SynergyVm::new();
    vm.set_stream_len(50_000);
    let node = vm.add_device(Device::f1());
    let df = vm.launch_benchmark(node, "df", false).unwrap();
    let bitcoin = vm.launch_benchmark(node, "bitcoin", false).unwrap();
    vm.deploy(node, df).unwrap();
    let outcome = vm.deploy(node, bitcoin).unwrap();
    assert!(outcome.engine > 0);

    for _ in 0..3 {
        vm.run_round(node, 0.0001).unwrap();
    }
    assert!(vm.metric(node, df).unwrap() > 0);
    assert!(vm.metric(node, bitcoin).unwrap() > 0);
    assert_eq!(
        vm.app(node, df).unwrap().mode(),
        ExecMode::Hardware("f1".into())
    );
    // Both transformed sub-programs are present in the coalesced monolithic design.
    let mono = vm.cluster().node(node).monolithic_source();
    assert!(mono.contains("Df__synergy"));
    assert!(mono.contains("Bitcoin__synergy"));
}

/// Workload migration through the cluster API: progress carries over and the
/// bitstream cache is shared between nodes.
#[test]
fn cluster_migration_preserves_benchmark_progress() {
    let mut vm = SynergyVm::new();
    let de10 = vm.add_device(Device::de10());
    let f1 = vm.add_device(Device::f1());
    let app = vm.launch_benchmark(de10, "bitcoin", false).unwrap();
    vm.deploy(de10, app).unwrap();
    vm.run_round(de10, 0.0002).unwrap();
    let before = vm.metric(de10, app).unwrap();
    assert!(before > 0);

    let (app, _) = vm.migrate(de10, app, f1).unwrap();
    assert_eq!(vm.metric(f1, app).unwrap(), before);
    vm.run_round(f1, 0.0002).unwrap();
    assert!(vm.metric(f1, app).unwrap() > before);
}

/// The quiescent variants of every benchmark still execute correctly and surface
/// yield events to the runtime.
#[test]
fn quiescent_variants_execute_and_yield() {
    for bench in workloads::all() {
        let mut rt = Runtime::new(
            format!("{}-q", bench.name),
            &bench.quiescent_source,
            &bench.top,
            &bench.clock,
        )
        .unwrap();
        if let Some(path) = &bench.input_path {
            rt.add_file(path.clone(), workloads::input_data(&bench.name, 256));
        }
        let (_, events) = rt.run_ticks(20).unwrap();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, synergy::RuntimeEvent::Yielded)),
            "{}: quiescent variant should raise yield events",
            bench.name
        );
    }
}

/// The transformation is stable: transforming the emitted module again still
/// produces a valid, executable design (the nesting property the hypervisor relies
/// on when it re-coalesces programs).
#[test]
fn transformed_output_is_itself_a_valid_program() {
    let bench = workloads::regex();
    let design = synergy::vlog::compile(&bench.source, &bench.top).unwrap();
    let first = transform(&design, TransformOptions::default()).unwrap();
    // The generated module parses, elaborates, and can be interpreted directly.
    let reparsed = synergy::vlog::compile(&first.source, first.name()).unwrap();
    let mut interp = synergy::interp::Interpreter::new(reparsed);
    let mut env = synergy::interp::BufferEnv::new();
    for _ in 0..10 {
        interp.tick("__clk", &mut env).unwrap();
    }
    assert!(interp.get_bits("__state").is_ok());
}

/// Protection domains are enforced end to end: the hull rejects cross-domain
/// access even when both tenants share the same fabric.
#[test]
fn protection_domains_are_enforced() {
    use synergy::amorphos::{Hull, Quiescence};
    use synergy::fpga::SynthOptions;
    let device = Device::f1();
    let mut hull = Hull::new(&device);
    let design = synergy::vlog::compile(&workloads::df().source, "Df").unwrap();
    let report = synergy::fpga::estimate(&design, &device, SynthOptions::native(&device));
    let a = hull.register(DomainId(10), "a", report, Quiescence::Transparent);
    let b = hull.register(DomainId(20), "b", report, Quiescence::Transparent);
    assert!(hull.check_access(DomainId(10), a).is_ok());
    assert!(hull.check_access(DomainId(20), b).is_ok());
    assert!(hull.check_access(DomainId(10), b).is_err());
    assert!(hull.check_access(DomainId(20), a).is_err());
}
