//! Property-based tests over the core data structures and invariants: `Bits`
//! arithmetic, parser/printer round-trips, state-capture round-trips (both
//! within one engine and across interpreter ⇄ compiled-engine migrations),
//! and the equivalence of software and SYNERGY-transformed hardware
//! execution.

use proptest::prelude::*;
use synergy::codegen::{compile as codegen_compile, CompiledSim, Tier};
use synergy::interp::{BufferEnv, Interpreter};
use synergy::runtime::{CheckpointError, EnginePolicy, ExecMode};
use synergy::vlog::{parse, parser, printer, Bits};
use synergy::workloads::{fuzz_input_data, generate_fuzz_design};
use synergy::{BitstreamCache, Device, Runtime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Addition on `Bits` matches 128-bit integer addition modulo the width.
    #[test]
    fn bits_add_matches_integer_arithmetic(a in any::<u64>(), b in any::<u64>(), width in 1usize..100) {
        let x = Bits::from_u64(width, a);
        let y = Bits::from_u64(width, b);
        let sum = x.add(&y);
        let mask = if width >= 128 { u128::MAX } else { (1u128 << width) - 1 };
        let expected = ((a as u128 & mask) + (b as u128 & mask)) & mask;
        prop_assert_eq!(sum.to_u128(), expected);
        prop_assert_eq!(sum.width(), width);
    }

    /// Subtraction then addition round-trips.
    #[test]
    fn bits_sub_add_round_trip(a in any::<u64>(), b in any::<u64>(), width in 1usize..80) {
        let x = Bits::from_u64(width, a);
        let y = Bits::from_u64(width, b);
        prop_assert_eq!(x.sub(&y).add(&y), x.resize(width));
    }

    /// Slicing the result of a concatenation recovers the original operands.
    #[test]
    fn bits_concat_slice_inverse(a in any::<u32>(), b in any::<u32>()) {
        let hi = Bits::from_u64(32, a as u64);
        let lo = Bits::from_u64(32, b as u64);
        let joined = hi.concat(&lo);
        prop_assert_eq!(joined.width(), 64);
        prop_assert_eq!(joined.slice(63, 32).to_u64(), a as u64);
        prop_assert_eq!(joined.slice(31, 0).to_u64(), b as u64);
    }

    /// Decimal formatting matches the numeric value for any width.
    #[test]
    fn bits_decimal_formatting(v in any::<u64>(), width in 1usize..70) {
        let b = Bits::from_u64(width, v);
        let expected = if width >= 64 { v } else { v & ((1u64 << width) - 1) };
        prop_assert_eq!(b.to_dec_string(), expected.to_string());
    }

    /// Shifts never exceed the declared width.
    #[test]
    fn bits_shift_stays_in_width(v in any::<u64>(), width in 1usize..96, n in 0usize..130) {
        let b = Bits::from_u64(width, v);
        prop_assert_eq!(b.shl(n).width(), width);
        prop_assert_eq!(b.shr(n).width(), width);
        for idx in width..width + 8 {
            prop_assert!(!b.shl(n).bit(idx));
        }
    }

    /// Printing an expression and re-parsing it evaluates to the same constant.
    #[test]
    fn printer_parser_round_trip_for_constants(a in 0u64..1_000_000, b in 1u64..1_000, shift in 0u64..16) {
        let text = format!("(({a} + {b}) * 3) ^ ({a} >> {shift})");
        let expr = parser::parse_expr(&text).unwrap();
        let direct = parser::const_eval(&expr, &|_| None).unwrap();
        let printed = printer::print_expr(&expr);
        let reparsed = parser::parse_expr(&printed).unwrap();
        let round_tripped = parser::const_eval(&reparsed, &|_| None).unwrap();
        prop_assert_eq!(direct.to_u64(), round_tripped.to_u64());
    }

    /// A generated counter design round-trips through the printer and behaves
    /// identically when re-elaborated.
    #[test]
    fn module_round_trip_preserves_behaviour(width in 2usize..16, increment in 1u64..7, ticks in 1u64..40) {
        let src = format!(
            "module Gen(input wire clock, output wire [{msb}:0] out);
                 reg [{msb}:0] value = 0;
                 always @(posedge clock) value <= value + {increment};
                 assign out = value;
             endmodule",
            msb = width - 1,
            increment = increment
        );
        let parsed = parse(&src).unwrap();
        let printed = printer::print_file(&parsed);
        let original = synergy::vlog::compile(&src, "Gen").unwrap();
        let reprinted = synergy::vlog::compile(&printed, "Gen").unwrap();

        let mut env = BufferEnv::new();
        let mut a = Interpreter::new(original);
        let mut b = Interpreter::new(reprinted);
        for _ in 0..ticks {
            a.tick("clock", &mut env).unwrap();
            b.tick("clock", &mut env).unwrap();
        }
        prop_assert_eq!(a.get_bits("out").unwrap(), b.get_bits("out").unwrap());
    }

    /// Software interpretation and SYNERGY-transformed hardware execution agree on
    /// a parameterised accumulator for arbitrary tick counts and inputs.
    #[test]
    fn software_and_hardware_execution_agree(seed in any::<u32>(), ticks in 1u64..30) {
        let src = format!(
            "module Acc(input wire clock, output wire [31:0] out);
                 reg [31:0] acc = {seed};
                 reg [31:0] step = 0;
                 always @(posedge clock) begin
                     step <= step + 1;
                     acc <= acc + (step ^ 32'h{seed:x});
                 end
                 assign out = acc;
             endmodule",
            seed = seed
        );
        let mut sw = Runtime::new("sw", &src, "Acc", "clock").unwrap();
        let mut hw = Runtime::new("hw", &src, "Acc", "clock").unwrap();
        let cache = BitstreamCache::new();
        hw.migrate_to_hardware(&Device::f1(), &cache).unwrap();
        sw.run_ticks(ticks).unwrap();
        hw.run_ticks(ticks).unwrap();
        prop_assert_eq!(
            sw.get_bits("out").unwrap().to_u64(),
            hw.get_bits("out").unwrap().to_u64()
        );
    }

    /// A snapshot saved on the interpreter restores into the compiled engine
    /// (and back) mid-run with bit-identical onward execution, for random
    /// generated designs — the property the runtime's engine-migration path
    /// (`Runtime::migrate_to_compiled` / `migrate_to_software`) relies on.
    #[test]
    fn snapshots_migrate_across_engines_for_random_designs(
        seed in any::<u64>(),
        warmup in 1usize..10,
        rest in 1usize..10,
    ) {
        let d = generate_fuzz_design(seed);
        if d.input_path.is_some() {
            // File-stream designs tie state to the SystemEnv's read cursor;
            // the workload-level migration test covers those.
            return;
        }
        let design = synergy::vlog::compile(&d.source, &d.top).unwrap();
        let prog = codegen_compile(&design).unwrap();

        // Two lineages warm up identically on the interpreter...
        let mut ienv = BufferEnv::new();
        let mut cenv = BufferEnv::new();
        let mut a = Interpreter::new(design.clone());
        let mut b = Interpreter::new(design.clone());
        for _ in 0..warmup {
            a.tick(&d.clock, &mut ienv).unwrap();
            b.tick(&d.clock, &mut cenv).unwrap();
        }

        // ...then lineage A hops onto a fresh interpreter while lineage B
        // hops onto the compiled engine (save on interp → restore on
        // compiled).
        let mut a2 = Interpreter::new(design.clone());
        a2.restore_state(&a.save_state());
        let mut sim = CompiledSim::new(prog);
        sim.restore_state(&b.save_state());
        for _ in 0..rest {
            a2.tick(&d.clock, &mut ienv).unwrap();
            sim.tick(&d.clock, &mut cenv).unwrap();
        }
        prop_assert_eq!(a2.save_state(), sim.save_state());

        // And back: save on compiled → restore on a fresh interpreter.
        let mut a3 = Interpreter::new(design.clone());
        a3.restore_state(&a2.save_state());
        let mut b3 = Interpreter::new(design);
        b3.restore_state(&sim.save_state());
        for _ in 0..rest {
            a3.tick(&d.clock, &mut ienv).unwrap();
            b3.tick(&d.clock, &mut cenv).unwrap();
        }
        prop_assert_eq!(a3.save_state(), b3.save_state());
        prop_assert_eq!(ienv.output_text(), cenv.output_text());
    }

    /// `Runtime::save`/`restore` round-trips across engine *policies*: a
    /// checkpoint captured under the interpreter restores into a strict
    /// compiled-engine runtime and vice versa, preserving counted state.
    #[test]
    fn runtime_checkpoints_span_engine_policies(ticks in 1u64..40, extra in 1u64..20) {
        let src = "module M(input wire clock, output wire [31:0] out);
                       reg [31:0] count = 0;
                       reg [31:0] twisted = 1;
                       always @(posedge clock) begin
                           count <= count + 1;
                           twisted <= (twisted << 1) ^ count;
                       end
                       assign out = twisted;
                   endmodule";

        // Interpreter → compiled.
        let mut sw = Runtime::new("sw", src, "M", "clock").unwrap();
        sw.run_ticks(ticks).unwrap();
        let snapshot = sw.save("hop");
        let mut ce =
            Runtime::with_policy("ce", src, "M", "clock", EnginePolicy::Compiled).unwrap();
        prop_assert_eq!(ce.mode(), ExecMode::Compiled);
        ce.restore(&snapshot);
        ce.run_ticks(extra).unwrap();
        prop_assert_eq!(ce.get_bits("count").unwrap().to_u64(), ticks + extra);

        // Compiled → interpreter: onward execution matches a never-migrated
        // interpreter lineage bit for bit.
        let back = ce.save("back");
        let mut sw2 = Runtime::new("sw2", src, "M", "clock").unwrap();
        sw2.restore(&back);
        sw2.run_ticks(extra).unwrap();
        let mut reference = Runtime::new("ref", src, "M", "clock").unwrap();
        reference.run_ticks(ticks + 2 * extra).unwrap();
        prop_assert_eq!(
            sw2.get_bits("twisted").unwrap(),
            reference.get_bits("twisted").unwrap()
        );
    }

    /// A snapshot migrates through the full software ladder — interpreter →
    /// stack tier → regalloc tier → interpreter — on fuzzed designs with
    /// bit-identical onward execution at every hop (the property the
    /// compiled engine's tier knob relies on: tiers are interchangeable at
    /// any snapshot boundary).
    #[test]
    fn snapshots_migrate_across_tiers_for_random_designs(
        seed in any::<u64>(),
        warmup in 1usize..8,
        rest in 1usize..8,
    ) {
        let d = generate_fuzz_design(seed);
        if d.input_path.is_some() {
            // File-stream designs tie state to the SystemEnv's read cursor;
            // the workload-level migration test covers those.
            return;
        }
        let design = synergy::vlog::compile(&d.source, &d.top).unwrap();
        let prog = codegen_compile(&design).unwrap();

        // Reference lineage stays on the interpreter throughout.
        let mut renv = BufferEnv::new();
        let mut menv = BufferEnv::new();
        let mut reference = Interpreter::new(design.clone());
        let mut warm = Interpreter::new(design.clone());
        for _ in 0..warmup {
            reference.tick(&d.clock, &mut renv).unwrap();
            warm.tick(&d.clock, &mut menv).unwrap();
        }

        // Hop 1: interpreter -> stack tier. (The reference hops onto a
        // fresh interpreter at each boundary too, since restores re-run
        // initial blocks.)
        let mut r2 = Interpreter::new(design.clone());
        r2.restore_state(&reference.save_state());
        let mut stack = CompiledSim::with_tier(prog.clone(), Tier::Stack).unwrap();
        stack.restore_state(&warm.save_state());
        for _ in 0..rest {
            r2.tick(&d.clock, &mut renv).unwrap();
            stack.tick(&d.clock, &mut menv).unwrap();
        }
        prop_assert_eq!(r2.save_state(), stack.save_state());

        // Hop 2: stack tier -> regalloc tier.
        let mut r3 = Interpreter::new(design.clone());
        r3.restore_state(&r2.save_state());
        let mut word = CompiledSim::with_tier(prog, Tier::RegAlloc).unwrap();
        word.restore_state(&stack.save_state());
        for _ in 0..rest {
            r3.tick(&d.clock, &mut renv).unwrap();
            word.tick(&d.clock, &mut menv).unwrap();
        }
        prop_assert_eq!(r3.save_state(), word.save_state());

        // Hop 3: regalloc tier -> interpreter.
        let mut r4 = Interpreter::new(design.clone());
        r4.restore_state(&r3.save_state());
        let mut back = Interpreter::new(design);
        back.restore_state(&word.save_state());
        for _ in 0..rest {
            r4.tick(&d.clock, &mut renv).unwrap();
            back.tick(&d.clock, &mut menv).unwrap();
        }
        prop_assert_eq!(r4.save_state(), back.save_state());
        prop_assert_eq!(renv.output_text(), menv.output_text());
    }

    /// A regalloc-tier snapshot round-trips through save/restore on a fresh
    /// regalloc-tier simulator of the same program (word arenas and `Val`
    /// fallbacks reconstruct the exact architectural state).
    #[test]
    fn regalloc_snapshots_round_trip_for_random_designs(
        seed in any::<u64>(),
        ticks in 1usize..12,
    ) {
        let d = generate_fuzz_design(seed);
        if d.input_path.is_some() {
            return;
        }
        let design = synergy::vlog::compile(&d.source, &d.top).unwrap();
        let prog = codegen_compile(&design).unwrap();
        let mut env = BufferEnv::new();
        let mut sim = CompiledSim::with_tier(prog.clone(), Tier::RegAlloc).unwrap();
        for _ in 0..ticks {
            sim.tick(&d.clock, &mut env).unwrap();
        }
        let snapshot = sim.save_state();
        let mut restored = CompiledSim::with_tier(prog, Tier::RegAlloc).unwrap();
        restored.restore_state(&snapshot);
        prop_assert_eq!(restored.save_state(), snapshot);
    }

    /// The durable checkpoint codec is the identity on random designs across
    /// all three engines: a runtime checkpointed mid-run restores to
    /// bit-identical state, continues in lockstep with the uninterrupted
    /// lineage (stream positions, RNG, and output included), and re-encodes
    /// to byte-identical checkpoint bytes.
    #[test]
    fn runtime_checkpoints_round_trip_on_random_designs(
        seed in any::<u64>(),
        engine in 0usize..3,
        warmup in 1u64..10,
        rest in 1u64..10,
    ) {
        let d = generate_fuzz_design(seed);
        let (policy, tier) = match engine {
            0 => (EnginePolicy::Interpreter, Tier::RegAlloc),
            1 => (EnginePolicy::Auto, Tier::Stack),
            _ => (EnginePolicy::Auto, Tier::RegAlloc),
        };
        let mut rt = Runtime::with_policy(
            format!("fuzz{}", seed), &d.source, &d.top, &d.clock, policy,
        ).unwrap();
        rt.set_compiled_tier(tier).unwrap();
        if let Some(path) = &d.input_path {
            rt.add_file(path.clone(), fuzz_input_data(seed, (warmup + rest) as usize));
        }
        if rt.run_ticks(warmup).is_err() {
            // Designs every engine rejects identically are covered by the
            // differential fuzz suite.
            return;
        }
        let bytes = rt.save_checkpoint();
        let mut restored = Runtime::restore_checkpoint(&bytes).unwrap();
        prop_assert_eq!(restored.mode(), rt.mode());
        prop_assert_eq!(restored.peek_state(), rt.peek_state());
        prop_assert_eq!(
            restored.save_checkpoint(),
            bytes.clone(),
            "decode → encode must be the identity"
        );

        let a = rt.run_ticks(rest);
        let b = restored.run_ticks(rest);
        match (&a, &b) {
            (Ok(_), Ok(_)) => {}
            (Err(x), Err(y)) => {
                prop_assert_eq!(x.to_string(), y.to_string(), "error parity after restore");
                return;
            }
            _ => prop_assert!(false, "one lineage errored, the other did not: {:?} vs {:?}", a, b),
        }
        prop_assert_eq!(restored.peek_state(), rt.peek_state());
        prop_assert_eq!(restored.env.output_text(), rt.env.output_text());
        prop_assert_eq!(restored.now_ns(), rt.now_ns());
    }

    /// Corrupting a checkpoint — truncation at *every* byte boundary, or a
    /// bit flip anywhere — always yields a typed decode error, never a panic
    /// and never a silently wrong runtime.
    #[test]
    fn checkpoint_corruption_yields_typed_errors_never_panics(
        seed in any::<u64>(),
        ticks in 1u64..6,
        flip_bit in 0usize..8,
    ) {
        let d = generate_fuzz_design(seed);
        let mut rt = Runtime::new(format!("fuzz{}", seed), &d.source, &d.top, &d.clock).unwrap();
        if let Some(path) = &d.input_path {
            rt.add_file(path.clone(), fuzz_input_data(seed, ticks as usize));
        }
        let _ = rt.run_ticks(ticks);
        let bytes = rt.save_checkpoint();

        // Truncation at every boundary.
        for len in 0..bytes.len() {
            match Runtime::restore_checkpoint(&bytes[..len]) {
                Err(CheckpointError::Decode(_)) => {}
                other => prop_assert!(
                    false,
                    "truncation at {} must be a typed decode error, got {:?}",
                    len,
                    other.map(|_| "a runtime")
                ),
            }
        }
        // A bit flip at every byte (the CRC trailer catches them all).
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 1 << flip_bit;
            prop_assert!(matches!(
                Runtime::restore_checkpoint(&bad),
                Err(CheckpointError::Decode(_))
            ), "flip at byte {} bit {} must be rejected", byte, flip_bit);
        }
        prop_assert!(Runtime::restore_checkpoint(&bytes).is_ok(), "pristine bytes still decode");
    }

    /// State capture and restore is lossless for arbitrary register contents.
    #[test]
    fn state_snapshots_round_trip(values in proptest::collection::vec(any::<u64>(), 1..8)) {
        let src = "module M(input wire clock, input wire [63:0] in, input wire we);
                       reg [63:0] stored = 0;
                       reg [31:0] writes = 0;
                       always @(posedge clock) if (we) begin
                           stored <= in;
                           writes <= writes + 1;
                       end
                   endmodule";
        let design = synergy::vlog::compile(src, "M").unwrap();
        let mut interp = Interpreter::new(design.clone());
        let mut env = BufferEnv::new();
        interp.set("we", Bits::from_u64(1, 1)).unwrap();
        for v in &values {
            interp.set("in", Bits::from_u64(64, *v)).unwrap();
            interp.tick("clock", &mut env).unwrap();
        }
        let snapshot = interp.save_state();
        let mut restored = Interpreter::new(design);
        restored.restore_state(&snapshot);
        prop_assert_eq!(
            restored.get_bits("stored").unwrap().to_u64(),
            *values.last().unwrap()
        );
        prop_assert_eq!(
            restored.get_bits("writes").unwrap().to_u64(),
            values.len() as u64
        );
    }
}
