//! The CI `snapshot-compat` gate: wire-format compatibility against the
//! committed golden checkpoints, plus the live-migration ⇄ wire-format
//! differential the ISSUE's acceptance criteria name.
//!
//! The goldens under `tests/golden/` are durable checkpoints of every
//! Table-1 workload on both compiled-engine tiers, captured by the shared
//! recipe in `synergy_workloads::golden` (regenerate deliberately with
//! `cargo run -p synergy-workloads --example showseed -- golden
//! tests/golden`). Restoring them here — from bytes produced by an *older
//! build* — and comparing against a freshly fast-forwarded run catches any
//! drift in the wire format, the engines, or the workloads. A wire-format
//! version bump fails this gate with a typed `UnknownVersion` error until
//! the goldens are regenerated.

use synergy::hv::SchedPolicy;
use synergy::snapshot::{crc32, SnapshotError, VERSION};
use synergy::workloads::golden::{
    golden_file_name, golden_matrix, golden_runtime, GOLDEN_RESUME_TICKS,
};
use synergy::{
    CheckpointError, Cluster, CompiledTier, Device, DomainId, EnginePolicy, ExecMode, Runtime,
    Style,
};

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn golden_bytes(name: &str) -> Vec<u8> {
    let path = golden_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {:?} ({}); regenerate with \
             `cargo run -p synergy-workloads --example showseed -- golden tests/golden`",
            path, e
        )
    })
}

/// Every committed golden restores, and the resumed run is bit-identical to
/// a fresh run fast-forwarded to the same tick.
#[test]
fn goldens_restore_bit_identically_to_fresh_runs() {
    for (bench, tier) in golden_matrix() {
        let bytes = golden_bytes(&golden_file_name(&bench, tier));
        let mut restored = Runtime::restore_checkpoint(&bytes).unwrap_or_else(|e| {
            panic!(
                "golden {} ({:?}) no longer decodes: {}; a deliberate format bump must \
                 regenerate the goldens",
                bench.name, tier, e
            )
        });
        assert_eq!(restored.mode(), ExecMode::Compiled);
        assert_eq!(restored.compiled_tier(), Some(tier));

        // The uninterrupted reference: the exact golden recipe, never
        // serialized, fast-forwarded to the same tick.
        let mut fresh = golden_runtime(&bench, tier).unwrap();
        assert_eq!(restored.ticks(), fresh.ticks());
        assert_eq!(
            restored.peek_state(),
            fresh.peek_state(),
            "{} ({:?}): restored state differs at the capture tick",
            bench.name,
            tier
        );

        restored.run_ticks(GOLDEN_RESUME_TICKS).unwrap();
        fresh.run_ticks(GOLDEN_RESUME_TICKS).unwrap();
        assert_eq!(
            restored.peek_state(),
            fresh.peek_state(),
            "{} ({:?}): resumed run diverges from the fast-forwarded fresh run",
            bench.name,
            tier
        );
        assert_eq!(restored.now_ns(), fresh.now_ns());
        assert_eq!(
            restored.env.output_text(),
            fresh.env.output_text(),
            "{} ({:?}): output diverges",
            bench.name,
            tier
        );
        assert_eq!(
            restored.get_bits(&bench.metric_var).unwrap(),
            fresh.get_bits(&bench.metric_var).unwrap(),
        );
    }
}

/// The gate demonstrably fails on a corrupted golden — with a typed error,
/// not a panic — and on a version bump.
#[test]
fn corrupted_and_version_bumped_goldens_are_rejected() {
    let (bench, tier) = golden_matrix().remove(0);
    let bytes = golden_bytes(&golden_file_name(&bench, tier));

    // Deliberate corruption: flip one payload bit.
    let mut corrupt = bytes.clone();
    corrupt[bytes.len() / 2] ^= 0x01;
    assert!(
        matches!(
            Runtime::restore_checkpoint(&corrupt),
            Err(CheckpointError::Decode(SnapshotError::Corrupt { .. }))
        ),
        "a corrupted golden must fail the gate with a typed CRC error"
    );

    // Truncation at several boundaries.
    for len in [0, 8, 16, bytes.len() - 1] {
        assert!(matches!(
            Runtime::restore_checkpoint(&bytes[..len]),
            Err(CheckpointError::Decode(
                SnapshotError::Truncated { .. } | SnapshotError::Corrupt { .. }
            ))
        ));
    }

    // A future format version is rejected by name, which is what forces a
    // deliberate golden regeneration after a bump. (Re-seal the CRC so the
    // version check, not the checksum, fires.)
    let mut future = bytes.clone();
    future[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
    let crc_at = future.len() - 4;
    let crc = crc32(&future[..crc_at]);
    future[crc_at..].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        Runtime::restore_checkpoint(&future),
        Err(CheckpointError::Decode(SnapshotError::UnknownVersion(v))) if v == VERSION + 1
    ));
}

/// `Cluster::live_migrate` (through the wire format) is bit-identical to
/// in-process migration on every Table-1 workload × both compiled tiers —
/// the tenant rides the compiled engine of the requested tier on the source
/// node and lands on hardware on the target node, exactly like `migrate`.
#[test]
fn live_migrate_matches_in_process_migration_on_all_workloads_and_tiers() {
    for (bench, tier) in golden_matrix() {
        let build = || {
            let mut cluster = Cluster::new();
            cluster.set_engine_policy(EnginePolicy::Auto);
            cluster.set_compiled_tier(tier);
            // Parallel rounds on the source node: checkpoint/migration
            // correctness must be independent of the scheduling policy.
            cluster.set_sched_policy(SchedPolicy::Parallel { workers: 2 });
            let src = cluster.add_node(Device::de10());
            let dst = cluster.add_node(Device::f1());
            let mut rt =
                Runtime::new(bench.name.clone(), &bench.source, &bench.top, &bench.clock).unwrap();
            if let Some(path) = &bench.input_path {
                rt.add_file(
                    path.clone(),
                    synergy::workloads::input_data(&bench.name, 2048),
                );
            }
            rt.run_ticks(2).unwrap();
            let io_bound = bench.style == Style::Streaming;
            let app = cluster.node_mut(src).connect(rt, DomainId(1), io_bound);
            assert_eq!(
                cluster.node(src).app(app).unwrap().compiled_tier(),
                Some(tier),
                "{}: tenant must ride the requested tier before migration",
                bench.name
            );
            cluster.node_mut(src).run_round(0.0002).unwrap();
            (cluster, src, dst, app, io_bound)
        };

        let (mut in_proc, src_a, dst_a, app_a, io_bound) = build();
        let (mut wire, src_b, dst_b, app_b, _) = build();
        let (new_a, out_a) = in_proc
            .migrate(src_a, app_a, dst_a, DomainId(2), io_bound)
            .unwrap();
        let (new_b, out_b) = wire
            .live_migrate(src_b, app_b, dst_b, DomainId(2), io_bound)
            .unwrap();
        assert_eq!(out_a, out_b, "{} ({:?})", bench.name, tier);
        assert_eq!(
            in_proc.node(dst_a).app(new_a).unwrap().peek_state(),
            wire.node(dst_b).app(new_b).unwrap().peek_state(),
            "{} ({:?}): post-migration snapshots differ",
            bench.name,
            tier
        );

        // And the runs stay in lockstep on the target node.
        let stats_a = in_proc.node_mut(dst_a).run_round(0.0002).unwrap();
        let stats_b = wire.node_mut(dst_b).run_round(0.0002).unwrap();
        assert_eq!(stats_a, stats_b, "{} ({:?})", bench.name, tier);
        assert_eq!(
            in_proc.node(dst_a).app(new_a).unwrap().peek_state(),
            wire.node(dst_b).app(new_b).unwrap().peek_state(),
            "{} ({:?}): post-round snapshots differ",
            bench.name,
            tier
        );
        assert_eq!(
            in_proc.node(dst_a).app(new_a).unwrap().now_ns(),
            wire.node(dst_b).app(new_b).unwrap().now_ns(),
        );
    }
}

/// A fleet checkpoint written to disk restores in a "new process"
/// (byte-for-byte through the filesystem) with the scheduler state intact —
/// the crash-recovery flow.
#[test]
fn fleet_checkpoints_survive_the_filesystem() {
    use synergy::{Hypervisor, SynergyVm};

    let mut vm = SynergyVm::new();
    vm.set_stream_len(1024);
    vm.set_engine_policy(EnginePolicy::Auto);
    vm.set_compiled_tier(CompiledTier::RegAlloc);
    let node = vm.add_device(Device::f1());
    let a = vm.launch_benchmark(node, "bitcoin", false).unwrap();
    let b = vm.launch_benchmark(node, "regex", false).unwrap();
    vm.deploy(node, a).unwrap();
    vm.run_round(node, 0.0002).unwrap();

    let dir = std::env::temp_dir().join("synergy_fleet_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fleet.ckpt");
    std::fs::write(&path, vm.cluster().node(node).checkpoint_fleet()).unwrap();

    let bytes = std::fs::read(&path).unwrap();
    let mut recovered = Hypervisor::new(Device::f1());
    recovered.restore_fleet(&bytes).unwrap();
    for app in [a, b] {
        assert_eq!(
            recovered.app(app).unwrap().peek_state(),
            vm.cluster().node(node).app(app).unwrap().peek_state(),
        );
    }
    let s1 = vm.run_round(node, 0.0002).unwrap();
    let s2 = recovered.run_round(0.0002).unwrap();
    assert_eq!(s1, s2, "post-recovery rounds are bit-identical");
    std::fs::remove_file(&path).ok();
}
