//! Parallel-vs-sequential hypervisor scheduling must be *observation
//! equivalent*: for any fleet of tenants, any worker count, and any number of
//! rounds, `SchedPolicy::Parallel` must produce bit-identical round stats
//! (ticks, tasks, events, errors — in stable tenant order), bit-identical
//! per-tenant `StateSnapshot`s and `$display` output, identical virtual
//! clocks, and the same quarantine set as `SchedPolicy::Sequential`.
//!
//! Fleets are drawn from the Table-1 workloads (mixed interpreter / compiled
//! / hardware engines) and from the `synergy-workloads` fuzz generator, and
//! include hostile tenants whose engines error mid-round.

use proptest::prelude::*;
use synergy::workloads::{fuzz_input_data, generate_fuzz_design, HOSTILE_DESIGN};
use synergy::{Device, DomainId, EnginePolicy, Hypervisor, RoundStats, Runtime, SchedPolicy};

/// One tenant of a differential fleet.
enum Tenant {
    /// A Table-1 workload by name; `deploy` moves it to the FPGA fabric.
    Workload {
        name: &'static str,
        policy: EnginePolicy,
        deploy: bool,
    },
    /// A fuzz-generated design from this seed.
    Fuzz { seed: u64, policy: EnginePolicy },
    /// A tenant whose engine errors mid-round.
    Hostile,
}

/// Builds the same fleet on a fresh hypervisor under the given scheduling
/// policy.
fn build_hv(fleet: &[Tenant], sched: SchedPolicy) -> Hypervisor {
    let mut hv = Hypervisor::new(Device::f1());
    hv.set_sched_policy(sched);
    // Bound ticks per round via the DRR quantum so fuzz designs (whose
    // simulated clocks tick very fast relative to the round's dt) stay cheap
    // and deterministic across policies.
    hv.set_round_tick_cap(8);
    for (i, tenant) in fleet.iter().enumerate() {
        let domain = DomainId(i as u64 + 1);
        match tenant {
            Tenant::Workload {
                name,
                policy,
                deploy,
            } => {
                let bench = synergy::workloads::by_name(name).expect("known workload");
                let mut rt = Runtime::with_policy(
                    bench.name.clone(),
                    &bench.source,
                    &bench.top,
                    &bench.clock,
                    *policy,
                )
                .expect("workload compiles");
                if let Some(path) = &bench.input_path {
                    rt.add_file(
                        path.clone(),
                        synergy::workloads::input_data(&bench.name, 4096),
                    );
                }
                rt.run_ticks(2).expect("software warm-up");
                let io_bound = bench.style == synergy::Style::Streaming;
                let app = hv.connect(rt, domain, io_bound);
                if *deploy {
                    hv.deploy(app).expect("deploys");
                }
            }
            Tenant::Fuzz { seed, policy } => {
                let d = generate_fuzz_design(*seed);
                let mut rt = Runtime::with_policy(
                    format!("fuzz_{}", seed),
                    &d.source,
                    &d.top,
                    &d.clock,
                    *policy,
                )
                .expect("fuzz designs always elaborate");
                if let Some(path) = &d.input_path {
                    rt.add_file(path.clone(), fuzz_input_data(*seed, 64));
                }
                hv.connect(rt, domain, seed % 2 == 0);
            }
            Tenant::Hostile => {
                let rt = Runtime::new("hostile", HOSTILE_DESIGN, "Hostile", "clock").unwrap();
                hv.connect(rt, domain, false);
            }
        }
    }
    hv
}

/// Runs `rounds` rounds under both policies and asserts observation
/// equivalence.
fn assert_policies_equivalent(fleet: &[Tenant], workers: usize, rounds: usize, dt: f64) {
    let mut seq = build_hv(fleet, SchedPolicy::Sequential);
    let mut par = build_hv(fleet, SchedPolicy::Parallel { workers });

    for round in 0..rounds {
        let s: Vec<RoundStats> = seq.run_round(dt).expect("sequential round is infallible");
        let p: Vec<RoundStats> = par.run_round(dt).expect("parallel round is infallible");
        assert_eq!(
            s, p,
            "round {} stats diverge between sequential and {}-worker parallel",
            round, workers
        );
    }

    assert_eq!(
        seq.quarantined(),
        par.quarantined(),
        "quarantine sets diverge"
    );
    // The telemetry determinism contract rides along: every Det-namespace
    // metric must be byte-identical across scheduling policies.
    assert_eq!(
        seq.metrics().det_text(),
        par.metrics().det_text(),
        "deterministic metric snapshots diverge"
    );
    for app in seq.apps() {
        let s = seq.app(app).unwrap();
        let p = par.app(app).unwrap();
        assert_eq!(
            s.peek_state(),
            p.peek_state(),
            "tenant {} snapshots diverge",
            app.0
        );
        assert_eq!(s.ticks(), p.ticks(), "tenant {} tick counts diverge", app.0);
        assert_eq!(s.now_ns(), p.now_ns(), "tenant {} clocks diverge", app.0);
        assert_eq!(s.mode(), p.mode(), "tenant {} engines diverge", app.0);
        assert_eq!(
            s.env.output_text(),
            p.env.output_text(),
            "tenant {} $display output diverges",
            app.0
        );
    }
}

#[test]
fn table1_mixed_engine_fleet_is_observation_equivalent() {
    // Every Table-1 workload twice: once on its best software engine, once
    // deployed to hardware — interpreter, compiled, and hardware engines all
    // in the same rounds.
    let mut fleet = Vec::new();
    for (i, bench) in synergy::workloads::all().into_iter().enumerate() {
        let name: &'static str = match bench.name.as_str() {
            "adpcm" => "adpcm",
            "bitcoin" => "bitcoin",
            "df" => "df",
            "mips32" => "mips32",
            "nw" => "nw",
            "regex" => "regex",
            other => panic!("unexpected workload {}", other),
        };
        fleet.push(Tenant::Workload {
            name,
            policy: if i % 2 == 0 {
                EnginePolicy::Auto
            } else {
                EnginePolicy::Interpreter
            },
            deploy: false,
        });
        fleet.push(Tenant::Workload {
            name,
            policy: EnginePolicy::Interpreter,
            deploy: true,
        });
    }
    assert_policies_equivalent(&fleet, 4, 3, 0.00002);
}

#[test]
fn hostile_tenants_quarantine_identically_under_parallelism() {
    let fleet = vec![
        Tenant::Workload {
            name: "bitcoin",
            policy: EnginePolicy::Auto,
            deploy: false,
        },
        Tenant::Hostile,
        Tenant::Fuzz {
            seed: 7,
            policy: EnginePolicy::Auto,
        },
        Tenant::Hostile,
    ];
    assert_policies_equivalent(&fleet, 3, 3, 0.00002);
}

/// Sweeps fleets of fuzz-generated tenants: `HV_FUZZ_FLEETS` fleets (default
/// 64) of 4 seeds each — ≥256 distinct fuzz seeds per run at the default,
/// more in the nightly CI sweep. Engine policy alternates per tenant so
/// interpreter and compiled tenants share every round.
#[test]
fn fuzz_fleets_are_observation_equivalent() {
    let fleets: u64 = std::env::var("HV_FUZZ_FLEETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for fleet_idx in 0..fleets {
        let base = fleet_idx * 4;
        let fleet: Vec<Tenant> = (base..base + 4)
            .map(|seed| Tenant::Fuzz {
                seed,
                policy: if seed % 2 == 0 {
                    EnginePolicy::Auto
                } else {
                    EnginePolicy::Interpreter
                },
            })
            .collect();
        // Vary the worker count across fleets so every pool width is hit.
        let workers = 2 + (fleet_idx as usize % 7);
        assert_policies_equivalent(&fleet, workers, 2, 0.00001);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fleets, random worker counts, always one hostile tenant that
    /// errors mid-round: parallel must remain observation-equivalent.
    #[test]
    fn random_fleets_with_errors_are_observation_equivalent(
        seed in any::<u64>(),
        workers in 2usize..9,
        size in 2usize..6,
    ) {
        let mut fleet: Vec<Tenant> = (0..size as u64)
            .map(|i| Tenant::Fuzz {
                seed: seed.wrapping_add(i),
                policy: if i % 2 == 0 { EnginePolicy::Auto } else { EnginePolicy::Interpreter },
            })
            .collect();
        // Splice the hostile tenant into a seed-dependent position.
        fleet.insert((seed % (size as u64 + 1)) as usize, Tenant::Hostile);
        assert_policies_equivalent(&fleet, workers, 2, 0.00001);
    }
}
