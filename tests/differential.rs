//! Differential tests: every Table-1 workload runs on both the reference
//! interpreter and the compiled engine (`synergy-codegen`), and must produce
//! bit-identical architectural state, output, effects, and exit codes —
//! including across mid-run snapshot migration in both directions. This is
//! the guarantee that lets the runtime's engine-selection policy move
//! programs freely along the interpret → compiled → hardware ladder.

use synergy::codegen::{compile, CompiledSim, Tier};
use synergy::interp::{BufferEnv, Interpreter};
use synergy::runtime::{CompiledTier, EnginePolicy, ExecMode, Runtime};
use synergy::workloads;

fn ticks_for(name: &str) -> usize {
    match name {
        // Enough to cover randomise + sort phases on the MIPS core.
        "mips32" => 400,
        // The NW tile loop is expensive on the tree-walking interpreter.
        "nw" => 60,
        _ => 250,
    }
}

/// Runs one benchmark variant on both engines in lockstep.
fn run_differential(quiescent: bool) {
    for bench in workloads::all() {
        let ticks = ticks_for(&bench.name);
        let design = synergy::vlog::compile(bench.source_for(quiescent), &bench.top).unwrap();
        let mut interp = Interpreter::new(design.clone());
        let prog = compile(&design).unwrap_or_else(|e| {
            panic!(
                "{} must be compilable by the codegen backend: {}",
                bench.name, e
            )
        });
        let mut sim = CompiledSim::new(prog.clone());
        assert_eq!(
            sim.tier(),
            Tier::RegAlloc,
            "{}: default compiled engine must run the regalloc tier",
            bench.name
        );
        // The stack tier runs the same lockstep: interp == stack == regalloc.
        let mut stack = CompiledSim::with_tier(prog, Tier::Stack).unwrap();

        let mut ienv = BufferEnv::new();
        let mut cenv = BufferEnv::new();
        if let Some(path) = &bench.input_path {
            let data = workloads::input_data(&bench.name, 4 * ticks);
            ienv.add_file(path.clone(), data.clone());
            cenv.add_file(path.clone(), data);
        }

        let mut senv = BufferEnv::new();
        if let Some(path) = &bench.input_path {
            let data = workloads::input_data(&bench.name, 4 * ticks);
            senv.add_file(path.clone(), data);
        }
        for t in 0..ticks {
            interp.tick(&bench.clock, &mut ienv).unwrap();
            sim.tick(&bench.clock, &mut cenv).unwrap();
            stack.tick(&bench.clock, &mut senv).unwrap();
            // Snapshot comparison every tick would be quadratic in state
            // size; sample the early ticks densely and then every 32nd.
            if t < 8 || t % 32 == 0 {
                let isnap = interp.save_state();
                assert_eq!(
                    isnap,
                    sim.save_state(),
                    "{}: snapshots diverge at tick {} (quiescent={})",
                    bench.name,
                    t,
                    quiescent
                );
                assert_eq!(
                    isnap,
                    stack.save_state(),
                    "{}: stack-tier snapshots diverge at tick {} (quiescent={})",
                    bench.name,
                    t,
                    quiescent
                );
            }
        }
        assert_eq!(
            stack.save_state(),
            sim.save_state(),
            "{}: tiers diverge (quiescent={})",
            bench.name,
            quiescent
        );
        assert_eq!(ienv.output_text(), senv.output_text());
        assert_eq!(
            interp.save_state(),
            sim.save_state(),
            "{}: final snapshots diverge (quiescent={})",
            bench.name,
            quiescent
        );
        assert_eq!(
            interp.get_bits(&bench.metric_var).unwrap(),
            sim.get_bits(&bench.metric_var).unwrap(),
            "{}: metric diverges",
            bench.name
        );
        assert!(
            sim.get_bits(&bench.metric_var).unwrap().to_u64() > 0,
            "{}: compiled engine made no progress",
            bench.name
        );
        assert_eq!(
            ienv.output_text(),
            cenv.output_text(),
            "{}: output diverges",
            bench.name
        );
        assert_eq!(
            interp.finished(),
            sim.finished(),
            "{}: exit diverges",
            bench.name
        );
        assert_eq!(
            interp.take_effects(),
            sim.take_effects(),
            "{}: effects diverge",
            bench.name
        );
    }
}

#[test]
fn every_workload_matches_the_interpreter_bit_for_bit() {
    run_differential(false);
}

#[test]
fn every_quiescent_workload_matches_the_interpreter_bit_for_bit() {
    run_differential(true);
}

/// Every workload (both variants) must actually *run on the compiled
/// engine* through the runtime's Auto policy — no silent interpreter
/// fallback — and raise an identical `RuntimeEvent` stream, metric value,
/// and output as an interpreter-policy runtime.
#[test]
fn workloads_use_the_compiled_engine_with_identical_event_streams() {
    for bench in workloads::all() {
        for quiescent in [false, true] {
            let ticks = if bench.name == "nw" { 40 } else { 120 };
            let mut fast = Runtime::with_policy(
                &bench.name,
                bench.source_for(quiescent),
                &bench.top,
                &bench.clock,
                EnginePolicy::Auto,
            )
            .unwrap();
            let mut slow = Runtime::with_policy(
                &bench.name,
                bench.source_for(quiescent),
                &bench.top,
                &bench.clock,
                EnginePolicy::Interpreter,
            )
            .unwrap();
            assert_eq!(
                fast.mode(),
                ExecMode::Compiled,
                "{} (quiescent={}) fell back to the interpreter",
                bench.name,
                quiescent
            );
            assert_eq!(
                fast.compiled_tier(),
                Some(CompiledTier::RegAlloc),
                "{} (quiescent={}) fell back to the stack tier",
                bench.name,
                quiescent
            );
            assert_eq!(slow.mode(), ExecMode::Software);
            if let Some(path) = &bench.input_path {
                let data = workloads::input_data(&bench.name, 4 * ticks as usize);
                fast.add_file(path.clone(), data.clone());
                slow.add_file(path.clone(), data);
            }
            let (_, fast_events) = fast.run_ticks(ticks).unwrap();
            let (_, slow_events) = slow.run_ticks(ticks).unwrap();
            assert_eq!(
                fast_events, slow_events,
                "{}: runtime event streams diverge (quiescent={})",
                bench.name, quiescent
            );
            assert_eq!(
                fast.get_bits(&bench.metric_var).unwrap(),
                slow.get_bits(&bench.metric_var).unwrap(),
                "{}: metric diverges across engine policies",
                bench.name
            );
            assert_eq!(
                fast.env.output_text(),
                slow.env.output_text(),
                "{}: output diverges across engine policies",
                bench.name
            );
            assert_eq!(fast.finished(), slow.finished());
        }
    }
}

/// Mid-run snapshot migration through the compiled engine behaves exactly
/// like migration through a fresh interpreter: after warmup both lineages hop
/// engines at the same points (re-running `initial` blocks on restore, per
/// the reference semantics) and must stay bit-identical throughout.
#[test]
fn snapshots_migrate_between_engines_mid_run() {
    for bench in workloads::all() {
        let warmup = 40;
        let half = 20;
        let design = synergy::vlog::compile(&bench.source, &bench.top).unwrap();
        let stream = workloads::input_data(&bench.name, 8 * (warmup + 2 * half));

        let mut ienv = BufferEnv::new();
        let mut cenv = BufferEnv::new();
        if let Some(path) = &bench.input_path {
            ienv.add_file(path.clone(), stream.clone());
            cenv.add_file(path.clone(), stream.clone());
        }

        // Shared warmup on the interpreter.
        let mut a = Interpreter::new(design.clone());
        let mut b = Interpreter::new(design.clone());
        for _ in 0..warmup {
            a.tick(&bench.clock, &mut ienv).unwrap();
            b.tick(&bench.clock, &mut cenv).unwrap();
        }

        // Lineage A hops onto a fresh interpreter; lineage B onto the
        // compiled engine. Both restores re-run initial blocks.
        let mut a2 = Interpreter::new(design.clone());
        a2.restore_state(&a.save_state());
        let mut sim = CompiledSim::new(compile(&design).unwrap());
        sim.restore_state(&b.save_state());
        for _ in 0..half {
            a2.tick(&bench.clock, &mut ienv).unwrap();
            sim.tick(&bench.clock, &mut cenv).unwrap();
        }
        assert_eq!(
            a2.save_state(),
            sim.save_state(),
            "{}: compiled hop diverged from interpreter hop",
            bench.name
        );

        // And both hop back onto fresh interpreters.
        let mut a3 = Interpreter::new(design.clone());
        a3.restore_state(&a2.save_state());
        let mut b3 = Interpreter::new(design);
        b3.restore_state(&sim.save_state());
        for _ in 0..half {
            a3.tick(&bench.clock, &mut ienv).unwrap();
            b3.tick(&bench.clock, &mut cenv).unwrap();
        }
        assert_eq!(
            a3.save_state(),
            b3.save_state(),
            "{}: lineages diverged after hopping back",
            bench.name
        );
        assert_eq!(
            ienv.output_text(),
            cenv.output_text(),
            "{}: output diverges",
            bench.name
        );
    }
}
