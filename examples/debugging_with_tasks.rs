//! Unsynthesizable Verilog as a first-class hardware interface (§3): `$display`
//! debugging and `$yield` quiescence annotations keep working after the design
//! moves to the FPGA, because the SYNERGY transformation lets the program trap to
//! the runtime in the middle of a clock tick.
//!
//! Run with: `cargo run --example debugging_with_tasks`

use synergy::transform::{analyze, transform, TransformOptions};
use synergy::{BitstreamCache, Device, Runtime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        module Watchpoint(input wire clock, output wire [31:0] out);
            (* non_volatile *) reg [31:0] counter = 0;
            reg [31:0] squared = 0;
            always @(posedge clock) begin
                counter <= counter + 1;
                squared = counter * counter;
                if (counter == 5) $display("watchpoint hit: counter=", counter, " squared=", squared);
                if (counter == 8) $yield;
            end
            assign out = squared;
        endmodule
    "#;

    // Inspect what the compiler does with the program before running it.
    let design = synergy::vlog::compile(source, "Watchpoint")?;
    let transformed = transform(&design, TransformOptions::default())?;
    println!(
        "state machine: {} states, {} unsynthesizable tasks, {} shadowed registers",
        transformed.num_states(),
        transformed.machine.tasks.len(),
        transformed.machine.shadowed.len()
    );
    let report = analyze(&design);
    println!(
        "state analysis: {} bits total, {} bits captured transparently ({} volatile under $yield)",
        report.total_bits(),
        report.captured_bits(),
        report.volatile_bits()
    );

    // The $display fires from hardware execution, mid-tick, exactly as in a
    // simulator.
    let mut rt = Runtime::new("watchpoint", source, "Watchpoint", "clock")?;
    let cache = BitstreamCache::new();
    rt.migrate_to_hardware(&Device::de10(), &cache)?;
    let (_, events) = rt.run_ticks(12)?;
    print!("{}", rt.env.output_text());
    println!("runtime events observed: {:?}", events);
    println!(
        "squared output after 12 ticks: {}",
        rt.get_bits("out")?.to_u64()
    );
    Ok(())
}
