//! Quickstart: compile a small Verilog program, run it in software, migrate it to
//! a simulated FPGA, and read results back — the basic SYNERGY flow.
//!
//! Run with: `cargo run --example quickstart`

use synergy::{BitstreamCache, Device, ExecMode, Runtime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The motivating example from Figure 2 of the paper: sum the values in a file
    // using unsynthesizable file IO, directly from "hardware".
    let source = r#"
        module Sum(input wire clock, output wire [31:0] total);
            integer fd = $fopen("numbers.bin");
            reg [31:0] r = 0;
            reg [127:0] sum = 0;
            always @(posedge clock) begin
                $fread(fd, r);
                if ($feof(fd)) begin
                    $display("sum = ", sum);
                    $finish(0);
                end else
                    sum <= sum + r;
            end
            assign total = sum[31:0];
        endmodule
    "#;

    let mut runtime = Runtime::new("sum", source, "Sum", "clock")?;
    runtime.add_file("numbers.bin", (1..=1000).collect());

    // Start in software, exactly as Cascade does.
    runtime.run_ticks(10)?;
    println!(
        "after 10 software ticks: mode={:?}, sum={}",
        runtime.mode(),
        runtime.get_bits("total")?.to_u64()
    );

    // Migrate to the simulated F1 device; state moves transparently.
    let cache = BitstreamCache::new();
    let latency = runtime.migrate_to_hardware(&Device::f1(), &cache)?;
    assert_eq!(runtime.mode(), ExecMode::Hardware("f1".into()));
    println!(
        "migrated to F1 in {:.1} ms of simulated time",
        latency as f64 / 1e6
    );

    // Finish the computation in hardware. File IO keeps working because the
    // transformed program traps to the runtime at sub-clock-tick granularity.
    runtime.run_to_completion(10_000)?;
    println!(
        "finished with exit code {:?}; total = {}",
        runtime.finished(),
        runtime.get_bits("total")?.to_u64()
    );
    println!("program output: {}", runtime.env.output_text().trim());
    println!(
        "virtual clock frequency achieved: {:.1} kHz over {} ticks",
        runtime.virtual_freq_hz() / 1e3,
        runtime.ticks()
    );
    assert_eq!(runtime.get_bits("total")?.to_u64(), 500_500);
    Ok(())
}
