//! Live workload migration across heterogeneous FPGAs (the Figure 9 / Figure 10
//! scenario): a Bitcoin miner starts on a DE10 SoC, is suspended with `$save`-style
//! state capture, and resumes on an AWS F1 instance — without modifying the
//! program.
//!
//! Run with: `cargo run --example live_migration`

use synergy::workloads;
use synergy::{BitstreamCache, Device, Runtime};

fn throughput(rt: &mut Runtime, metric: &str, ticks: u64) -> f64 {
    let t0 = rt.now_secs();
    let m0 = rt.get_bits(metric).unwrap().to_u64();
    rt.run_ticks(ticks).unwrap();
    let dt = rt.now_secs() - t0;
    let dm = rt.get_bits(metric).unwrap().to_u64() - m0;
    dm as f64 / dt.max(1e-12)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = workloads::bitcoin();
    let cache = BitstreamCache::new();

    // Start on the DE10.
    let mut de10 = Runtime::new("bitcoin", &bench.source, &bench.top, &bench.clock)?;
    de10.run_ticks(4)?;
    println!(
        "software warm-up:      {:>12.0} hashes/s",
        throughput(&mut de10, &bench.metric_var, 200)
    );
    de10.migrate_to_hardware(&Device::de10(), &cache)?;
    println!(
        "running on DE10:       {:>12.0} hashes/s",
        throughput(&mut de10, &bench.metric_var, 4_000)
    );

    // Suspend: capture the program state through get requests.
    let snapshot = de10.save("migration");
    let hashes_at_suspend = de10.get_bits("hashes_lo")?.to_u64();
    println!("suspended on DE10 after {} hashes", hashes_at_suspend);

    // Resume on F1: same program, different architecture, no source changes.
    let mut f1 = Runtime::new("bitcoin", &bench.source, &bench.top, &bench.clock)?;
    f1.migrate_to_hardware(&Device::f1(), &cache)?;
    f1.restore(&snapshot);
    assert_eq!(f1.get_bits("hashes_lo")?.to_u64(), hashes_at_suspend);
    println!(
        "resumed on F1:         {:>12.0} hashes/s",
        throughput(&mut f1, &bench.metric_var, 4_000)
    );
    println!(
        "nonce continues from exactly where the DE10 left off: nonce = {}",
        f1.get_bits("nonce")?.to_u64()
    );
    Ok(())
}
