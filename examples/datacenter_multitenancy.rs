//! Multi-tenant FPGA sharing (the §4 / Figure 11 / Figure 12 scenario): several
//! mutually distrustful applications share one device through the SYNERGY
//! hypervisor and the AmorphOS protection layer, with spatial multiplexing for
//! batch jobs, time-slice scheduling for streaming jobs that contend on the IO
//! path, and the work-stealing parallel scheduler spreading tenant rounds
//! across host cores.
//!
//! Run with: `cargo run --example datacenter_multitenancy`

use synergy::amorphos::{DomainId, Hull, Quiescence};
use synergy::fpga::SynthOptions;
use synergy::{Device, EnginePolicy, SchedPolicy, SynergyVm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut vm = SynergyVm::new();
    vm.set_stream_len(100_000);
    let f1 = vm.add_device(Device::f1());

    // Three tenants: two batch accelerators and one streaming matcher.
    let df = vm.launch_benchmark(f1, "df", false)?;
    let bitcoin = vm.launch_benchmark(f1, "bitcoin", false)?;
    let regex = vm.launch_benchmark(f1, "regex", false)?;

    for (name, app) in [("df", df), ("bitcoin", bitcoin), ("regex", regex)] {
        let outcome = vm.deploy(f1, app)?;
        println!(
            "deployed {:<8} engine={} cache_hit={} global_clock={} MHz",
            name,
            outcome.engine,
            outcome.cache_hit,
            outcome.global_clock_hz / 1_000_000
        );
    }

    // All three run concurrently on the same fabric; the hypervisor hides the
    // co-tenants from each instance.
    for round in 0..5 {
        let stats = vm.run_round(f1, 0.0001)?;
        let line: Vec<String> = stats
            .iter()
            .map(|s| format!("app{}={} ticks", s.app, s.ticks))
            .collect();
        println!("round {}: {}", round, line.join(", "));
    }
    println!("df ops:        {}", vm.read_var(f1, df, "ops_lo")?.to_u64());
    println!(
        "bitcoin work:  {}",
        vm.read_var(f1, bitcoin, "hashes_lo")?.to_u64()
    );
    println!(
        "regex reads:   {}",
        vm.read_var(f1, regex, "reads_lo")?.to_u64()
    );

    // Scale across host cores: a second node runs a software-resident fleet
    // (compiled engine via EnginePolicy::Auto) under the parallel scheduler.
    // Results are bit-identical to sequential scheduling — only the wall
    // clock changes — so this is a drop-in switch.
    vm.set_engine_policy(EnginePolicy::Auto);
    vm.set_sched_policy(SchedPolicy::Parallel { workers: 4 });
    let node2 = vm.add_device(Device::f1());
    let fleet: Vec<_> = (0..8)
        .map(|i| {
            let name = ["df", "bitcoin", "mips32", "adpcm"][i % 4];
            (name, vm.launch_benchmark(node2, name, false).unwrap())
        })
        .collect();
    for round in 0..3 {
        let stats = vm.run_round(node2, 0.0001)?;
        assert!(
            stats.iter().all(|s| s.ran && s.error.is_none()),
            "every tenant progresses each parallel round"
        );
        println!(
            "parallel round {}: {} tenants, {} total ticks (4 workers)",
            round,
            stats.len(),
            stats.iter().map(|s| s.ticks).sum::<u64>()
        );
    }
    for (name, app) in &fleet {
        assert!(vm.app(node2, *app)?.ticks() > 0, "{} ticked", name);
    }

    // The AmorphOS hull enforces protection between tenants: a domain cannot touch
    // another domain's Morphlet.
    let device = Device::f1();
    let mut hull = Hull::new(&device);
    let design = synergy::vlog::compile(&synergy::workloads::bitcoin().source, "Bitcoin")?;
    let report = synergy::fpga::estimate(&design, &device, SynthOptions::native(&device));
    let tenant_a = hull.register(DomainId(1), "tenant-a", report, Quiescence::Transparent);
    assert!(hull.check_access(DomainId(1), tenant_a).is_ok());
    assert!(hull.check_access(DomainId(2), tenant_a).is_err());
    println!("cross-domain access correctly rejected by the AmorphOS hull");
    Ok(())
}
