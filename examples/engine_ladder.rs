//! The engine ladder: one program migrating interpret → compiled → hardware
//! → back, with bit-identical state at every hop, plus the Auto policy's
//! interpreter fallback for uncompilable designs.
//!
//! Run with: `cargo run --example engine_ladder`

use synergy::{BitstreamCache, Device, EnginePolicy, ExecMode, Runtime, SynergyVm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        module Counter(input wire clock, output wire [31:0] out);
            reg [31:0] count = 0;
            always @(posedge clock) count <= count + 1;
            assign out = count;
        endmodule
    "#;

    // Under the Auto policy the program starts on the compiled engine
    // (levelized netlist + bytecode) instead of the tree-walking interpreter.
    let mut rt = Runtime::with_policy("counter", source, "Counter", "clock", EnginePolicy::Auto)?;
    println!(
        "start:     mode={:?}  clock={} Hz",
        rt.mode(),
        rt.clock_hz()
    );
    assert_eq!(rt.mode(), ExecMode::Compiled);

    rt.run_ticks(1000)?;
    println!(
        "compiled:  count={} after 1000 ticks",
        rt.get_bits("out")?.to_u64()
    );

    // Climb to hardware; state migrates through the shared snapshot format.
    let cache = BitstreamCache::new();
    rt.migrate_to_hardware(&Device::f1(), &cache)?;
    rt.run_ticks(1000)?;
    println!(
        "hardware:  mode={:?}  count={}",
        rt.mode(),
        rt.get_bits("out")?.to_u64()
    );

    // And back down both rungs.
    rt.migrate_to_software();
    rt.run_ticks(500)?;
    rt.migrate_to_compiled()?;
    rt.run_ticks(500)?;
    println!(
        "back down: mode={:?}  count={}",
        rt.mode(),
        rt.get_bits("out")?.to_u64()
    );
    assert_eq!(rt.get_bits("out")?.to_u64(), 3000);

    // A multiply-driven net is outside the compiled envelope: Auto falls back
    // to the interpreter instead of failing.
    let weird = r#"
        module M(input wire clock, output wire [7:0] o);
            wire [7:0] a = 1;
            assign o = a;
            assign o = a + 1;
        endmodule
    "#;
    let fb = Runtime::with_policy("weird", weird, "M", "clock", EnginePolicy::Auto)?;
    println!(
        "fallback:  mode={:?} (uncompilable design keeps the interpreter)",
        fb.mode()
    );
    assert_eq!(fb.mode(), ExecMode::Software);

    // The hypervisor honors the same policy for software-resident tenants.
    let mut vm = SynergyVm::new();
    vm.set_stream_len(4096);
    vm.set_engine_policy(EnginePolicy::Auto);
    let node = vm.add_device(Device::de10());
    let app = vm.launch_benchmark(node, "regex", false)?;
    println!(
        "tenant:    mode={:?} before deploy",
        vm.app(node, app)?.mode()
    );
    vm.run_round(node, 0.001)?;
    println!(
        "tenant:    {} reads on the compiled engine",
        vm.metric(node, app)?
    );
    vm.deploy(node, app)?;
    println!(
        "tenant:    mode={:?} after deploy",
        vm.app(node, app)?.mode()
    );
    Ok(())
}
