//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The build container has no network access, so the real `serde_derive` cannot
//! be fetched. Nothing in this workspace actually serialises values — the
//! derives are annotations only — so emitting no code is sufficient. See
//! `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op replacement for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
