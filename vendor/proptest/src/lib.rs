//! Offline mini property-testing harness exposing the subset of the proptest
//! API the workspace uses: the `proptest!` macro, `any::<T>()`, integer-range
//! and `collection::vec` strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! The build container has no network access, so the real proptest cannot be
//! fetched. This stand-in samples deterministically (seeded per test name) and
//! asserts directly — no shrinking — which keeps the same test sources running
//! meaningfully. See `vendor/README.md`.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic xorshift64* RNG; seeded from the test name so failures
/// reproduce run-to-run.
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG seeded from an arbitrary string (the test name).
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// How many random cases a `proptest!` block runs per test.
pub struct ProptestConfig {
    /// Number of cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                assert!(span > 0, "empty range strategy");
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

/// Generates arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each runs its body over `config.cases` sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// The commonly-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}
