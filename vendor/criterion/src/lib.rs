//! Offline mini benchmark harness exposing the subset of the criterion API the
//! workspace uses: `Criterion`, `Bencher::iter`, benchmark groups, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build container has no network access, so the real criterion cannot be
//! fetched; this stand-in performs genuine wall-clock measurement (warmup, then
//! `sample_size` timed samples) and prints mean/min/max per benchmark. See
//! `vendor/README.md`.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Times one closure invocation pattern.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly: a short warmup, then `sample_size` timed
    /// samples of one invocation each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: at least one invocation, up to ~50ms.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() > Duration::from_millis(50) {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{id:<48} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        samples.len()
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            filters: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Reads benchmark-name substring filters from the command line (the
    /// positional arguments of `cargo bench --bench <target> <filter>...`),
    /// like real criterion. With no filters every benchmark runs.
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Runs and reports one benchmark (skipped when CLI filters exclude it).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if !self.selected(id) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs and reports one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let config: $crate::Criterion = $config;
            let mut criterion = config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
