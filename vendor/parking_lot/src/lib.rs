//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the panic-free `lock()` API the workspace uses; poisoning is
//! swallowed like parking_lot does. See `vendor/README.md`.

use std::fmt;
use std::sync::MutexGuard;

/// A mutex with parking_lot's infallible `lock` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (as parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
