//! Offline stand-in for `serde`.
//!
//! The build container has no network access. The workspace only uses serde as
//! derive annotations (`#[derive(Serialize, Deserialize)]`) — no code path
//! serialises anything — so empty marker traits plus no-op derives keep the
//! source identical to what would build against real serde. See
//! `vendor/README.md`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
