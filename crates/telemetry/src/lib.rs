//! # synergy-telemetry
//!
//! Fleet-wide observability for the SYNERGY reproduction: a hand-rolled,
//! zero-dependency metrics registry, structured tracing spans, and a bounded
//! flight recorder. Instrumentation is threaded through every layer of the
//! stack — runtime, compiled executors, scheduler, hypervisor, cluster — and
//! surfaces through `Hypervisor::metrics()` / `Cluster::metrics()`, the
//! Prometheus-style / `jsonish` exporters, and the `fleetstat` CLI.
//!
//! ## The namespace split (determinism contract)
//!
//! Every metric lives in exactly one of two namespaces:
//!
//! * [`Namespace::Det`] — **deterministic** metrics derived purely from
//!   virtual execution (ticks, settle iterations, DRR grants, virtual-clock
//!   latencies, occupancy). These are *bit-identical* between
//!   `SchedPolicy::Sequential` and `SchedPolicy::Parallel { .. }` for the
//!   same fleet and rounds: [`Registry::det_text`] renders a canonical byte
//!   stream the differential tests compare verbatim.
//! * [`Namespace::NonDet`] — **non-deterministic** host-time samples
//!   (wall-clock nanoseconds per tenant, worker-pool execute/steal/park
//!   counts). This namespace extends the `Hypervisor::last_round_host_costs`
//!   split: host timing never leaks into round stats, checkpoints, or the
//!   deterministic namespace.
//!
//! Nothing in this crate is ever serialized into the durable checkpoint wire
//! format — telemetry is observability state, not architectural state.
//!
//! ## Flight recorder
//!
//! [`FlightRecorder`] keeps the last N [`TraceEvent`]s (virtual tick + span
//! name + formatted detail, no host time) in a ring buffer. Each tenant's
//! runtime carries its own recorder, so under the parallel scheduler every
//! worker appends to buffers it exclusively owns during dispatch — no locks
//! on the hot path, and the dump stays deterministic. The hypervisor attaches
//! a tenant's last-N dump to quarantine entries and to `RoundStats` as a
//! postmortem, and records every `HvError` into its own recorder.
//!
//! ## The escape hatch
//!
//! `SYNERGY_TELEMETRY=off` (or `0`) disables all recording; [`set_enabled`]
//! overrides the environment programmatically (the `regress` gate uses it to
//! measure on-vs-off overhead in one process). Disabled telemetry yields
//! empty — but still deterministic — snapshots.
//!
//! ```
//! use synergy_telemetry::{Namespace, Registry, POW2_BUCKETS};
//!
//! let mut reg = Registry::default();
//! reg.counter_add(Namespace::Det, "runtime_ticks_total", &[("tenant", "adpcm")], 8);
//! reg.observe(Namespace::Det, "hv_round_latency_ticks", &[], POW2_BUCKETS, 8);
//! assert_eq!(reg.counter_value(Namespace::Det, "runtime_ticks_total", &[("tenant", "adpcm")]), 8);
//! let h = reg.histogram(Namespace::Det, "hv_round_latency_ticks", &[]).unwrap();
//! assert_eq!(h.quantile(0.50), 8);
//! ```

#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------- enable gate

const GATE_ON: u8 = 1;
const GATE_OFF: u8 = 2;

/// 0 = uninitialised (consult the environment), 1 = on, 2 = off.
static GATE: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry recording is enabled.
///
/// Resolved once from `SYNERGY_TELEMETRY` (`off` or `0` disables; anything
/// else — or unset — enables) unless [`set_enabled`] has overridden it.
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        GATE_ON => true,
        GATE_OFF => false,
        _ => {
            let on = !matches!(std::env::var("SYNERGY_TELEMETRY"),
                Ok(v) if v.eq_ignore_ascii_case("off") || v == "0");
            GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatically enables or disables all telemetry recording, overriding
/// the `SYNERGY_TELEMETRY` environment variable.
///
/// The `regress` overhead gate uses this to compare instrumented and
/// uninstrumented runs within a single process.
pub fn set_enabled(on: bool) {
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
}

// ------------------------------------------------------------------ registry

/// Which side of the determinism contract a metric lives on (see the
/// [crate docs](self) for the full contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Namespace {
    /// Derived purely from virtual execution; bit-identical between
    /// sequential and parallel scheduling.
    Det,
    /// Host-time samples (wall-clock costs, worker-pool behaviour); excluded
    /// from the determinism contract and from all differential comparisons.
    NonDet,
}

/// A metric identity: a static name plus ordered `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Static metric name, e.g. `"runtime_ticks_total"`.
    pub name: &'static str,
    /// Label pairs in recording order, e.g. `[("tenant", "adpcm")]`. Label
    /// values must not contain `"`, `,`, or newlines (they pass unescaped
    /// into both exporters).
    pub labels: Vec<(&'static str, String)>,
}

fn key(name: &'static str, labels: &[(&'static str, &str)]) -> Key {
    Key {
        name,
        labels: labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect(),
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket bounds are a static, ascending slice shared by every instance of
/// the metric; observation `v` lands in the first bucket whose bound is
/// `>= v`, or in the implicit overflow bucket past the last bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` entries; the last is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram over the given ascending bucket bounds.
    pub fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The bucket bounds this histogram was built over.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// The upper bound of the smallest bucket that covers quantile `q`
    /// (e.g. `0.5` for p50, `0.99` for p99). Returns 0 for an empty
    /// histogram and `u64::MAX` when the quantile falls in the overflow
    /// bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return self.bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
            self.count += other.count;
            self.sum = self.sum.saturating_add(other.sum);
        } else {
            debug_assert!(false, "merging histograms with different bounds");
            *self = other.clone();
        }
    }
}

/// Power-of-two bucket bounds (1 … 2²⁴), the default scale for virtual-tick
/// and iteration-count histograms.
pub const POW2_BUCKETS: &[u64] = &[
    1,
    2,
    4,
    8,
    16,
    32,
    64,
    128,
    256,
    512,
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 22,
    1 << 24,
];

/// One recorded metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-write-wins instantaneous value.
    Gauge(i64),
    /// Fixed-bucket distribution.
    Histogram(Histogram),
}

/// A two-namespace metrics registry (see [`Namespace`]).
///
/// All mutating calls are no-ops while telemetry is disabled ([`enabled`]),
/// so a disabled fleet produces empty — but still deterministic — snapshots.
/// Merging and reading are never gated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    det: BTreeMap<Key, MetricValue>,
    nondet: BTreeMap<Key, MetricValue>,
}

impl Registry {
    fn map(&self, ns: Namespace) -> &BTreeMap<Key, MetricValue> {
        match ns {
            Namespace::Det => &self.det,
            Namespace::NonDet => &self.nondet,
        }
    }

    fn map_mut(&mut self, ns: Namespace) -> &mut BTreeMap<Key, MetricValue> {
        match ns {
            Namespace::Det => &mut self.det,
            Namespace::NonDet => &mut self.nondet,
        }
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn counter_add(
        &mut self,
        ns: Namespace,
        name: &'static str,
        labels: &[(&'static str, &str)],
        delta: u64,
    ) {
        if !enabled() {
            return;
        }
        match self
            .map_mut(ns)
            .entry(key(name, labels))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += delta,
            _ => debug_assert!(false, "{} is not a counter", name),
        }
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn gauge_set(
        &mut self,
        ns: Namespace,
        name: &'static str,
        labels: &[(&'static str, &str)],
        value: i64,
    ) {
        if !enabled() {
            return;
        }
        self.map_mut(ns)
            .insert(key(name, labels), MetricValue::Gauge(value));
    }

    /// Records one observation into a fixed-bucket histogram, creating it
    /// over `bounds` first.
    pub fn observe(
        &mut self,
        ns: Namespace,
        name: &'static str,
        labels: &[(&'static str, &str)],
        bounds: &'static [u64],
        value: u64,
    ) {
        if !enabled() {
            return;
        }
        match self
            .map_mut(ns)
            .entry(key(name, labels))
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
        {
            MetricValue::Histogram(h) => h.observe(value),
            _ => debug_assert!(false, "{} is not a histogram", name),
        }
    }

    /// Reads a counter (0 if absent).
    pub fn counter_value(
        &self,
        ns: Namespace,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> u64 {
        match self.map(ns).get(&key(name, labels)) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Reads a gauge.
    pub fn gauge_value(
        &self,
        ns: Namespace,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Option<i64> {
        match self.map(ns).get(&key(name, labels)) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Reads a histogram.
    pub fn histogram(
        &self,
        ns: Namespace,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Option<&Histogram> {
        match self.map(ns).get(&key(name, labels)) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterates one namespace in canonical (sorted-key) order.
    pub fn iter(&self, ns: Namespace) -> impl Iterator<Item = (&Key, &MetricValue)> {
        self.map(ns).iter()
    }

    /// Whether both namespaces are empty.
    pub fn is_empty(&self) -> bool {
        self.det.is_empty() && self.nondet.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's value, histograms with identical bounds add bucket-wise.
    /// Both namespaces merge; never gated on [`enabled`].
    pub fn merge(&mut self, other: &Registry) {
        for ns in [Namespace::Det, Namespace::NonDet] {
            for (k, v) in other.map(ns) {
                merge_value(self.map_mut(ns), k.clone(), v);
            }
        }
    }

    /// Like [`Registry::merge`], appending an extra label (e.g.
    /// `("tenant", "adpcm")` or `("node", "0")`) to every key from `other`.
    pub fn merge_labeled(&mut self, other: &Registry, label_key: &'static str, label_value: &str) {
        for ns in [Namespace::Det, Namespace::NonDet] {
            for (k, v) in other.map(ns) {
                let mut k = k.clone();
                k.labels.push((label_key, label_value.to_string()));
                merge_value(self.map_mut(ns), k, v);
            }
        }
    }

    /// Canonical byte-stable rendering of the **deterministic namespace
    /// only** — the stream the sequential-vs-parallel differential tests
    /// compare verbatim.
    pub fn det_text(&self) -> String {
        let mut out = String::new();
        render_prometheus(&self.det, &mut out);
        out
    }

    /// Prometheus-style text exposition of both namespaces, the
    /// non-deterministic one under an explicit banner.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# namespace: deterministic\n");
        render_prometheus(&self.det, &mut out);
        out.push_str(
            "# namespace: non-deterministic (host time; excluded from the determinism contract)\n",
        );
        render_prometheus(&self.nondet, &mut out);
        out
    }

    /// `jsonish` snapshot: one flat `"metrics"` array readable by the
    /// brace-matching helpers in `synergy-bench` (no nesting, no escapes).
    pub fn to_jsonish(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": [\n");
        let mut first = true;
        for (ns, ns_name) in [(Namespace::Det, "det"), (Namespace::NonDet, "nondet")] {
            for (k, v) in self.map(ns) {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let labels = label_csv(&k.labels);
                match v {
                    MetricValue::Counter(c) => {
                        let _ = write!(
                            out,
                            "    {{\"ns\": \"{}\", \"kind\": \"counter\", \"name\": \"{}\", \"labels\": \"{}\", \"value\": {}}}",
                            ns_name, k.name, labels, c
                        );
                    }
                    MetricValue::Gauge(g) => {
                        let _ = write!(
                            out,
                            "    {{\"ns\": \"{}\", \"kind\": \"gauge\", \"name\": \"{}\", \"labels\": \"{}\", \"value\": {}}}",
                            ns_name, k.name, labels, g
                        );
                    }
                    MetricValue::Histogram(h) => {
                        let _ = write!(
                            out,
                            "    {{\"ns\": \"{}\", \"kind\": \"histogram\", \"name\": \"{}\", \"labels\": \"{}\", \"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
                            ns_name, k.name, labels, h.count(), h.sum(), h.quantile(0.50), h.quantile(0.99)
                        );
                    }
                }
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn merge_value(map: &mut BTreeMap<Key, MetricValue>, k: Key, v: &MetricValue) {
    match map.entry(k) {
        std::collections::btree_map::Entry::Vacant(e) => {
            e.insert(v.clone());
        }
        std::collections::btree_map::Entry::Occupied(mut e) => match (e.get_mut(), v) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            _ => debug_assert!(false, "merging metrics of different kinds"),
        },
    }
}

fn label_csv(labels: &[(&'static str, String)]) -> String {
    let mut s = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}={}", k, v);
    }
    s
}

fn prom_labels(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{}=\"{}\"", k, v);
    }
    if let Some((k, v)) = extra {
        if !first {
            s.push(',');
        }
        let _ = write!(s, "{}=\"{}\"", k, v);
    }
    s.push('}');
    s
}

fn render_prometheus(map: &BTreeMap<Key, MetricValue>, out: &mut String) {
    let mut last_name = "";
    for (k, v) in map {
        if k.name != last_name {
            let kind = match v {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {}", k.name, kind);
            last_name = k.name;
        }
        match v {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "{}{} {}", k.name, prom_labels(&k.labels, None), c);
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "{}{} {}", k.name, prom_labels(&k.labels, None), g);
            }
            MetricValue::Histogram(h) => {
                let mut cum = 0u64;
                for (i, &c) in h.counts.iter().enumerate() {
                    cum += c;
                    let le = h
                        .bounds
                        .get(i)
                        .map(|b| b.to_string())
                        .unwrap_or_else(|| "+Inf".to_string());
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        k.name,
                        prom_labels(&k.labels, Some(("le", &le))),
                        cum
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    k.name,
                    prom_labels(&k.labels, None),
                    h.sum
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    k.name,
                    prom_labels(&k.labels, None),
                    h.count
                );
            }
        }
    }
}

// ------------------------------------------------------------ flight recorder

/// Default ring capacity of a [`FlightRecorder`].
pub const DEFAULT_FLIGHT_EVENTS: usize = 64;

/// One structured trace event. Content is derived purely from virtual
/// execution (monotone sequence number, virtual tick, span name, formatted
/// detail) — never host time or thread identity — so recorder dumps obey the
/// same determinism contract as [`Namespace::Det`] metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone per-recorder sequence number (survives ring eviction).
    pub seq: u64,
    /// Virtual tick at which the event was recorded.
    pub tick: u64,
    /// Static span name, e.g. `"run_round"`.
    pub span: &'static str,
    /// Formatted `key=value` detail, e.g. `"tenant=adpcm ticks=8"`.
    pub detail: String,
}

/// A bounded ring buffer of the last N [`TraceEvent`]s.
///
/// Each tenant runtime owns one recorder, which travels with the runtime to
/// whichever scheduler worker executes it — per-worker exclusive ownership
/// during dispatch, so recording takes no locks. The hypervisor keeps its own
/// recorder for fleet-level spans and `HvError`s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    next_seq: u64,
    ring: VecDeque<TraceEvent>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_FLIGHT_EVENTS)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `cap` events (oldest evicted first).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            next_seq: 0,
            ring: VecDeque::new(),
        }
    }

    /// Appends an event, evicting the oldest at capacity. No-op while
    /// telemetry is disabled.
    pub fn record(&mut self, tick: u64, span: &'static str, detail: String) {
        if !enabled() {
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceEvent {
            seq: self.next_seq,
            tick,
            span,
            detail,
        });
        self.next_seq += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Drops all retained events (the sequence counter keeps running).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Human-readable last-N dump, one `#seq @tick span: detail` line per
    /// event — the postmortem attached to quarantine entries and round stats.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.ring {
            let _ = write!(out, "#{} @{} {}", e.seq, e.tick, e.span);
            if !e.detail.is_empty() {
                let _ = write!(out, ": {}", e.detail);
            }
            out.push('\n');
        }
        out
    }
}

/// Records a structured tracing span event into a [`FlightRecorder`]:
///
/// ```
/// use synergy_telemetry::{span, FlightRecorder};
/// let mut rec = FlightRecorder::default();
/// let (tick, tenant, ticks) = (7u64, "adpcm", 8u64);
/// span!(rec, tick, "run_round", tenant = tenant, ticks = ticks);
/// ```
///
/// Detail values are formatted with `Display` only when telemetry is
/// enabled; a disabled gate skips all formatting and allocation.
#[macro_export]
macro_rules! span {
    ($rec:expr, $tick:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            #[allow(unused_mut)]
            let mut __detail = String::new();
            $(
                {
                    use std::fmt::Write as _;
                    if !__detail.is_empty() {
                        __detail.push(' ');
                    }
                    let _ = write!(__detail, concat!(stringify!($k), "={}"), $v);
                }
            )*
            $rec.record($tick, $name, __detail);
        }
    };
}

// ----------------------------------------------------------- telemetry bundle

/// A registry plus a flight recorder — the per-tenant (and per-hypervisor)
/// telemetry bundle.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Metrics recorded by this component.
    pub registry: Registry,
    /// Trace-event ring for this component.
    pub recorder: FlightRecorder,
}

// ------------------------------------------------------------ global registry

static GLOBAL: OnceLock<Mutex<Registry>> = OnceLock::new();

/// Runs `f` against the process-global registry.
///
/// The global registry holds the few metrics with no owning component — e.g.
/// checkpoint CRC failures observed while *failing* to rebuild a runtime. It
/// is exported by `fleetstat`, never merged into `Hypervisor::metrics()`
/// (which would break per-node determinism comparisons).
pub fn with_global<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = GLOBAL
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

/// A clone of the process-global registry (see [`with_global`]).
pub fn global_snapshot() -> Registry {
    with_global(|r| r.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable gate is process-global; tests that depend on its state
    /// serialize through this lock so the toggling test cannot race the
    /// recording tests.
    static TEST_GATE: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        guard
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let _g = locked();
        let mut r = Registry::default();
        r.counter_add(Namespace::Det, "ticks_total", &[("tenant", "a")], 3);
        r.counter_add(Namespace::Det, "ticks_total", &[("tenant", "a")], 4);
        r.gauge_set(Namespace::NonDet, "host_ns", &[], 99);
        for v in [1, 3, 9, 1000] {
            r.observe(Namespace::Det, "lat", &[], POW2_BUCKETS, v);
        }
        assert_eq!(
            r.counter_value(Namespace::Det, "ticks_total", &[("tenant", "a")]),
            7
        );
        assert_eq!(r.gauge_value(Namespace::NonDet, "host_ns", &[]), Some(99));
        let h = r.histogram(Namespace::Det, "lat", &[]).unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1013);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(1.0), 1024);
    }

    #[test]
    fn quantiles_cover_overflow_and_empty() {
        let _g = locked();
        let mut h = Histogram::new(&[10, 20]);
        assert_eq!(h.quantile(0.99), 0);
        h.observe(5);
        h.observe(15);
        h.observe(10_000);
        assert_eq!(h.quantile(0.33), 10);
        assert_eq!(h.quantile(0.50), 20);
        assert_eq!(h.quantile(0.99), u64::MAX);
    }

    #[test]
    fn merge_labeled_adds_and_tags() {
        let _g = locked();
        let mut a = Registry::default();
        a.counter_add(Namespace::Det, "n", &[], 1);
        let mut tenant = Registry::default();
        tenant.counter_add(Namespace::Det, "n", &[], 5);
        tenant.observe(Namespace::Det, "h", &[], POW2_BUCKETS, 2);
        a.merge_labeled(&tenant, "tenant", "x");
        a.merge_labeled(&tenant, "tenant", "x");
        assert_eq!(a.counter_value(Namespace::Det, "n", &[]), 1);
        assert_eq!(a.counter_value(Namespace::Det, "n", &[("tenant", "x")]), 10);
        assert_eq!(
            a.histogram(Namespace::Det, "h", &[("tenant", "x")])
                .unwrap()
                .count(),
            2
        );
    }

    #[test]
    fn renderings_are_stable_and_sorted() {
        let _g = locked();
        let mut r = Registry::default();
        r.counter_add(Namespace::Det, "b_total", &[], 2);
        r.counter_add(Namespace::Det, "a_total", &[("t", "z")], 1);
        r.counter_add(Namespace::Det, "a_total", &[("t", "m")], 1);
        r.gauge_set(Namespace::NonDet, "host", &[], -4);
        let text = r.to_prometheus();
        let a_m = text.find("a_total{t=\"m\"} 1").unwrap();
        let a_z = text.find("a_total{t=\"z\"} 1").unwrap();
        let b = text.find("b_total 2").unwrap();
        assert!(a_m < a_z && a_z < b, "canonical order is sorted keys");
        assert!(text.contains("# namespace: non-deterministic"));
        assert!(text.contains("host -4"));
        assert_eq!(
            r.det_text(),
            r.clone().det_text(),
            "det rendering is a pure function"
        );
        assert!(
            !r.det_text().contains("host"),
            "nondet stays out of det_text"
        );
        let json = r.to_jsonish();
        assert!(json.contains("\"name\": \"a_total\", \"labels\": \"t=m\", \"value\": 1"));
    }

    #[test]
    fn flight_recorder_is_a_ring_with_monotone_seqs() {
        let _g = locked();
        let mut rec = FlightRecorder::new(3);
        for t in 0..5u64 {
            span!(rec, t, "tick", n = t);
        }
        assert_eq!(rec.len(), 3);
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(rec.dump().contains("#4 @4 tick: n=4"));
        rec.clear();
        assert!(rec.is_empty());
        rec.record(9, "late", String::new());
        assert_eq!(rec.events().next().unwrap().seq, 5, "seq survives clear");
    }

    #[test]
    fn disabled_gate_suppresses_recording() {
        let _g = TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let mut r = Registry::default();
        r.counter_add(Namespace::Det, "n", &[], 1);
        r.gauge_set(Namespace::Det, "g", &[], 1);
        r.observe(Namespace::Det, "h", &[], POW2_BUCKETS, 1);
        let mut rec = FlightRecorder::default();
        span!(rec, 0, "nope");
        assert!(r.is_empty() && rec.is_empty());
        assert_eq!(
            r.det_text(),
            "",
            "disabled snapshots are empty but well-formed"
        );
        set_enabled(true);
        r.counter_add(Namespace::Det, "n", &[], 1);
        assert_eq!(r.counter_value(Namespace::Det, "n", &[]), 1);
    }

    #[test]
    fn global_registry_accumulates() {
        let _g = locked();
        let before = global_snapshot().counter_value(Namespace::Det, "test_global_total", &[]);
        with_global(|r| r.counter_add(Namespace::Det, "test_global_total", &[], 2));
        assert_eq!(
            global_snapshot().counter_value(Namespace::Det, "test_global_total", &[]),
            before + 2
        );
    }
}
