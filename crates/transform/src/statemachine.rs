//! Control and state-machine transformations (Figures 4 and 5 of the paper).
//!
//! The merged core (see [`crate::schedule`]) is lowered onto a state machine whose
//! states contain as many synthesizable statements as possible and are terminated
//! by unsynthesizable tasks or by branches whose bodies contain tasks. The result
//! is re-emitted as a synthesizable Verilog module driven by the target device's
//! native clock (`__clk`) and the SYNERGY ABI signals:
//!
//! * `__abi`   — input; the runtime asserts `ABI_CONT` to acknowledge a task and
//!   resume execution mid-tick.
//! * `__task`  — output; non-zero when an unsynthesizable task needs the runtime.
//! * `__state` — output; the current state of the lowered machine.
//! * `__done`  — output; high when the machine is idle between virtual clock ticks.
//!
//! Edge events of the original program (`posedge clock`, ...) are detected from
//! values delivered by `set` messages, latched into `__trig_*` registers at the
//! start of the virtual tick, and used to guard each original always block's
//! section of the core. Non-blocking assignments to scalar registers are redirected
//! to `__nb_*` shadow registers and applied in a dedicated latch state at the end
//! of the virtual tick, preserving Verilog's update semantics even when the tick is
//! interrupted by task traps (§3.4).

use crate::schedule::{edge_wire_name, merge_always, prev_reg_name, trigger_name, Core};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use synergy_vlog::ast::*;
use synergy_vlog::elaborate::ElabModule;
use synergy_vlog::parser::const_eval;
use synergy_vlog::{Bits, VlogError, VlogResult};

/// The `__abi` value meaning "no request".
pub const ABI_NONE: u64 = 0;
/// The `__abi` value the runtime asserts to acknowledge a task and continue.
pub const ABI_CONT: u64 = 1;
/// The `__task` value meaning "no task pending".
pub const TASK_NONE: u64 = 0;

/// Maximum number of iterations a task-containing loop may be unrolled to.
const MAX_UNROLL: u64 = 1024;

/// Options controlling the transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TransformOptions {
    /// Strip unsynthesizable system tasks before lowering. This models the
    /// "Cascade on AmorphOS" baseline of §6.4, which avoids the state-machine
    /// overhead introduced by task support.
    pub strip_tasks: bool,
    /// Split a new state at *every* `if`/`case` guard, as described verbatim in
    /// §3.4, rather than only at branches that contain tasks. Costs more states
    /// (and fabric) for the same semantics.
    pub split_all_branches: bool,
}

/// One state of the lowered machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct State {
    /// State number (the value held in `__state`).
    pub id: u32,
    /// Synthesizable statements executed when the state runs.
    pub stmts: Vec<Stmt>,
    /// What happens after the statements execute.
    pub terminator: Terminator,
}

/// State terminators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional transfer.
    Goto(u32),
    /// Trap to the runtime with task `task`, then resume at `resume`.
    Task {
        /// 1-based index into [`StateMachine::tasks`].
        task: u32,
        /// State to resume at once the runtime asserts `ABI_CONT`.
        resume: u32,
    },
    /// Two-way branch on a condition.
    Branch {
        /// Branch condition.
        cond: Expr,
        /// State when the condition is true.
        then_state: u32,
        /// State when the condition is false.
        else_state: u32,
    },
    /// Terminal state (idle between virtual ticks).
    Done,
}

/// The lowered state machine plus everything the runtime needs to drive it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateMachine {
    /// All states, indexed by `id as usize`.
    pub states: Vec<State>,
    /// Entry state at the start of each virtual clock tick.
    pub entry: u32,
    /// The latch state that applies pending non-blocking assignments.
    pub latch: u32,
    /// The idle/final state.
    pub final_state: u32,
    /// Unsynthesizable tasks, indexed by `__task - 1`.
    pub tasks: Vec<SystemTask>,
    /// Scalar registers whose non-blocking assignments were redirected to shadows.
    pub shadowed: Vec<String>,
}

impl StateMachine {
    /// Number of states in the machine.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Looks up the task triggered by a given non-zero `__task` value.
    pub fn task(&self, id: u64) -> Option<&SystemTask> {
        if id == TASK_NONE {
            return None;
        }
        self.tasks.get((id - 1) as usize)
    }
}

/// Builder that lowers a core into a [`StateMachine`].
struct Lowering<'a> {
    module: &'a ElabModule,
    states: Vec<State>,
    tasks: Vec<SystemTask>,
    shadowed: BTreeSet<String>,
    options: TransformOptions,
}

impl<'a> Lowering<'a> {
    fn new(module: &'a ElabModule, options: TransformOptions) -> Self {
        Lowering {
            module,
            states: Vec::new(),
            tasks: Vec::new(),
            shadowed: BTreeSet::new(),
            options,
        }
    }

    fn alloc(&mut self, stmts: Vec<Stmt>, terminator: Terminator) -> u32 {
        let id = self.states.len() as u32;
        self.states.push(State {
            id,
            stmts,
            terminator,
        });
        id
    }

    /// Rewrites non-blocking assignments to scalar registers into blocking writes
    /// of their shadow registers, so the update step can be deferred to the latch
    /// state (§3.4's `__sum_next`).
    fn rewrite_nba(&mut self, stmt: &Stmt) -> Stmt {
        match stmt {
            Stmt::NonBlocking(a) => match &a.lhs {
                LValue::Ident(name)
                    if self
                        .module
                        .var(name)
                        .map(|v| v.depth.is_none())
                        .unwrap_or(false) =>
                {
                    self.shadowed.insert(name.clone());
                    Stmt::Block(vec![
                        Stmt::Blocking(Assign {
                            lhs: LValue::Ident(shadow_name(name)),
                            rhs: a.rhs.clone(),
                        }),
                        Stmt::Blocking(Assign {
                            lhs: LValue::Ident(pending_name(name)),
                            rhs: Expr::sized(1, 1),
                        }),
                    ])
                }
                _ => stmt.clone(),
            },
            Stmt::Block(v) => Stmt::Block(v.iter().map(|s| self.rewrite_nba(s)).collect()),
            Stmt::Fork(v) => Stmt::Block(v.iter().map(|s| self.rewrite_nba(s)).collect()),
            Stmt::If { cond, then, other } => Stmt::If {
                cond: cond.clone(),
                then: Box::new(self.rewrite_nba(then)),
                other: other.as_ref().map(|s| Box::new(self.rewrite_nba(s))),
            },
            Stmt::Case {
                expr,
                arms,
                default,
            } => Stmt::Case {
                expr: expr.clone(),
                arms: arms
                    .iter()
                    .map(|a| CaseArm {
                        labels: a.labels.clone(),
                        body: self.rewrite_nba(&a.body),
                    })
                    .collect(),
                default: default.as_ref().map(|s| Box::new(self.rewrite_nba(s))),
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: Box::new(self.rewrite_nba(body)),
            },
            Stmt::Repeat { count, body } => Stmt::Repeat {
                count: count.clone(),
                body: Box::new(self.rewrite_nba(body)),
            },
            other => other.clone(),
        }
    }

    /// Compiles a statement sequence; control continues at `cont` afterwards.
    fn compile_seq(&mut self, stmts: &[Stmt], cont: u32) -> VlogResult<u32> {
        // Partition into maximal synthesizable runs and task-containing breakers.
        enum Segment {
            Synth(Vec<Stmt>),
            Breaker(Stmt),
        }
        let mut segments: Vec<Segment> = Vec::new();
        for stmt in stmts {
            let breaker = stmt.contains_system_task()
                || (self.options.split_all_branches
                    && matches!(stmt, Stmt::If { .. } | Stmt::Case { .. }));
            if breaker {
                segments.push(Segment::Breaker(stmt.clone()));
            } else {
                match segments.last_mut() {
                    Some(Segment::Synth(run)) => run.push(stmt.clone()),
                    _ => segments.push(Segment::Synth(vec![stmt.clone()])),
                }
            }
        }
        let mut next = cont;
        for segment in segments.into_iter().rev() {
            next = match segment {
                Segment::Synth(run) => {
                    let rewritten = run.iter().map(|s| self.rewrite_nba(s)).collect();
                    self.alloc(rewritten, Terminator::Goto(next))
                }
                Segment::Breaker(stmt) => self.compile_breaker(&stmt, next)?,
            };
        }
        Ok(next)
    }

    fn compile_breaker(&mut self, stmt: &Stmt, cont: u32) -> VlogResult<u32> {
        match stmt {
            Stmt::SystemTask(task) => {
                self.tasks.push(task.clone());
                let task_id = self.tasks.len() as u32;
                Ok(self.alloc(
                    Vec::new(),
                    Terminator::Task {
                        task: task_id,
                        resume: cont,
                    },
                ))
            }
            Stmt::Block(stmts) | Stmt::Fork(stmts) => self.compile_seq(stmts, cont),
            Stmt::If { cond, then, other } => {
                let then_entry = self.compile_seq(std::slice::from_ref(then), cont)?;
                let else_entry = match other {
                    Some(e) => self.compile_seq(std::slice::from_ref(e), cont)?,
                    None => cont,
                };
                Ok(self.alloc(
                    Vec::new(),
                    Terminator::Branch {
                        cond: cond.clone(),
                        then_state: then_entry,
                        else_state: else_entry,
                    },
                ))
            }
            Stmt::Case {
                expr,
                arms,
                default,
            } => {
                // Lower to a chain of two-way branches; the default (or fall-off)
                // continues at `cont`.
                let default_entry = match default {
                    Some(d) => self.compile_seq(std::slice::from_ref(d), cont)?,
                    None => cont,
                };
                let mut next = default_entry;
                for arm in arms.iter().rev() {
                    let body_entry = self.compile_seq(std::slice::from_ref(&arm.body), cont)?;
                    let mut cond: Option<Expr> = None;
                    for label in &arm.labels {
                        let eq = Expr::Binary(
                            BinaryOp::Eq,
                            Box::new(expr.clone()),
                            Box::new(label.clone()),
                        );
                        cond = Some(match cond {
                            None => eq,
                            Some(c) => Expr::Binary(BinaryOp::LogicalOr, Box::new(c), Box::new(eq)),
                        });
                    }
                    let cond = cond.unwrap_or_else(|| Expr::sized(1, 0));
                    next = self.alloc(
                        Vec::new(),
                        Terminator::Branch {
                            cond,
                            then_state: body_entry,
                            else_state: next,
                        },
                    );
                }
                Ok(next)
            }
            Stmt::Repeat { count, body } => {
                let n = const_eval(count, &|_| None)
                    .map(|b| b.to_u64())
                    .ok_or_else(|| {
                        VlogError::Unsupported(
                            "repeat loops containing system tasks must have constant bounds".into(),
                        )
                    })?;
                if n > MAX_UNROLL {
                    return Err(VlogError::Unsupported(format!(
                        "repeat loop with {} iterations containing tasks exceeds the unroll limit",
                        n
                    )));
                }
                let unrolled: Vec<Stmt> = (0..n).map(|_| (**body).clone()).collect();
                self.compile_seq(&unrolled, cont)
            }
            Stmt::For { .. } => Err(VlogError::Unsupported(
                "for loops containing system tasks are not supported by the state machine \
                 transformation; hoist the task out of the loop"
                    .into(),
            )),
            // A task-free statement can only reach here in split_all_branches mode.
            other => {
                let rewritten = self.rewrite_nba(other);
                Ok(self.alloc(vec![rewritten], Terminator::Goto(cont)))
            }
        }
    }
}

/// Renumbers states in depth-first order from the entry so that the common path
/// falls through in increasing state order (maximising work per native cycle).
fn renumber(machine: &mut StateMachine) {
    let n = machine.states.len();
    let mut order: Vec<Option<u32>> = vec![None; n];
    let mut next_id = 0u32;
    let mut stack = vec![machine.entry];
    while let Some(id) = stack.pop() {
        let idx = id as usize;
        if order[idx].is_some() {
            continue;
        }
        order[idx] = Some(next_id);
        next_id += 1;
        // Push successors so that the fall-through successor is visited next.
        match &machine.states[idx].terminator {
            Terminator::Goto(t) => stack.push(*t),
            Terminator::Task { resume, .. } => stack.push(*resume),
            Terminator::Branch {
                then_state,
                else_state,
                ..
            } => {
                stack.push(*else_state);
                stack.push(*then_state);
            }
            Terminator::Done => {}
        }
    }
    // Unreachable states (possible when every path traps) keep a stable order after
    // the reachable ones.
    for slot in order.iter_mut() {
        if slot.is_none() {
            *slot = Some(next_id);
            next_id += 1;
        }
    }
    let map = |old: u32| order[old as usize].unwrap();
    let mut new_states: Vec<State> = vec![
        State {
            id: 0,
            stmts: Vec::new(),
            terminator: Terminator::Done,
        };
        n
    ];
    for (old_idx, state) in machine.states.iter().enumerate() {
        let new_id = map(old_idx as u32);
        let terminator = match &state.terminator {
            Terminator::Goto(t) => Terminator::Goto(map(*t)),
            Terminator::Task { task, resume } => Terminator::Task {
                task: *task,
                resume: map(*resume),
            },
            Terminator::Branch {
                cond,
                then_state,
                else_state,
            } => Terminator::Branch {
                cond: cond.clone(),
                then_state: map(*then_state),
                else_state: map(*else_state),
            },
            Terminator::Done => Terminator::Done,
        };
        new_states[new_id as usize] = State {
            id: new_id,
            stmts: state.stmts.clone(),
            terminator,
        };
    }
    machine.entry = map(machine.entry);
    machine.latch = map(machine.latch);
    machine.final_state = map(machine.final_state);
    machine.states = new_states;
}

/// Strips system-task statements from a statement tree (the Cascade baseline mode).
pub fn strip_system_tasks(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::SystemTask(_) => Stmt::Null,
        Stmt::Block(v) => Stmt::Block(v.iter().map(strip_system_tasks).collect()),
        Stmt::Fork(v) => Stmt::Fork(v.iter().map(strip_system_tasks).collect()),
        Stmt::If { cond, then, other } => Stmt::If {
            cond: cond.clone(),
            then: Box::new(strip_system_tasks(then)),
            other: other.as_ref().map(|s| Box::new(strip_system_tasks(s))),
        },
        Stmt::Case {
            expr,
            arms,
            default,
        } => Stmt::Case {
            expr: expr.clone(),
            arms: arms
                .iter()
                .map(|a| CaseArm {
                    labels: a.labels.clone(),
                    body: strip_system_tasks(&a.body),
                })
                .collect(),
            default: default.as_ref().map(|s| Box::new(strip_system_tasks(s))),
        },
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => Stmt::For {
            init: init.clone(),
            cond: cond.clone(),
            step: step.clone(),
            body: Box::new(strip_system_tasks(body)),
        },
        Stmt::Repeat { count, body } => Stmt::Repeat {
            count: count.clone(),
            body: Box::new(strip_system_tasks(body)),
        },
        other => other.clone(),
    }
}

/// The shadow register holding a deferred non-blocking value for `name`.
pub fn shadow_name(name: &str) -> String {
    format!("__nb_{}", name)
}

/// The pending flag register paired with [`shadow_name`].
pub fn pending_name(name: &str) -> String {
    format!("__nbp_{}", name)
}

/// Lowers an elaborated module's procedural logic into a [`StateMachine`].
///
/// # Errors
///
/// Returns [`VlogError::Unsupported`] for task-containing loops that cannot be
/// unrolled.
pub fn lower(module: &ElabModule, options: TransformOptions) -> VlogResult<StateMachine> {
    let mut always = module.always.clone();
    if options.strip_tasks {
        for block in always.iter_mut() {
            block.body = strip_system_tasks(&block.body);
        }
    }
    let core = merge_always(&always);
    lower_core(module, &core, options)
}

/// Lowers an already-merged core.
pub fn lower_core(
    module: &ElabModule,
    core: &Core,
    options: TransformOptions,
) -> VlogResult<StateMachine> {
    let mut lowering = Lowering::new(module, options);

    // Final (idle) and latch states are allocated first; their ids are fixed up by
    // renumbering at the end.
    let final_state = lowering.alloc(Vec::new(), Terminator::Done);
    let latch = lowering.alloc(Vec::new(), Terminator::Goto(final_state));

    // The core body: each original section guarded by its latched trigger regs.
    let mut body = Vec::new();
    for section in &core.sections {
        let mut guard: Option<Expr> = None;
        for ev in &section.events {
            let t = Expr::ident(trigger_name(ev));
            guard = Some(match guard {
                None => t,
                Some(g) => Expr::Binary(BinaryOp::LogicalOr, Box::new(g), Box::new(t)),
            });
        }
        let guarded = match guard {
            // `always @*` sections have no events; they run every tick.
            None => section.body.clone(),
            Some(g) => Stmt::If {
                cond: g,
                then: Box::new(section.body.clone()),
                other: None,
            },
        };
        body.push(guarded);
    }
    let entry = lowering.compile_seq(&body, latch)?;

    // Fill in the latch state's statements now that we know which registers were
    // shadowed.
    let shadowed: Vec<String> = lowering.shadowed.iter().cloned().collect();
    let mut latch_stmts = Vec::new();
    for name in &shadowed {
        latch_stmts.push(Stmt::If {
            cond: Expr::ident(pending_name(name)),
            then: Box::new(Stmt::Block(vec![
                Stmt::Blocking(Assign {
                    lhs: LValue::Ident(name.clone()),
                    rhs: Expr::ident(shadow_name(name)),
                }),
                Stmt::Blocking(Assign {
                    lhs: LValue::Ident(pending_name(name)),
                    rhs: Expr::sized(1, 0),
                }),
            ])),
            other: None,
        });
    }
    lowering.states[latch as usize].stmts = latch_stmts;

    let mut machine = StateMachine {
        states: lowering.states,
        entry,
        latch,
        final_state,
        tasks: lowering.tasks,
        shadowed,
    };
    renumber(&mut machine);
    Ok(machine)
}

// --------------------------------------------------------------------- emission

/// Emits the transformed module (Figure 5 style) as a Verilog AST [`Module`].
///
/// The generated module is synthesizable apart from the `__task` signalling
/// convention, executes on the native device clock `__clk`, and preserves the
/// semantics of the original program at virtual-clock-tick granularity.
pub fn emit_module(module: &ElabModule, core: &Core, machine: &StateMachine, name: &str) -> Module {
    let mut out = Module::new(name);

    // ---------------------------------------------------------------- ports
    out.ports.push(Port {
        dir: PortDir::Input,
        is_reg: false,
        range: None,
        name: "__clk".into(),
    });
    out.ports.push(Port {
        dir: PortDir::Input,
        is_reg: false,
        range: Some(range(7, 0)),
        name: "__abi".into(),
    });
    for var in module.vars.values() {
        if let Some(dir) = var.port {
            out.ports.push(Port {
                dir,
                is_reg: false,
                range: if var.width > 1 {
                    Some(range(var.width as u64 - 1, 0))
                } else {
                    None
                },
                name: var.name.clone(),
            });
        }
    }
    for (n, w) in [("__task", 16u64), ("__state", 16), ("__done", 1)] {
        out.ports.push(Port {
            dir: PortDir::Output,
            is_reg: false,
            range: if w > 1 { Some(range(w - 1, 0)) } else { None },
            name: n.into(),
        });
    }

    // ---------------------------------------------------------------- declarations
    // Original non-port variables (registers keep their initial values and
    // attributes so the synthesis estimator sees the same state).
    for var in module.vars.values() {
        if var.port.is_some() {
            continue;
        }
        let mut attributes = Vec::new();
        if var.non_volatile {
            attributes.push(Attribute {
                name: "non_volatile".into(),
                value: None,
            });
        }
        out.items.push(Item::Decl(Decl {
            attributes,
            kind: var.kind,
            range: if var.width > 1 {
                Some(range(var.width as u64 - 1, 0))
            } else {
                None
            },
            name: var.name.clone(),
            mem_range: var.depth.map(|d| range(0, d as u64 - 1)),
            init: var.init.as_ref().map(|b| Expr::Literal(b.clone())),
        }));
    }

    // State machine registers. `__state` and `__task` double as output ports.
    out.items
        .push(reg_decl("__state", 16, Some(machine.final_state as u64)));
    out.items.push(reg_decl("__task", 16, Some(TASK_NONE)));

    // Edge detection: previous-value registers and edge wires (Figure 4).
    let mut declared_prev = BTreeSet::new();
    for ev in &core.events {
        if let Expr::Ident(sig) = &ev.expr {
            if declared_prev.insert(sig.clone()) {
                out.items.push(reg_decl(&prev_reg_name(sig), 1, Some(0)));
            }
        }
        let wire = edge_wire_name(ev);
        let expr = match (&ev.edge, &ev.expr) {
            (Edge::Pos, Expr::Ident(sig)) => Expr::Binary(
                BinaryOp::And,
                Box::new(Expr::Unary(
                    UnaryOp::LogicalNot,
                    Box::new(Expr::ident(prev_reg_name(sig))),
                )),
                Box::new(Expr::ident(sig.clone())),
            ),
            (Edge::Neg, Expr::Ident(sig)) => Expr::Binary(
                BinaryOp::And,
                Box::new(Expr::ident(prev_reg_name(sig))),
                Box::new(Expr::Unary(
                    UnaryOp::LogicalNot,
                    Box::new(Expr::ident(sig.clone())),
                )),
            ),
            (Edge::Any, Expr::Ident(sig)) => Expr::Binary(
                BinaryOp::Ne,
                Box::new(Expr::ident(prev_reg_name(sig))),
                Box::new(Expr::ident(sig.clone())),
            ),
            // Non-identifier guards are rare; treat as always-armed.
            _ => Expr::sized(1, 1),
        };
        out.items.push(Item::Decl(Decl {
            attributes: Vec::new(),
            kind: NetKind::Wire,
            range: None,
            name: wire,
            mem_range: None,
            init: Some(expr),
        }));
        // Latched trigger register used inside the state machine body.
        out.items.push(reg_decl(&trigger_name(ev), 1, Some(0)));
    }

    // Shadow registers for deferred non-blocking assignments.
    for name in &machine.shadowed {
        let width = module.width_of_var(name);
        out.items.push(reg_decl(&shadow_name(name), width, Some(0)));
        out.items.push(reg_decl(&pending_name(name), 1, Some(0)));
    }

    // Original continuous assignments are synthesizable and pass through unchanged.
    for a in &module.assigns {
        out.items.push(Item::ContinuousAssign(a.clone()));
    }

    // ---------------------------------------------------------------- core block
    let mut body: Vec<Stmt> = Vec::new();

    // (a) Acknowledge a pending task when the runtime asserts CONT.
    body.push(Stmt::If {
        cond: Expr::Binary(
            BinaryOp::Eq,
            Box::new(Expr::ident("__abi")),
            Box::new(Expr::sized(8, ABI_CONT)),
        ),
        then: Box::new(Stmt::Blocking(Assign {
            lhs: LValue::Ident("__task".into()),
            rhs: Expr::sized(16, TASK_NONE),
        })),
        other: None,
    });

    // (b) Start a new virtual tick when idle and any edge fired: latch triggers.
    if !core.events.is_empty() {
        let mut any_edge: Option<Expr> = None;
        let mut latch_stmts = Vec::new();
        for ev in &core.events {
            let wire = Expr::ident(edge_wire_name(ev));
            any_edge = Some(match any_edge {
                None => wire.clone(),
                Some(e) => Expr::Binary(BinaryOp::LogicalOr, Box::new(e), Box::new(wire.clone())),
            });
            latch_stmts.push(Stmt::Blocking(Assign {
                lhs: LValue::Ident(trigger_name(ev)),
                rhs: wire,
            }));
        }
        latch_stmts.push(Stmt::Blocking(Assign {
            lhs: LValue::Ident("__state".into()),
            rhs: Expr::sized(16, machine.entry as u64),
        }));
        body.push(Stmt::If {
            cond: Expr::Binary(
                BinaryOp::LogicalAnd,
                Box::new(Expr::Binary(
                    BinaryOp::Eq,
                    Box::new(Expr::ident("__state")),
                    Box::new(Expr::sized(16, machine.final_state as u64)),
                )),
                Box::new(any_edge.unwrap()),
            ),
            then: Box::new(Stmt::Block(latch_stmts)),
            other: None,
        });
    }

    // (c) One `if` per state, emitted in increasing id order for fall-through.
    for state in &machine.states {
        if state.id == machine.final_state {
            continue;
        }
        let mut stmts = state.stmts.clone();
        match &state.terminator {
            Terminator::Goto(t) => stmts.push(set_state(*t)),
            Terminator::Task { task, resume } => {
                stmts.push(Stmt::Blocking(Assign {
                    lhs: LValue::Ident("__task".into()),
                    rhs: Expr::sized(16, *task as u64),
                }));
                stmts.push(set_state(*resume));
            }
            Terminator::Branch {
                cond,
                then_state,
                else_state,
            } => stmts.push(Stmt::Blocking(Assign {
                lhs: LValue::Ident("__state".into()),
                rhs: Expr::Ternary(
                    Box::new(cond.clone()),
                    Box::new(Expr::sized(16, *then_state as u64)),
                    Box::new(Expr::sized(16, *else_state as u64)),
                ),
            })),
            Terminator::Done => {}
        }
        body.push(Stmt::If {
            cond: Expr::Binary(
                BinaryOp::LogicalAnd,
                Box::new(Expr::Binary(
                    BinaryOp::Eq,
                    Box::new(Expr::ident("__state")),
                    Box::new(Expr::sized(16, state.id as u64)),
                )),
                Box::new(Expr::Binary(
                    BinaryOp::Eq,
                    Box::new(Expr::ident("__task")),
                    Box::new(Expr::sized(16, TASK_NONE)),
                )),
            ),
            then: Box::new(Stmt::Block(stmts)),
            other: None,
        });
    }

    // (d) Update the previous-value registers used for edge detection.
    for sig in &declared_prev {
        body.push(Stmt::NonBlocking(Assign {
            lhs: LValue::Ident(prev_reg_name(sig)),
            rhs: Expr::ident(sig.clone()),
        }));
    }

    out.items.push(Item::Always(AlwaysBlock {
        events: vec![Event {
            edge: Edge::Pos,
            expr: Expr::ident("__clk"),
        }],
        body: Stmt::Block(body),
    }));

    // ---------------------------------------------------------------- status wires
    out.items.push(Item::ContinuousAssign(Assign {
        lhs: LValue::Ident("__done".into()),
        rhs: Expr::Binary(
            BinaryOp::LogicalAnd,
            Box::new(Expr::Binary(
                BinaryOp::Eq,
                Box::new(Expr::ident("__state")),
                Box::new(Expr::sized(16, machine.final_state as u64)),
            )),
            Box::new(Expr::Binary(
                BinaryOp::Eq,
                Box::new(Expr::ident("__task")),
                Box::new(Expr::sized(16, TASK_NONE)),
            )),
        ),
    }));

    out
}

fn range(msb: u64, lsb: u64) -> Range {
    Range {
        msb: Expr::Literal(Bits::from_u64(32, msb)),
        lsb: Expr::Literal(Bits::from_u64(32, lsb)),
    }
}

fn reg_decl(name: &str, width: usize, init: Option<u64>) -> Item {
    Item::Decl(Decl {
        attributes: Vec::new(),
        kind: NetKind::Reg,
        range: if width > 1 {
            Some(range(width as u64 - 1, 0))
        } else {
            None
        },
        name: name.to_string(),
        mem_range: None,
        init: init.map(|v| Expr::Literal(Bits::from_u64(width, v))),
    })
}

fn set_state(target: u32) -> Stmt {
    Stmt::Blocking(Assign {
        lhs: LValue::Ident("__state".into()),
        rhs: Expr::sized(16, target as u64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_vlog::compile;

    fn lower_src(src: &str) -> (ElabModule, StateMachine) {
        let m = compile(src, "M").unwrap();
        let sm = lower(&m, TransformOptions::default()).unwrap();
        (m, sm)
    }

    #[test]
    fn task_free_design_has_three_states() {
        // Entry (whole body), latch, final.
        let (_, sm) = lower_src(
            r#"module M(input wire clock);
                   reg [7:0] c = 0;
                   always @(posedge clock) c <= c + 1;
               endmodule"#,
        );
        assert_eq!(sm.num_states(), 3);
        assert!(sm.tasks.is_empty());
        assert_eq!(sm.shadowed, vec!["c".to_string()]);
    }

    #[test]
    fn each_task_gets_a_state() {
        let (_, sm) = lower_src(
            r#"module M(input wire clock);
                   reg [31:0] n = 0;
                   always @(posedge clock) begin
                       $display(n);
                       n <= n + 1;
                       $display(n);
                   end
               endmodule"#,
        );
        assert_eq!(sm.tasks.len(), 2);
        let task_states = sm
            .states
            .iter()
            .filter(|s| matches!(s.terminator, Terminator::Task { .. }))
            .count();
        assert_eq!(task_states, 2);
    }

    #[test]
    fn figure_2_lowering_matches_paper_structure() {
        // The motivating example produces: read task, eof branch, display task,
        // finish task, and the else-branch accumulate state (Figure 5).
        let (_, sm) = lower_src(
            r#"module M(input wire clock);
                   reg [31:0] fd = 0;
                   reg [31:0] r = 0;
                   reg [127:0] sum = 0;
                   always @(posedge clock) begin
                       $fread(fd, r);
                       if ($feof(fd)) begin
                           $display(sum);
                           $finish(0);
                       end else
                           sum <= sum + r;
                   end
               endmodule"#,
        );
        assert_eq!(sm.tasks.len(), 3, "fread, display, finish");
        let kinds: Vec<TaskKind> = sm.tasks.iter().map(|t| t.kind).collect();
        for k in [TaskKind::Fread, TaskKind::Display, TaskKind::Finish] {
            assert!(kinds.contains(&k), "missing task {:?}", k);
        }
        let branches = sm
            .states
            .iter()
            .filter(|s| matches!(s.terminator, Terminator::Branch { .. }))
            .count();
        // The $feof conditional plus the latched-trigger guard around the section.
        assert_eq!(branches, 2);
        assert!(sm.shadowed.contains(&"sum".to_string()));
    }

    #[test]
    fn entry_state_precedes_successors_after_renumbering() {
        let (_, sm) = lower_src(
            r#"module M(input wire clock);
                   reg [31:0] n = 0;
                   always @(posedge clock) begin
                       $display(n);
                       n <= n + 1;
                   end
               endmodule"#,
        );
        // Entry is the lowest-numbered state and final is reachable from latch.
        assert_eq!(sm.entry, 0);
        assert!(sm.latch < sm.final_state || sm.final_state < sm.num_states() as u32);
        // Every terminator target is a valid state id.
        for s in &sm.states {
            match &s.terminator {
                Terminator::Goto(t) => assert!((*t as usize) < sm.num_states()),
                Terminator::Task { resume, .. } => assert!((*resume as usize) < sm.num_states()),
                Terminator::Branch {
                    then_state,
                    else_state,
                    ..
                } => {
                    assert!((*then_state as usize) < sm.num_states());
                    assert!((*else_state as usize) < sm.num_states());
                }
                Terminator::Done => {}
            }
        }
    }

    #[test]
    fn strip_tasks_mode_removes_all_tasks() {
        let m = compile(
            r#"module M(input wire clock);
                   reg [31:0] n = 0;
                   always @(posedge clock) begin
                       $display(n);
                       n <= n + 1;
                   end
               endmodule"#,
            "M",
        )
        .unwrap();
        let sm = lower(
            &m,
            TransformOptions {
                strip_tasks: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(sm.tasks.is_empty());
        assert_eq!(sm.num_states(), 3);
    }

    #[test]
    fn split_all_branches_creates_more_states() {
        let src = r#"module M(input wire clock);
                   reg [7:0] a = 0;
                   always @(posedge clock) begin
                       if (a == 0) a <= 1; else a <= 2;
                       if (a == 1) a <= 3;
                   end
               endmodule"#;
        let m = compile(src, "M").unwrap();
        let merged = lower(&m, TransformOptions::default()).unwrap();
        let split = lower(
            &m,
            TransformOptions {
                split_all_branches: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(split.num_states() > merged.num_states());
    }

    #[test]
    fn case_with_tasks_lowers_to_branches() {
        let (_, sm) = lower_src(
            r#"module M(input wire clock);
                   reg [1:0] s = 0;
                   always @(posedge clock)
                       case (s)
                           0: $display("zero");
                           1, 2: s <= 0;
                           default: $finish(0);
                       endcase
               endmodule"#,
        );
        assert_eq!(sm.tasks.len(), 2);
        let branches = sm
            .states
            .iter()
            .filter(|s| matches!(s.terminator, Terminator::Branch { .. }))
            .count();
        // One chained branch per labelled arm plus the trigger guard.
        assert_eq!(branches, 3);
    }

    #[test]
    fn repeat_with_tasks_unrolls() {
        let (_, sm) = lower_src(
            r#"module M(input wire clock);
                   reg [7:0] a = 0;
                   always @(posedge clock) repeat (3) $display(a);
               endmodule"#,
        );
        assert_eq!(sm.tasks.len(), 3);
    }

    #[test]
    fn for_with_tasks_is_rejected() {
        let m = compile(
            r#"module M(input wire clock);
                   integer i = 0;
                   always @(posedge clock)
                       for (i = 0; i < 4; i = i + 1) $display(i);
               endmodule"#,
            "M",
        )
        .unwrap();
        let err = lower(&m, TransformOptions::default()).unwrap_err();
        assert!(matches!(err, VlogError::Unsupported(_)));
    }

    #[test]
    fn emitted_module_parses_and_elaborates() {
        let m = compile(
            r#"module M(input wire clock, output wire [31:0] out);
                   reg [31:0] n = 0;
                   always @(posedge clock) begin
                       $display(n);
                       n <= n + 1;
                   end
                   assign out = n;
               endmodule"#,
            "M",
        )
        .unwrap();
        let core = merge_always(&m.always);
        let sm = lower(&m, TransformOptions::default()).unwrap();
        let module = emit_module(&m, &core, &sm, "M__synergy");
        let text = synergy_vlog::printer::print_module(&module);
        let elab = synergy_vlog::compile(&text, "M__synergy")
            .unwrap_or_else(|e| panic!("emitted module failed to elaborate: {}\n{}", e, text));
        // ABI plumbing exists.
        for var in [
            "__clk", "__abi", "__task", "__state", "__done", "n", "out", "clock",
        ] {
            assert!(elab.vars.contains_key(var), "missing {}", var);
        }
    }
}
