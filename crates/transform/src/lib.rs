//! # synergy-transform
//!
//! The SYNERGY compiler transformations (§3 of the paper): the passes that turn an
//! arbitrary Verilog program into one that can yield control to software at
//! sub-clock-tick granularity without violating the semantics of the original
//! program.
//!
//! The pipeline is:
//!
//! 1. **Scheduling transformations** ([`schedule`], Figure 3) — `fork/join`
//!    elimination, block flattening, and merging every `always` block into a single
//!    *core* guarded by the union of their events.
//! 2. **Control + state-machine transformations** ([`statemachine`], Figures 4
//!    and 5) — edge detection from `set`-delivered values, and lowering of the core
//!    onto a state machine whose states end at unsynthesizable tasks, with `__task`
//!    / `__state` / `__done` ABI signalling and deferred non-blocking assignment.
//! 3. **State analysis** ([`statevars`], §5.3) — identification of program state
//!    for `$save`/`$restart` and the quiescence/volatile analysis behind the
//!    paper's §6.3 results.
//!
//! The crate also hosts the loop/expression normalization analyses
//! ([`normalize`]) shared with the compiled-engine lowering in
//! `synergy-codegen`: interpreter-exact constant folding and bounded-loop
//! unroll planning.
//!
//! The top-level entry point is [`transform`], which produces a [`Transformed`]
//! bundle: the generated module (AST + source text + elaborated form), the state
//! machine, the task table, and the state report.
//!
//! # Example
//!
//! ```
//! use synergy_transform::{transform, TransformOptions};
//! use synergy_vlog::compile;
//!
//! let design = compile(
//!     r#"module M(input wire clock);
//!            reg [31:0] n = 0;
//!            always @(posedge clock) begin
//!                $display(n);
//!                n <= n + 1;
//!            end
//!        endmodule"#,
//!     "M",
//! )?;
//! let t = transform(&design, TransformOptions::default())?;
//! assert_eq!(t.machine.tasks.len(), 1);
//! assert!(t.source.contains("__state"));
//! # Ok::<(), synergy_vlog::VlogError>(())
//! ```

#![deny(missing_docs)]

pub mod normalize;
pub mod schedule;
pub mod statemachine;
pub mod statevars;

use serde::{Deserialize, Serialize};
use synergy_vlog::ast::Module;
use synergy_vlog::elaborate::ElabModule;
use synergy_vlog::VlogResult;

pub use normalize::{fold_expr, plan_unroll, stmt_writes, UnrollPlan};
pub use schedule::{merge_always, Core, CoreSection};
pub use statemachine::{
    emit_module, lower, lower_core, StateMachine, Terminator, TransformOptions, ABI_CONT, ABI_NONE,
    TASK_NONE,
};
pub use statevars::{analyze, StateReport, StateVar};

/// The result of running the full SYNERGY transformation pipeline on a design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transformed {
    /// Name of the original (untransformed) module.
    pub original_name: String,
    /// The generated module AST in the Figure-5 style.
    pub module: Module,
    /// The generated module as Verilog source text (what the hypervisor ships).
    pub source: String,
    /// The generated module elaborated and ready for execution or synthesis.
    pub elab: ElabModule,
    /// The lowered state machine and task table.
    pub machine: StateMachine,
    /// Program-state identification and volatile analysis.
    pub state: StateReport,
}

impl Transformed {
    /// Name of the generated module.
    pub fn name(&self) -> &str {
        &self.module.name
    }

    /// Number of native-clock state-machine states.
    pub fn num_states(&self) -> usize {
        self.machine.num_states()
    }
}

/// Runs the complete transformation pipeline on an elaborated design.
///
/// # Errors
///
/// Returns an error if the design contains constructs the state-machine lowering
/// cannot handle (see [`statemachine::lower`]) or if the generated module fails to
/// re-elaborate (which would indicate a bug in the emitter).
pub fn transform(module: &ElabModule, options: TransformOptions) -> VlogResult<Transformed> {
    let mut always = module.always.clone();
    if options.strip_tasks {
        for block in always.iter_mut() {
            block.body = statemachine::strip_system_tasks(&block.body);
        }
    }
    let core = merge_always(&always);
    let machine = lower_core(module, &core, options)?;
    let name = format!("{}__synergy", module.name);
    let generated = emit_module(module, &core, &machine, &name);
    let source = synergy_vlog::printer::print_module(&generated);
    let elab = synergy_vlog::compile(&source, &name)?;
    let state = analyze(module);
    Ok(Transformed {
        original_name: module.name.clone(),
        module: generated,
        source,
        elab,
        machine,
        state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_vlog::compile;

    const FILE_SUM: &str = r#"
        module M(input wire clock);
            integer fd = $fopen("data.bin");
            reg [31:0] r = 0;
            reg [127:0] sum = 0;
            always @(posedge clock) begin
                $fread(fd, r);
                if ($feof(fd)) begin
                    $display(sum);
                    $finish(0);
                end else
                    sum <= sum + r;
            end
        endmodule
    "#;

    #[test]
    fn transform_produces_elaborated_output() {
        let design = compile(FILE_SUM, "M").unwrap();
        let t = transform(&design, TransformOptions::default()).unwrap();
        assert_eq!(t.original_name, "M");
        assert_eq!(t.name(), "M__synergy");
        assert!(t.num_states() >= 5);
        assert_eq!(t.machine.tasks.len(), 3);
        // The generated source must contain the ABI plumbing of Figure 5.
        for needle in ["__state", "__task", "__done", "__abi", "__clk"] {
            assert!(
                t.source.contains(needle),
                "missing {} in:\n{}",
                needle,
                t.source
            );
        }
        // The elaborated output exposes the original program state untouched.
        assert!(t.elab.vars.contains_key("sum"));
        assert!(t.elab.vars.contains_key("r"));
    }

    #[test]
    fn strip_tasks_matches_cascade_baseline() {
        let design = compile(FILE_SUM, "M").unwrap();
        let cascade = transform(
            &design,
            TransformOptions {
                strip_tasks: true,
                ..Default::default()
            },
        )
        .unwrap();
        let synergy = transform(&design, TransformOptions::default()).unwrap();
        assert!(cascade.machine.tasks.is_empty());
        assert!(cascade.num_states() < synergy.num_states());
    }

    #[test]
    fn state_report_travels_with_transform() {
        let design = compile(FILE_SUM, "M").unwrap();
        let t = transform(&design, TransformOptions::default()).unwrap();
        assert!(!t.state.uses_yield);
        // fd, r, sum are program state.
        assert_eq!(t.state.vars.len(), 3);
        assert_eq!(t.state.total_bits(), 32 + 32 + 128);
    }

    #[test]
    fn multiple_clock_domains_are_supported() {
        // §3.2: "these transformations are sound even for programs with multiple
        // clock domains."
        let design = compile(
            r#"module M(input wire clk_a, input wire clk_b);
                   reg [7:0] a = 0;
                   reg [7:0] b = 0;
                   always @(posedge clk_a) a <= a + 1;
                   always @(posedge clk_b) b <= b + 2;
               endmodule"#,
            "M",
        )
        .unwrap();
        let t = transform(&design, TransformOptions::default()).unwrap();
        assert!(t.source.contains("__trig_pos_clk_a"));
        assert!(t.source.contains("__trig_pos_clk_b"));
        assert!(t.elab.vars.contains_key("__prev_clk_a"));
        assert!(t.elab.vars.contains_key("__prev_clk_b"));
    }

    #[test]
    fn generated_module_round_trips_through_parser() {
        let design = compile(FILE_SUM, "M").unwrap();
        let t = transform(&design, TransformOptions::default()).unwrap();
        let reparsed = synergy_vlog::parse(&t.source).unwrap();
        assert_eq!(reparsed.modules[0].name, "M__synergy");
        // Re-elaborating the printed text gives the same variable set.
        let re = synergy_vlog::compile(&t.source, "M__synergy").unwrap();
        assert_eq!(
            re.vars.keys().collect::<Vec<_>>(),
            t.elab.vars.keys().collect::<Vec<_>>()
        );
    }
}
