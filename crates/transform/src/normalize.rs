//! Loop and expression normalization shared between the transformation
//! pipeline and the compiled-engine lowering (`synergy-codegen`).
//!
//! The compiled engine widens its envelope by *unrolling* bounded `for`-loops
//! at compile time: when a loop's induction variable takes a statically
//! known sequence of values, every read of it inside the body folds to a
//! constant, dynamic memory indices become fixed element offsets, and the
//! per-iteration condition/step bytecode disappears. The analyses here are
//! deliberately exact mirrors of the reference interpreter's evaluation —
//! [`fold_expr`] reuses [`synergy_interp::apply_binary`] and friends so a
//! folded constant is bit-identical to what the interpreter would compute,
//! which is the property the cross-engine differential tests enforce.

use synergy_interp::{apply_binary, string_lit_bits};
use synergy_vlog::ast::{Assign, Expr, LValue, Stmt, TaskKind, UnaryOp};
use synergy_vlog::Bits;

/// A resolver for identifiers whose values are known at lowering time
/// (enclosing unrolled-loop induction variables). Returning `None` means the
/// identifier is a runtime value and the expression cannot fold.
pub type ConstLookup<'a> = dyn Fn(&str) -> Option<Bits> + 'a;

/// Constant-folds a pure expression, mirroring the interpreter's
/// `eval_expr` bit for bit (width semantics, shift clamping, short-circuit
/// ternaries). Returns `None` if the expression reads any identifier the
/// lookup cannot resolve, indexes a memory, or contains a system call.
///
/// Short-circuit note: like the interpreter, only the *taken* ternary branch
/// is evaluated, so an unfoldable (or impure) untaken branch does not defeat
/// folding.
pub fn fold_expr(expr: &Expr, lookup: &ConstLookup) -> Option<Bits> {
    match expr {
        Expr::Literal(b) => Some(b.clone()),
        Expr::StringLit(s) => Some(string_lit_bits(s)),
        Expr::Ident(name) => lookup(name),
        Expr::Index(base, idx) => {
            // Memories cannot appear here: the lookup only resolves scalar
            // induction variables, so a memory base fails to fold and the
            // caller falls back to runtime evaluation.
            let base = fold_expr(base, lookup)?;
            let idx = fold_expr(idx, lookup)?.to_u64() as usize;
            Some(Bits::from_bool(base.bit(idx)))
        }
        Expr::Slice(base, hi, lo) => {
            let base = fold_expr(base, lookup)?;
            let hi = fold_expr(hi, lookup)?.to_u64() as usize;
            let lo = fold_expr(lo, lookup)?.to_u64() as usize;
            Some(base.slice(hi.max(lo), hi.min(lo)))
        }
        Expr::Unary(op, a) => {
            let a = fold_expr(a, lookup)?;
            Some(match op {
                UnaryOp::Not => a.not(),
                UnaryOp::LogicalNot => Bits::from_bool(!a.to_bool()),
                UnaryOp::Neg => a.neg(),
                UnaryOp::Plus => a,
                UnaryOp::ReduceAnd => Bits::from_bool(a.reduce_and()),
                UnaryOp::ReduceOr => Bits::from_bool(a.reduce_or()),
                UnaryOp::ReduceXor => Bits::from_bool(a.reduce_xor()),
            })
        }
        Expr::Binary(op, a, b) => {
            let a = fold_expr(a, lookup)?;
            let b = fold_expr(b, lookup)?;
            Some(apply_binary(*op, &a, &b))
        }
        Expr::Ternary(c, a, b) => {
            let c = fold_expr(c, lookup)?;
            if c.to_bool() {
                fold_expr(a, lookup)
            } else {
                fold_expr(b, lookup)
            }
        }
        Expr::Concat(parts) => {
            let mut acc: Option<Bits> = None;
            for p in parts {
                let v = fold_expr(p, lookup)?;
                acc = Some(match acc {
                    None => v,
                    Some(a) => a.concat(&v),
                });
            }
            acc
        }
        Expr::Replicate(n, e) => {
            let n = fold_expr(n, lookup)?.to_u64() as usize;
            let v = fold_expr(e, lookup)?;
            Some(v.replicate(n))
        }
        Expr::SystemCall(..) => None,
    }
}

fn lvalue_written_name(lv: &LValue, out: &mut Vec<String>) {
    match lv {
        LValue::Ident(n) | LValue::Index(n, _) | LValue::Slice(n, _, _) => {
            if !out.iter().any(|x| x == n) {
                out.push(n.clone());
            }
        }
        LValue::Concat(parts) => parts.iter().for_each(|p| lvalue_written_name(p, out)),
    }
}

/// Identifiers a statement may write: blocking and non-blocking assignment
/// targets, `for` init/step variables, and `$fread` destinations. Used to
/// prove an induction variable is only written by its loop's init/step.
pub fn stmt_writes(stmt: &Stmt) -> Vec<String> {
    fn visit(stmt: &Stmt, out: &mut Vec<String>) {
        match stmt {
            Stmt::Block(v) | Stmt::Fork(v) => v.iter().for_each(|s| visit(s, out)),
            Stmt::Blocking(a) | Stmt::NonBlocking(a) => lvalue_written_name(&a.lhs, out),
            Stmt::If { then, other, .. } => {
                visit(then, out);
                if let Some(e) = other {
                    visit(e, out);
                }
            }
            Stmt::Case { arms, default, .. } => {
                arms.iter().for_each(|a| visit(&a.body, out));
                if let Some(d) = default {
                    visit(d, out);
                }
            }
            Stmt::For {
                init, step, body, ..
            } => {
                lvalue_written_name(&init.lhs, out);
                lvalue_written_name(&step.lhs, out);
                visit(body, out);
            }
            Stmt::Repeat { body, .. } => visit(body, out),
            Stmt::SystemTask(t) => {
                if t.kind == TaskKind::Fread {
                    if let Some(target) = t.args.get(1) {
                        match target {
                            Expr::Ident(n) => lvalue_written_name(&LValue::Ident(n.clone()), out),
                            Expr::Index(base, _) => {
                                if let Expr::Ident(n) = base.as_ref() {
                                    lvalue_written_name(&LValue::Ident(n.clone()), out);
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            Stmt::Null => {}
        }
    }
    let mut out = Vec::new();
    visit(stmt, &mut out);
    out
}

/// A fully resolved unrolling of one bounded `for`-loop.
#[derive(Debug, Clone, PartialEq)]
pub struct UnrollPlan {
    /// The induction variable.
    pub var: String,
    /// The variable's value at entry to each iteration, plus one final entry:
    /// the exit value the variable holds after the loop (so the plan has
    /// `trip_count() + 1` values). Every value is already resized to the
    /// variable's declared width, exactly as the interpreter's store would.
    pub values: Vec<Bits>,
}

impl UnrollPlan {
    /// Number of iterations the loop body executes.
    pub fn trip_count(&self) -> usize {
        self.values.len() - 1
    }
}

/// Attempts to statically resolve a `for`-loop's iteration sequence.
///
/// Succeeds when:
/// * init and step both assign the same plain identifier (the induction
///   variable),
/// * the init value, condition, and step fold under `outer` plus a binding
///   for the induction variable (so they read nothing the body can change),
/// * the body never writes the induction variable, and
/// * the trip count is at most `max_iters`.
///
/// `var_width` must be the variable's declared width; every planned value is
/// resized to it, mirroring the interpreter's assignment semantics.
pub fn plan_unroll(
    init: &Assign,
    cond: &Expr,
    step: &Assign,
    body: &Stmt,
    var_width: usize,
    max_iters: usize,
    outer: &ConstLookup,
) -> Option<UnrollPlan> {
    let LValue::Ident(var) = &init.lhs else {
        return None;
    };
    let LValue::Ident(step_var) = &step.lhs else {
        return None;
    };
    if var != step_var || stmt_writes(body).iter().any(|w| w == var) {
        return None;
    }
    let mut current = fold_expr(&init.rhs, outer)?.resize(var_width);
    let mut values = vec![current.clone()];
    for _ in 0..=max_iters {
        let bound = |name: &str| -> Option<Bits> {
            if name == var {
                Some(current.clone())
            } else {
                outer(name)
            }
        };
        if !fold_expr(cond, &bound)?.to_bool() {
            return Some(UnrollPlan {
                var: var.clone(),
                values,
            });
        }
        let next = fold_expr(&step.rhs, &bound)?.resize(var_width);
        current = next;
        values.push(current.clone());
    }
    // Trip count exceeds the unroll budget: leave the loop dynamic.
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_vlog::parser::parse_expr;

    fn no_outer(_: &str) -> Option<Bits> {
        None
    }

    fn assign(var: &str, rhs: &str) -> Assign {
        Assign {
            lhs: LValue::Ident(var.into()),
            rhs: parse_expr(rhs).unwrap(),
        }
    }

    #[test]
    fn fold_matches_interpreter_width_semantics() {
        // (250 + 10) on 8-bit literals wraps just like the interpreter.
        let e = Expr::Binary(
            synergy_vlog::ast::BinaryOp::Add,
            Box::new(Expr::Literal(Bits::from_u64(8, 250))),
            Box::new(Expr::Literal(Bits::from_u64(8, 10))),
        );
        assert_eq!(fold_expr(&e, &no_outer), Some(Bits::from_u64(8, 4)));
    }

    #[test]
    fn fold_fails_on_unbound_idents_and_system_calls() {
        assert_eq!(fold_expr(&parse_expr("x + 1").unwrap(), &no_outer), None);
        assert_eq!(fold_expr(&parse_expr("$random").unwrap(), &no_outer), None);
        let with_x = |n: &str| (n == "x").then(|| Bits::from_u64(32, 5));
        assert_eq!(
            fold_expr(&parse_expr("x * 9 + 2").unwrap(), &with_x),
            Some(Bits::from_u64(32, 47))
        );
    }

    #[test]
    fn fold_ternary_ignores_untaken_branch() {
        let e = parse_expr("1 ? 7 : $random").unwrap();
        assert_eq!(fold_expr(&e, &no_outer).map(|b| b.to_u64()), Some(7));
    }

    #[test]
    fn plan_simple_counting_loop() {
        let body = Stmt::Null;
        let plan = plan_unroll(
            &assign("i", "0"),
            &parse_expr("i < 4").unwrap(),
            &assign("i", "i + 1"),
            &body,
            32,
            64,
            &no_outer,
        )
        .unwrap();
        assert_eq!(plan.trip_count(), 4);
        assert_eq!(
            plan.values.iter().map(Bits::to_u64).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn plan_rejects_body_writing_the_induction_variable() {
        let body = Stmt::Blocking(assign("i", "i + 2"));
        assert!(plan_unroll(
            &assign("i", "0"),
            &parse_expr("i < 4").unwrap(),
            &assign("i", "i + 1"),
            &body,
            32,
            64,
            &no_outer,
        )
        .is_none());
    }

    #[test]
    fn plan_rejects_runtime_bounds_and_huge_trips() {
        assert!(plan_unroll(
            &assign("i", "0"),
            &parse_expr("i < n").unwrap(),
            &assign("i", "i + 1"),
            &Stmt::Null,
            32,
            64,
            &no_outer,
        )
        .is_none());
        assert!(plan_unroll(
            &assign("i", "0"),
            &parse_expr("i < 1000").unwrap(),
            &assign("i", "i + 1"),
            &Stmt::Null,
            32,
            64,
            &no_outer,
        )
        .is_none());
    }

    #[test]
    fn plan_resolves_outer_bindings_and_width_wrap() {
        // A 4-bit induction variable wraps: i = 14, 15, 0 — the loop exits
        // when i wraps below the bound, exactly as the interpreter iterates.
        let plan = plan_unroll(
            &assign("i", "base"),
            &parse_expr("i >= 14").unwrap(),
            &assign("i", "i + 1"),
            &Stmt::Null,
            4,
            64,
            &|n| (n == "base").then(|| Bits::from_u64(32, 14)),
        )
        .unwrap();
        assert_eq!(
            plan.values.iter().map(Bits::to_u64).collect::<Vec<_>>(),
            vec![14, 15, 0]
        );
    }

    #[test]
    fn stmt_writes_sees_fread_and_nested_targets() {
        let s = Stmt::Block(vec![
            Stmt::Blocking(assign("a", "1")),
            Stmt::SystemTask(synergy_vlog::ast::SystemTask {
                kind: TaskKind::Fread,
                args: vec![parse_expr("fd").unwrap(), parse_expr("buf").unwrap()],
            }),
            Stmt::If {
                cond: parse_expr("a").unwrap(),
                then: Box::new(Stmt::NonBlocking(assign("b", "2"))),
                other: None,
            },
        ]);
        let w = stmt_writes(&s);
        assert!(w.contains(&"a".to_string()));
        assert!(w.contains(&"buf".to_string()));
        assert!(w.contains(&"b".to_string()));
        assert!(!w.contains(&"fd".to_string()));
    }
}
