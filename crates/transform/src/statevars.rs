//! State-variable identification and the quiescence/volatile analysis (§5.3).
//!
//! SYNERGY satisfies AmorphOS's state-capture requirement transparently by using
//! compiler analysis to identify the set of variables that comprise a program's
//! state. By default every register is `non_volatile` and is saved/restored by the
//! runtime. Programs that assert `$yield` opt into the quiescence interface: their
//! registers become volatile by default (ignored by state-safe compilations) unless
//! explicitly annotated `(* non_volatile *)`, which is where the LUT/FF savings in
//! §6.3 come from.

use serde::{Deserialize, Serialize};
use synergy_vlog::ast::{Stmt, SystemTask, TaskKind};
use synergy_vlog::elaborate::ElabModule;

/// A single item of program state identified by the compiler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateVar {
    /// Flattened variable name.
    pub name: String,
    /// Total state bits (width × depth).
    pub bits: usize,
    /// `true` if this is a 1-D memory.
    pub is_memory: bool,
    /// `true` if the variable is ignored by state-safe compilation (quiescence
    /// programs only).
    pub volatile: bool,
}

/// The result of the state analysis for one program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StateReport {
    /// Whether the program uses the `$yield` quiescence interface.
    pub uses_yield: bool,
    /// Every stateful variable, in name order.
    pub vars: Vec<StateVar>,
}

impl StateReport {
    /// Total architectural state bits.
    pub fn total_bits(&self) -> usize {
        self.vars.iter().map(|v| v.bits).sum()
    }

    /// State bits that must be captured by `$save` / state-safe compilation.
    pub fn captured_bits(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| !v.volatile)
            .map(|v| v.bits)
            .sum()
    }

    /// State bits that are volatile (managed by the application across `$yield`).
    pub fn volatile_bits(&self) -> usize {
        self.total_bits() - self.captured_bits()
    }

    /// Fraction of state bits that are volatile, in `[0, 1]`.
    pub fn volatile_fraction(&self) -> f64 {
        let total = self.total_bits();
        if total == 0 {
            0.0
        } else {
            self.volatile_bits() as f64 / total as f64
        }
    }

    /// Names of the variables that `$save` must capture.
    pub fn captured_names(&self) -> Vec<&str> {
        self.vars
            .iter()
            .filter(|v| !v.volatile)
            .map(|v| v.name.as_str())
            .collect()
    }
}

/// Returns `true` if the statement tree contains a `$yield` task.
pub fn stmt_uses_yield(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::SystemTask(SystemTask {
            kind: TaskKind::Yield,
            ..
        }) => true,
        Stmt::Block(v) | Stmt::Fork(v) => v.iter().any(stmt_uses_yield),
        Stmt::If { then, other, .. } => {
            stmt_uses_yield(then) || other.as_ref().is_some_and(|s| stmt_uses_yield(s))
        }
        Stmt::Case { arms, default, .. } => {
            arms.iter().any(|a| stmt_uses_yield(&a.body))
                || default.as_ref().is_some_and(|s| stmt_uses_yield(s))
        }
        Stmt::For { body, .. } | Stmt::Repeat { body, .. } => stmt_uses_yield(body),
        _ => false,
    }
}

/// Analyses a program's state: which registers exist, how many bits they hold, and
/// which are volatile under the quiescence interface.
pub fn analyze(module: &ElabModule) -> StateReport {
    let uses_yield = module.always.iter().any(|b| stmt_uses_yield(&b.body))
        || module.initials.iter().any(stmt_uses_yield);
    let mut vars = Vec::new();
    for var in module.vars.values() {
        if !var.is_register() {
            continue;
        }
        // Compiler-introduced bookkeeping registers are never program state.
        if var.name.starts_with("__") {
            continue;
        }
        let volatile = uses_yield && !var.non_volatile;
        vars.push(StateVar {
            name: var.name.clone(),
            bits: var.state_bits(),
            is_memory: var.depth.is_some(),
            volatile,
        });
    }
    StateReport { uses_yield, vars }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_vlog::compile;

    #[test]
    fn without_yield_everything_is_captured() {
        let m = compile(
            r#"module M(input wire clock);
                   reg [31:0] a = 0;
                   reg [7:0] mem [0:15];
                   always @(posedge clock) a <= a + 1;
               endmodule"#,
            "M",
        )
        .unwrap();
        let report = analyze(&m);
        assert!(!report.uses_yield);
        assert_eq!(report.total_bits(), 32 + 128);
        assert_eq!(report.captured_bits(), report.total_bits());
        assert_eq!(report.volatile_fraction(), 0.0);
    }

    #[test]
    fn yield_makes_unannotated_state_volatile() {
        // Mirrors Figure 8 of the paper.
        let m = compile(
            r#"module Root(input wire clock);
                   (* non_volatile *) reg [31:0] x = 0;
                   reg [31:0] y = 0;
                   always @(posedge clock) begin
                       if (x > 10) $yield;
                       y <= y + 1;
                   end
               endmodule"#,
            "Root",
        )
        .unwrap();
        let report = analyze(&m);
        assert!(report.uses_yield);
        assert_eq!(report.total_bits(), 64);
        assert_eq!(report.captured_bits(), 32);
        assert_eq!(report.captured_names(), vec!["x"]);
        assert!((report.volatile_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn compiler_temporaries_are_not_program_state() {
        let m = compile(
            r#"module M(input wire clock);
                   reg [31:0] a = 0;
                   reg [31:0] __scratch = 0;
                   always @(posedge clock) a <= a + 1;
               endmodule"#,
            "M",
        )
        .unwrap();
        let report = analyze(&m);
        assert_eq!(report.vars.len(), 1);
        assert_eq!(report.vars[0].name, "a");
    }

    #[test]
    fn memories_are_flagged() {
        let m = compile(
            r#"module M(input wire clock);
                   reg [7:0] mem [0:255];
                   reg [7:0] r = 0;
               endmodule"#,
            "M",
        )
        .unwrap();
        let report = analyze(&m);
        let mem = report.vars.iter().find(|v| v.name == "mem").unwrap();
        assert!(mem.is_memory);
        assert_eq!(mem.bits, 2048);
        assert!(
            !report
                .vars
                .iter()
                .find(|v| v.name == "r")
                .unwrap()
                .is_memory
        );
    }
}
