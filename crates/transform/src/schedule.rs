//! Scheduling transformations (Figure 3 of the paper).
//!
//! These passes establish the invariant that all procedural logic appears in a
//! single control statement (the *core*):
//!
//! 1. `fork/join` blocks are replaced by `begin/end` blocks — sequential execution
//!    is a valid scheduling of the parallel block.
//! 2. Nested `begin/end` blocks are flattened.
//! 3. All `always` blocks are merged into a single *core* block guarded by the
//!    union of their events; each original body is guarded by a name-mangled
//!    version of its original guard (`__trig_pos_clock`, ...), because all of the
//!    conjuncts would otherwise execute whenever the core triggers.

use serde::{Deserialize, Serialize};
use synergy_vlog::ast::*;

/// The name-mangled trigger register for an event guard.
///
/// `posedge clock` becomes `__trig_pos_clock`, `negedge x` becomes `__trig_neg_x`,
/// and a level event on `x` becomes `__trig_any_x`.
pub fn trigger_name(event: &Event) -> String {
    let base = match &event.expr {
        Expr::Ident(n) => n.clone(),
        other => format!("expr{:x}", fingerprint(other)),
    };
    match event.edge {
        Edge::Pos => format!("__trig_pos_{}", base),
        Edge::Neg => format!("__trig_neg_{}", base),
        Edge::Any => format!("__trig_any_{}", base),
    }
}

/// The edge-detection wire name for an event (`__pos_clock`, `__neg_x`, `__any_x`);
/// the Figure 4 `D` transformation.
pub fn edge_wire_name(event: &Event) -> String {
    let base = match &event.expr {
        Expr::Ident(n) => n.clone(),
        other => format!("expr{:x}", fingerprint(other)),
    };
    match event.edge {
        Edge::Pos => format!("__pos_{}", base),
        Edge::Neg => format!("__neg_{}", base),
        Edge::Any => format!("__any_{}", base),
    }
}

/// The previous-value register used for edge detection on a signal (`__prev_clock`).
pub fn prev_reg_name(signal: &str) -> String {
    format!("__prev_{}", signal)
}

fn fingerprint(e: &Expr) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    format!("{:?}", e).hash(&mut h);
    h.finish()
}

/// A merged core: one guarded section per original `always` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Core {
    /// The distinct events guarding the core (union of all original guards).
    pub events: Vec<Event>,
    /// One section per original always block, in source order.
    pub sections: Vec<CoreSection>,
}

/// One original always block after normalisation: its guards and its body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreSection {
    /// Events that triggered the original block.
    pub events: Vec<Event>,
    /// Normalised body (fork/join removed, blocks flattened).
    pub body: Stmt,
}

/// Replaces every `fork/join` block with an equivalent `begin/end` block (S rule 1
/// in Figure 3).
pub fn remove_fork_join(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Fork(stmts) | Stmt::Block(stmts) => {
            Stmt::Block(stmts.iter().map(remove_fork_join).collect())
        }
        Stmt::If { cond, then, other } => Stmt::If {
            cond: cond.clone(),
            then: Box::new(remove_fork_join(then)),
            other: other.as_ref().map(|s| Box::new(remove_fork_join(s))),
        },
        Stmt::Case {
            expr,
            arms,
            default,
        } => Stmt::Case {
            expr: expr.clone(),
            arms: arms
                .iter()
                .map(|a| CaseArm {
                    labels: a.labels.clone(),
                    body: remove_fork_join(&a.body),
                })
                .collect(),
            default: default.as_ref().map(|s| Box::new(remove_fork_join(s))),
        },
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => Stmt::For {
            init: init.clone(),
            cond: cond.clone(),
            step: step.clone(),
            body: Box::new(remove_fork_join(body)),
        },
        Stmt::Repeat { count, body } => Stmt::Repeat {
            count: count.clone(),
            body: Box::new(remove_fork_join(body)),
        },
        other => other.clone(),
    }
}

/// Flattens nested `begin/end` blocks into a single block (S rule 2 in Figure 3).
pub fn flatten_blocks(stmt: &Stmt) -> Stmt {
    fn flatten_into(stmt: &Stmt, out: &mut Vec<Stmt>) {
        match stmt {
            Stmt::Block(stmts) => stmts.iter().for_each(|s| flatten_into(s, out)),
            other => out.push(flatten_one(other)),
        }
    }
    fn flatten_one(stmt: &Stmt) -> Stmt {
        match stmt {
            Stmt::Block(_) => flatten_blocks(stmt),
            Stmt::If { cond, then, other } => Stmt::If {
                cond: cond.clone(),
                then: Box::new(flatten_blocks(then)),
                other: other.as_ref().map(|s| Box::new(flatten_blocks(s))),
            },
            Stmt::Case {
                expr,
                arms,
                default,
            } => Stmt::Case {
                expr: expr.clone(),
                arms: arms
                    .iter()
                    .map(|a| CaseArm {
                        labels: a.labels.clone(),
                        body: flatten_blocks(&a.body),
                    })
                    .collect(),
                default: default.as_ref().map(|s| Box::new(flatten_blocks(s))),
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: Box::new(flatten_blocks(body)),
            },
            Stmt::Repeat { count, body } => Stmt::Repeat {
                count: count.clone(),
                body: Box::new(flatten_blocks(body)),
            },
            other => other.clone(),
        }
    }
    match stmt {
        Stmt::Block(_) => {
            let mut out = Vec::new();
            flatten_into(stmt, &mut out);
            Stmt::Block(out)
        }
        other => flatten_one(other),
    }
}

/// Merges all `always` blocks into a single [`Core`] guarded by the union of their
/// events (the bottom rule of Figure 3).
pub fn merge_always(blocks: &[AlwaysBlock]) -> Core {
    let mut events: Vec<Event> = Vec::new();
    let mut sections = Vec::new();
    for block in blocks {
        for ev in &block.events {
            if !events.iter().any(|e| e == ev) {
                events.push(ev.clone());
            }
        }
        let body = flatten_blocks(&remove_fork_join(&block.body));
        sections.push(CoreSection {
            events: block.events.clone(),
            body,
        });
    }
    Core { events, sections }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_vlog::parse;

    fn always_blocks(src: &str) -> Vec<AlwaysBlock> {
        let file = parse(src).unwrap();
        file.modules[0]
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Always(b) => Some(b.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn fork_join_becomes_block() {
        let blocks = always_blocks(
            r#"module M(input wire clock);
                   reg [7:0] a = 0;
                   always @(posedge clock) fork a <= 1; a <= 2; join
               endmodule"#,
        );
        let s = remove_fork_join(&blocks[0].body);
        assert!(matches!(s, Stmt::Block(ref v) if v.len() == 2));
    }

    #[test]
    fn nested_blocks_flatten() {
        let blocks = always_blocks(
            r#"module M(input wire clock);
                   reg [7:0] a = 0;
                   always @(posedge clock) begin
                       begin a <= 1; begin a <= 2; end end
                       a <= 3;
                   end
               endmodule"#,
        );
        let s = flatten_blocks(&blocks[0].body);
        match s {
            Stmt::Block(v) => assert_eq!(v.len(), 3),
            other => panic!("expected block, got {:?}", other),
        }
    }

    #[test]
    fn flatten_preserves_branch_bodies() {
        let blocks = always_blocks(
            r#"module M(input wire clock);
                   reg [7:0] a = 0;
                   always @(posedge clock)
                       if (a == 0) begin begin a <= 1; end a <= 2; end
               endmodule"#,
        );
        let s = flatten_blocks(&remove_fork_join(&blocks[0].body));
        match s {
            Stmt::If { then, .. } => match *then {
                Stmt::Block(ref v) => assert_eq!(v.len(), 2),
                ref other => panic!("expected block, got {:?}", other),
            },
            other => panic!("expected if, got {:?}", other),
        }
    }

    #[test]
    fn merge_unions_events_and_keeps_sections() {
        let blocks = always_blocks(
            r#"module M(input wire clock, input wire go);
                   reg [7:0] a = 0;
                   reg [7:0] b = 0;
                   always @(posedge clock) a <= a + 1;
                   always @(posedge clock or negedge go) b <= b + 1;
               endmodule"#,
        );
        let core = merge_always(&blocks);
        assert_eq!(core.events.len(), 2, "posedge clock deduplicated");
        assert_eq!(core.sections.len(), 2);
        assert_eq!(core.sections[0].events.len(), 1);
        assert_eq!(core.sections[1].events.len(), 2);
    }

    #[test]
    fn trigger_and_edge_names() {
        let ev = Event {
            edge: Edge::Pos,
            expr: Expr::ident("clock"),
        };
        assert_eq!(trigger_name(&ev), "__trig_pos_clock");
        assert_eq!(edge_wire_name(&ev), "__pos_clock");
        assert_eq!(prev_reg_name("clock"), "__prev_clock");
        let ev = Event {
            edge: Edge::Any,
            expr: Expr::ident("x"),
        };
        assert_eq!(edge_wire_name(&ev), "__any_x");
    }
}
