//! # synergy-fpga
//!
//! Simulated FPGA substrate for the SYNERGY reproduction.
//!
//! The paper's evaluation runs on Altera DE10 SoCs and AWS F1 instances using the
//! vendor toolchains. This crate stands in for that hardware (see `DESIGN.md` for
//! the substitution rationale) and provides:
//!
//! * [`Device`] — capacity/clock/latency models for the DE10, F1, and a
//!   software-only target.
//! * [`synth`] — a deterministic synthesis/timing estimator applied uniformly to
//!   every compilation condition, preserving the relative overheads reported in
//!   Figures 13–15.
//! * [`BitstreamCache`] — the content-addressed compilation cache of §5.1/§7.
//! * [`Fabric`] — a device instance with admission control, reconfiguration
//!   accounting, and the shared global clock (the Figure 12 effect).
//! * [`SimClock`] — virtual wall-clock used by the experiment harnesses.
#![warn(missing_docs)]

mod bitstream;
mod device;
mod fabric;
pub mod synth;

pub use bitstream::{Bitstream, BitstreamCache, CacheStats, CompileOutcome};
pub use device::{Device, Transport};
pub use fabric::{Fabric, FabricError, LoadOutcome, LoadedDesign, SimClock, Utilization};
pub use synth::{estimate, RamStyle, SynthOptions, SynthReport};
