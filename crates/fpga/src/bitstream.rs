//! Bitstreams and the compilation cache.
//!
//! Synergy's backends rely on compilation caches to reduce overhead in production
//! environments (§5.1, §7): virtualization events must not wait for a 20-minute
//! Quartus build or a 2-hour Vivado build. Bitstreams here are content-addressed by
//! the generated source text plus the device and synthesis options, exactly like the
//! deterministic-code-generation keying the paper describes.

use crate::device::Device;
use crate::synth::{estimate, SynthOptions, SynthReport};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use synergy_vlog::elaborate::ElabModule;

/// A compiled configuration for a device: the output of synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bitstream {
    /// Content hash identifying this bitstream.
    pub id: u64,
    /// Name of the module the bitstream implements.
    pub module_name: String,
    /// Device the bitstream was compiled for.
    pub device_name: String,
    /// Resource usage and achieved timing.
    pub report: SynthReport,
}

/// Key for cache lookups.
fn cache_key(source: &str, device: &Device, options: &SynthOptions) -> u64 {
    let mut h = DefaultHasher::new();
    source.hash(&mut h);
    device.name.hash(&mut h);
    format!("{:?}", options).hash(&mut h);
    h.finish()
}

/// Statistics kept by the [`BitstreamCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of lookups that found an existing bitstream.
    pub hits: u64,
    /// Number of lookups that required a fresh compilation.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A shared, content-addressed bitstream cache.
///
/// Cloning the cache produces another handle to the same underlying storage, so a
/// hypervisor and its backends can share one cache.
#[derive(Debug, Clone, Default)]
pub struct BitstreamCache {
    inner: Arc<Mutex<CacheInner>>,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<u64, Bitstream>,
    stats: CacheStats,
}

/// The result of asking the cache to compile a design.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileOutcome {
    /// The bitstream (fresh or cached).
    pub bitstream: Bitstream,
    /// Whether the bitstream came from the cache.
    pub cache_hit: bool,
    /// Simulated latency of obtaining it: zero-ish for a hit, the full synthesis
    /// latency for a miss.
    pub latency_ns: u64,
}

impl BitstreamCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `module` (with source text `source`) for `device`, reusing a cached
    /// bitstream when the content key matches.
    pub fn compile(
        &self,
        source: &str,
        module: &ElabModule,
        device: &Device,
        options: SynthOptions,
    ) -> CompileOutcome {
        let key = cache_key(source, device, &options);
        {
            let mut inner = self.inner.lock();
            if let Some(bs) = inner.entries.get(&key).cloned() {
                inner.stats.hits += 1;
                return CompileOutcome {
                    bitstream: bs,
                    cache_hit: true,
                    // A cache hit is a database lookup, not a build (§5.1).
                    latency_ns: 1_000_000,
                };
            }
        }
        let report = estimate(module, device, options);
        let bitstream = Bitstream {
            id: key,
            module_name: module.name.clone(),
            device_name: device.name.clone(),
            report,
        };
        let mut inner = self.inner.lock();
        inner.stats.misses += 1;
        inner.entries.insert(key, bitstream.clone());
        CompileOutcome {
            bitstream,
            cache_hit: false,
            latency_ns: report.synth_latency_ns,
        }
    }

    /// Pre-populates the cache (the paper primes bitstream caches before running
    /// experiments, §6).
    pub fn prime(
        &self,
        source: &str,
        module: &ElabModule,
        device: &Device,
        options: SynthOptions,
    ) -> Bitstream {
        let outcome = self.compile(source, module, device, options);
        outcome.bitstream
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Number of distinct bitstreams stored.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// `true` if the cache holds no bitstreams.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_vlog::compile;

    fn design() -> (String, ElabModule) {
        let src = r#"module M(input wire clock, output wire [7:0] out);
                         reg [7:0] c = 0;
                         always @(posedge clock) c <= c + 1;
                         assign out = c;
                     endmodule"#;
        (src.to_string(), compile(src, "M").unwrap())
    }

    #[test]
    fn second_compile_hits_cache() {
        let (src, m) = design();
        let device = Device::f1();
        let cache = BitstreamCache::new();
        let opts = SynthOptions::native(&device);
        let first = cache.compile(&src, &m, &device, opts);
        let second = cache.compile(&src, &m, &device, opts);
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert!(second.latency_ns < first.latency_ns);
        assert_eq!(first.bitstream, second.bitstream);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_devices_get_different_bitstreams() {
        let (src, m) = design();
        let cache = BitstreamCache::new();
        let de10 = Device::de10();
        let f1 = Device::f1();
        cache.compile(&src, &m, &de10, SynthOptions::native(&de10));
        cache.compile(&src, &m, &f1, SynthOptions::native(&f1));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn different_options_are_not_conflated() {
        let (src, m) = design();
        let device = Device::f1();
        let cache = BitstreamCache::new();
        cache.compile(&src, &m, &device, SynthOptions::native(&device));
        cache.compile(&src, &m, &device, SynthOptions::synergy(&device, 64, 1));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_handles_see_the_same_cache() {
        let (src, m) = design();
        let device = Device::de10();
        let cache = BitstreamCache::new();
        let clone = cache.clone();
        cache.prime(&src, &m, &device, SynthOptions::native(&device));
        let outcome = clone.compile(&src, &m, &device, SynthOptions::native(&device));
        assert!(outcome.cache_hit);
    }

    #[test]
    fn hit_rate_reflects_usage() {
        let stats = CacheStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
