//! Synthesis, placement, and timing estimation for the simulated FPGA substrate.
//!
//! The real SYNERGY prototype invokes Quartus (DE10) or Vivado (F1) and reads the
//! reported resource usage and delay (§6.4). Those toolchains are not available
//! here, so this module provides a deterministic estimator that is applied
//! *uniformly* to every compilation condition (AmorphOS-native, Cascade, Synergy,
//! Synergy+quiescence). Because Figures 13–15 report values normalised to the
//! AmorphOS baseline, applying one consistent cost model preserves the shape of the
//! results: Synergy costs more fabric because the generated module materialises the
//! state machine, the edge-detection and shadow registers, and the state-capture
//! tree; quiescence reduces the capture tree; and designs whose RAMs degrade to
//! flip-flops (adpcm, mips32) blow up exactly as in the paper.

use crate::device::Device;
use serde::{Deserialize, Serialize};
use synergy_vlog::ast::*;
use synergy_vlog::elaborate::ElabModule;

/// How memories are implemented by the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RamStyle {
    /// Memories map to block RAM (native AmorphOS compilation).
    Bram,
    /// Memories are implemented with flip-flops and mux logic. This is what happens
    /// under Synergy's state-access transformation (§6.4): Vivado can no longer
    /// infer RAMs, which is the source of the adpcm/mips32 outliers.
    Ff,
}

/// Options for one synthesis run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthOptions {
    /// Memory implementation style.
    pub ram_style: RamStyle,
    /// Bits of program state for which get/set capture logic must be generated
    /// (0 for native compilations that provide no state capture).
    pub capture_bits: u64,
    /// Number of captured variables (sizes the read tree of §5.2).
    pub capture_vars: u64,
    /// Target clock in Hz (usually the device maximum or the AmorphOS 250 MHz).
    pub target_hz: u64,
    /// Apply the anti-congestion placement strategy discussed at the end of §6.4
    /// (improves achieved frequency on congested designs at a small LUT cost).
    pub anti_congestion: bool,
}

impl SynthOptions {
    /// Native compilation: no capture logic, block RAMs, device maximum clock.
    pub fn native(device: &Device) -> Self {
        SynthOptions {
            ram_style: RamStyle::Bram,
            capture_bits: 0,
            capture_vars: 0,
            target_hz: device.max_clock_hz,
            anti_congestion: false,
        }
    }

    /// Synergy compilation: full state capture and FF-based RAMs.
    pub fn synergy(device: &Device, capture_bits: u64, capture_vars: u64) -> Self {
        SynthOptions {
            ram_style: RamStyle::Ff,
            capture_bits,
            capture_vars,
            target_hz: device.max_clock_hz,
            anti_congestion: false,
        }
    }
}

/// The result of estimating one design on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthReport {
    /// Estimated LUT usage.
    pub luts: u64,
    /// Estimated flip-flop usage.
    pub ffs: u64,
    /// Estimated block-RAM bits.
    pub bram_bits: u64,
    /// Estimated critical-path delay in picoseconds.
    pub critical_path_ps: u64,
    /// Clock achieved after iterative frequency reduction, in Hz.
    pub achieved_hz: u64,
    /// Simulated synthesis/place/route latency in nanoseconds.
    pub synth_latency_ns: u64,
    /// Whether the design met timing at the requested target clock.
    pub met_timing_at_target: bool,
}

impl SynthReport {
    /// Achieved clock in MHz (for reporting alongside Figure 15).
    pub fn achieved_mhz(&self) -> f64 {
        self.achieved_hz as f64 / 1e6
    }

    /// Whether the design fits on the given device.
    pub fn fits(&self, device: &Device) -> bool {
        self.luts <= device.lut_capacity
            && self.ffs <= device.ff_capacity
            && self.bram_bits <= device.bram_bits
    }
}

/// Estimates resource usage and timing for `module` on `device`.
pub fn estimate(module: &ElabModule, device: &Device, options: SynthOptions) -> SynthReport {
    let mut cost = CostModel::new(module, options.ram_style);
    for assign in &module.assigns {
        cost.assign(assign);
    }
    for block in &module.always {
        cost.stmt(&block.body);
    }

    // Register flip-flops.
    let mut ffs: u64 = 0;
    let mut bram_bits: u64 = 0;
    for var in module.vars.values() {
        if !var.is_register() && var.depth.is_none() {
            continue;
        }
        match var.depth {
            None => {
                if var.is_register() {
                    ffs += var.width as u64;
                }
            }
            Some(depth) => {
                let bits = (var.width * depth) as u64;
                match options.ram_style {
                    RamStyle::Bram => bram_bits += bits,
                    RamStyle::Ff => {
                        // RAM degraded to flip-flops plus read/write mux logic.
                        ffs += bits;
                        cost.luts += bits / 2 + (depth as u64);
                    }
                }
            }
        }
    }

    // State-capture logic: write buffers and the pipelined read tree of §5.2.
    let capture_luts = options.capture_bits / 4 + options.capture_vars * 8;
    let capture_ffs = options.capture_bits / 8 + options.capture_vars * 2;
    let mut luts = cost.luts + capture_luts;
    let mut ffs = ffs + capture_ffs;
    if options.anti_congestion {
        // The anti-congestion strategy spreads logic out: a few more LUTs/FFs in
        // exchange for shorter routes.
        luts += luts / 50;
        ffs += ffs / 100;
    }

    // Timing model: logic depth plus congestion-dependent routing delay.
    let base_ps: u64 = 2_000;
    let depth_ps = 320 * cost.max_depth as u64;
    let congestion = luts as f64 / device.lut_capacity as f64;
    let congestion_ps = (congestion * 4_500.0) as u64;
    let congestion_ps = if options.anti_congestion {
        (congestion_ps as f64 * 0.55) as u64
    } else {
        congestion_ps
    };
    // Deterministic jitter models run-to-run compiler volatility (§6.4 notes nw
    // sometimes beats native because of it).
    let jitter = (fingerprint(&module.name, luts) % 600) as i64 - 300;
    let critical_path_ps = ((base_ps + depth_ps + congestion_ps) as i64 + jitter).max(1_000) as u64;

    let raw_hz = 1_000_000_000_000u64 / critical_path_ps;
    let met_timing_at_target = raw_hz >= options.target_hz;
    let achieved_hz = if met_timing_at_target {
        options.target_hz
    } else {
        device.quantize_clock(raw_hz)
    };

    let synth_latency_ns =
        device.synth_base_latency_ns + device.synth_base_latency_ns * luts / 200_000;

    SynthReport {
        luts,
        ffs,
        bram_bits,
        critical_path_ps,
        achieved_hz,
        synth_latency_ns,
        met_timing_at_target,
    }
}

fn fingerprint(name: &str, luts: u64) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    luts.hash(&mut h);
    h.finish()
}

/// Walks expressions and statements accumulating LUT cost and logic depth.
struct CostModel<'a> {
    module: &'a ElabModule,
    ram_style: RamStyle,
    luts: u64,
    max_depth: u32,
}

impl<'a> CostModel<'a> {
    fn new(module: &'a ElabModule, ram_style: RamStyle) -> Self {
        CostModel {
            module,
            ram_style,
            luts: 0,
            max_depth: 0,
        }
    }

    fn assign(&mut self, a: &Assign) {
        let d = self.expr(&a.rhs);
        self.lvalue(&a.lhs);
        self.max_depth = self.max_depth.max(d);
    }

    fn lvalue(&mut self, lv: &LValue) {
        match lv {
            LValue::Ident(_) => {}
            LValue::Index(name, idx) => {
                let d = self.expr(idx);
                self.max_depth = self.max_depth.max(d + 1);
                if let Some(var) = self.module.var(name) {
                    if let Some(depth) = var.depth {
                        // Write decode logic.
                        self.luts += match self.ram_style {
                            RamStyle::Bram => 2,
                            RamStyle::Ff => (depth as u64) / 4 + var.width as u64 / 4,
                        };
                    } else {
                        self.luts += 1;
                    }
                }
            }
            LValue::Slice(_, hi, lo) => {
                let d = self.expr(hi).max(self.expr(lo));
                self.max_depth = self.max_depth.max(d);
                self.luts += 1;
            }
            LValue::Concat(parts) => parts.iter().for_each(|p| self.lvalue(p)),
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Block(v) | Stmt::Fork(v) => v.iter().for_each(|s| self.stmt(s)),
            Stmt::Blocking(a) | Stmt::NonBlocking(a) => self.assign(a),
            Stmt::If { cond, then, other } => {
                let d = self.expr(cond);
                self.max_depth = self.max_depth.max(d + 1);
                self.luts += 2;
                self.stmt(then);
                if let Some(e) = other {
                    self.stmt(e);
                }
            }
            Stmt::Case {
                expr,
                arms,
                default,
            } => {
                let d = self.expr(expr);
                self.max_depth = self.max_depth.max(d + 1);
                for arm in arms {
                    for l in &arm.labels {
                        self.expr(l);
                    }
                    self.luts += self.width(expr) / 2 + 1;
                    self.stmt(&arm.body);
                }
                if let Some(e) = default {
                    self.stmt(e);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // Synthesizable loops are fully unrolled by the tools; approximate
                // with a modest multiplier on the body cost.
                let before = self.luts;
                self.assign(init);
                self.expr(cond);
                self.assign(step);
                self.stmt(body);
                let body_cost = self.luts - before;
                self.luts += body_cost * 3;
            }
            Stmt::Repeat { count, body } => {
                let before = self.luts;
                self.expr(count);
                self.stmt(body);
                let body_cost = self.luts - before;
                self.luts += body_cost * 3;
            }
            Stmt::SystemTask(t) => {
                // Task argument datapaths still exist in hardware (they feed the
                // runtime through get requests).
                for a in &t.args {
                    self.expr(a);
                }
            }
            Stmt::Null => {}
        }
    }

    fn width(&self, e: &Expr) -> u64 {
        self.module.width_of(e) as u64
    }

    /// Returns the logic depth of the expression and adds its LUT cost.
    fn expr(&mut self, e: &Expr) -> u32 {
        match e {
            Expr::Literal(_) | Expr::StringLit(_) | Expr::Ident(_) => 0,
            Expr::Index(base, idx) => {
                let d = self.expr(idx).max(self.expr(base));
                if let Expr::Ident(name) = base.as_ref() {
                    if let Some(var) = self.module.var(name) {
                        if let Some(depth) = var.depth {
                            self.luts += match self.ram_style {
                                RamStyle::Bram => 2,
                                RamStyle::Ff => (depth * var.width) as u64 / 8,
                            };
                            return d + 2;
                        }
                    }
                }
                self.luts += 1;
                d + 1
            }
            Expr::Slice(base, hi, lo) => self.expr(base).max(self.expr(hi)).max(self.expr(lo)),
            Expr::Unary(op, a) => {
                let w = self.width(a);
                let d = self.expr(a);
                self.luts += match op {
                    UnaryOp::Not | UnaryOp::Neg => w,
                    UnaryOp::Plus => 0,
                    UnaryOp::LogicalNot => 1,
                    _ => w / 2,
                };
                d + 1
            }
            Expr::Binary(op, a, b) => {
                let w = self.width(a).max(self.width(b));
                let da = self.expr(a);
                let db = self.expr(b);
                let (cost, depth) = match op {
                    BinaryOp::Add | BinaryOp::Sub => (w, 2),
                    BinaryOp::Mul => ((w * w / 8).max(w), 4),
                    BinaryOp::Div | BinaryOp::Rem => ((w * w / 4).max(w), 6),
                    BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => (w, 1),
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => {
                        if matches!(b.as_ref(), Expr::Literal(_)) {
                            (0, 0)
                        } else {
                            (w * 2, 2)
                        }
                    }
                    BinaryOp::LogicalAnd | BinaryOp::LogicalOr => (1, 1),
                    _ => (w / 2 + 1, 2),
                };
                self.luts += cost;
                da.max(db) + depth
            }
            Expr::Ternary(c, a, b) => {
                let w = self.width(a).max(self.width(b));
                let d = self.expr(c).max(self.expr(a)).max(self.expr(b));
                self.luts += w;
                d + 1
            }
            Expr::Concat(parts) => parts.iter().map(|p| self.expr(p)).max().unwrap_or(0),
            Expr::Replicate(n, e) => self.expr(n).max(self.expr(e)),
            Expr::SystemCall(_, args) => args.iter().map(|a| self.expr(a)).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_vlog::compile;

    fn small_design() -> ElabModule {
        compile(
            r#"module M(input wire clock, output wire [31:0] out);
                   reg [31:0] acc = 0;
                   always @(posedge clock) acc <= acc + 1;
                   assign out = acc * 3;
               endmodule"#,
            "M",
        )
        .unwrap()
    }

    fn ram_design() -> ElabModule {
        compile(
            r#"module M(input wire clock, input wire [9:0] addr, input wire [31:0] din,
                        input wire we, output wire [31:0] dout);
                   reg [31:0] mem [0:1023];
                   always @(posedge clock) if (we) mem[addr] <= din;
                   assign dout = mem[addr];
               endmodule"#,
            "M",
        )
        .unwrap()
    }

    #[test]
    fn small_design_fits_easily() {
        let m = small_design();
        let device = Device::de10();
        let r = estimate(&m, &device, SynthOptions::native(&device));
        assert!(r.luts > 0 && r.luts < 2_000);
        assert_eq!(r.ffs, 32);
        assert!(r.fits(&device));
        assert!(r.achieved_hz <= device.max_clock_hz);
    }

    #[test]
    fn ff_ram_style_costs_more_than_bram() {
        let m = ram_design();
        let device = Device::f1();
        let bram = estimate(&m, &device, SynthOptions::native(&device));
        let ff = estimate(
            &m,
            &device,
            SynthOptions {
                ram_style: RamStyle::Ff,
                ..SynthOptions::native(&device)
            },
        );
        assert!(bram.bram_bits > 0);
        assert_eq!(ff.bram_bits, 0);
        assert!(ff.ffs > bram.ffs + 30_000, "32K memory bits become FFs");
        assert!(ff.luts > bram.luts);
    }

    #[test]
    fn capture_logic_adds_resources() {
        let m = small_design();
        let device = Device::f1();
        let without = estimate(&m, &device, SynthOptions::native(&device));
        let with = estimate(&m, &device, SynthOptions::synergy(&device, 4_096, 8));
        assert!(with.luts > without.luts);
        assert!(with.ffs > without.ffs);
    }

    #[test]
    fn quiescence_reduces_capture_cost() {
        let m = small_design();
        let device = Device::f1();
        let full = estimate(&m, &device, SynthOptions::synergy(&device, 100_000, 40));
        let quiesced = estimate(&m, &device, SynthOptions::synergy(&device, 1_000, 2));
        assert!(quiesced.luts < full.luts);
        assert!(quiesced.ffs < full.ffs);
    }

    #[test]
    fn congested_designs_lose_frequency() {
        let m = ram_design();
        let device = Device::de10();
        // FF RAM style on a small device pushes utilisation and slows the clock.
        let r = estimate(
            &m,
            &device,
            SynthOptions {
                ram_style: RamStyle::Ff,
                capture_bits: 32 * 1024,
                capture_vars: 2,
                target_hz: device.max_clock_hz,
                anti_congestion: false,
            },
        );
        let native = estimate(&m, &device, SynthOptions::native(&device));
        assert!(r.critical_path_ps >= native.critical_path_ps);
    }

    #[test]
    fn anti_congestion_improves_timing() {
        let m = ram_design();
        let device = Device::de10();
        let base = SynthOptions {
            ram_style: RamStyle::Ff,
            capture_bits: 32 * 1024,
            capture_vars: 2,
            target_hz: device.max_clock_hz,
            anti_congestion: false,
        };
        let plain = estimate(&m, &device, base);
        let tuned = estimate(
            &m,
            &device,
            SynthOptions {
                anti_congestion: true,
                ..base
            },
        );
        assert!(tuned.critical_path_ps < plain.critical_path_ps);
        assert!(tuned.luts >= plain.luts);
    }

    #[test]
    fn estimates_are_deterministic() {
        let m = small_design();
        let device = Device::f1();
        let a = estimate(&m, &device, SynthOptions::native(&device));
        let b = estimate(&m, &device, SynthOptions::native(&device));
        assert_eq!(a, b);
    }

    #[test]
    fn synth_latency_scales_with_size() {
        let small = small_design();
        let big = ram_design();
        let device = Device::f1();
        let opts = SynthOptions {
            ram_style: RamStyle::Ff,
            ..SynthOptions::native(&device)
        };
        let a = estimate(&small, &device, opts);
        let b = estimate(&big, &device, opts);
        assert!(b.synth_latency_ns >= a.synth_latency_ns);
    }
}
