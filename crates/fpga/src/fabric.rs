//! The reconfigurable fabric: admission, reconfiguration, and the shared clock.
//!
//! A [`Fabric`] models one physical device on which the hypervisor places one or
//! more compiled designs (the coalesced monolithic program of §4.1, or several
//! co-resident Morphlets under AmorphOS). It tracks resource admission, counts
//! reconfigurations and their latency, and computes the *global clock*: when a
//! newly added design fails timing at the current frequency, the whole fabric steps
//! down to the fastest frequency every resident design can meet — the effect behind
//! Figure 12's drop from 250 MHz to 125 MHz when `adpcm` joins.

use crate::bitstream::Bitstream;
use crate::device::Device;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors returned by fabric operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FabricError {
    /// The design does not fit in the remaining LUT/FF/BRAM budget.
    InsufficientResources {
        /// Human-readable description of the shortfall.
        detail: String,
    },
    /// The named design is not resident on this fabric.
    NotLoaded(String),
    /// A design with this name is already resident.
    AlreadyLoaded(String),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::InsufficientResources { detail } => {
                write!(f, "insufficient fabric resources: {}", detail)
            }
            FabricError::NotLoaded(name) => write!(f, "design '{}' is not loaded", name),
            FabricError::AlreadyLoaded(name) => write!(f, "design '{}' is already loaded", name),
        }
    }
}

impl std::error::Error for FabricError {}

/// A design currently resident on the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadedDesign {
    /// Key under which the design was loaded (hypervisor engine id or app name).
    pub name: String,
    /// The bitstream occupying the fabric.
    pub bitstream: Bitstream,
}

/// Utilisation summary for a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// LUTs in use.
    pub luts: u64,
    /// Flip-flops in use.
    pub ffs: u64,
    /// Block-RAM bits in use.
    pub bram_bits: u64,
    /// LUT utilisation as a fraction of capacity.
    pub lut_fraction: f64,
}

/// The outcome of loading a design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadOutcome {
    /// Latency of the reconfiguration in nanoseconds.
    pub reconfig_latency_ns: u64,
    /// Fabric clock after the load (may be lower than before).
    pub global_clock_hz: u64,
    /// Whether adding this design forced the global clock down.
    pub clock_lowered: bool,
}

/// One reconfigurable device with zero or more resident designs.
#[derive(Debug, Clone)]
pub struct Fabric {
    device: Device,
    designs: BTreeMap<String, LoadedDesign>,
    global_clock_hz: u64,
    reconfigurations: u64,
    total_reconfig_ns: u64,
}

impl Fabric {
    /// Creates an empty fabric for the given device.
    pub fn new(device: Device) -> Self {
        let clock = device.max_clock_hz;
        Fabric {
            device,
            designs: BTreeMap::new(),
            global_clock_hz: clock,
            reconfigurations: 0,
            total_reconfig_ns: 0,
        }
    }

    /// The device this fabric models.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The clock currently driving every resident design.
    pub fn global_clock_hz(&self) -> u64 {
        self.global_clock_hz
    }

    /// Number of full reconfigurations performed.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Total nanoseconds spent reconfiguring.
    pub fn total_reconfig_ns(&self) -> u64 {
        self.total_reconfig_ns
    }

    /// Names of the resident designs.
    pub fn loaded(&self) -> Vec<&str> {
        self.designs.keys().map(String::as_str).collect()
    }

    /// Looks up a resident design.
    pub fn design(&self, name: &str) -> Option<&LoadedDesign> {
        self.designs.get(name)
    }

    /// Current resource utilisation.
    pub fn utilization(&self) -> Utilization {
        let luts: u64 = self.designs.values().map(|d| d.bitstream.report.luts).sum();
        let ffs: u64 = self.designs.values().map(|d| d.bitstream.report.ffs).sum();
        let bram: u64 = self
            .designs
            .values()
            .map(|d| d.bitstream.report.bram_bits)
            .sum();
        Utilization {
            luts,
            ffs,
            bram_bits: bram,
            lut_fraction: luts as f64 / self.device.lut_capacity as f64,
        }
    }

    /// `true` if a design with the given resource report would fit alongside the
    /// current residents.
    pub fn admits(&self, bitstream: &Bitstream) -> bool {
        let u = self.utilization();
        u.luts + bitstream.report.luts <= self.device.lut_capacity
            && u.ffs + bitstream.report.ffs <= self.device.ff_capacity
            && u.bram_bits + bitstream.report.bram_bits <= self.device.bram_bits
    }

    /// Loads (or replaces) a design, performing a full reconfiguration.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InsufficientResources`] if the design does not fit or
    /// [`FabricError::AlreadyLoaded`] if the name is taken.
    pub fn load(&mut self, name: &str, bitstream: Bitstream) -> Result<LoadOutcome, FabricError> {
        if self.designs.contains_key(name) {
            return Err(FabricError::AlreadyLoaded(name.to_string()));
        }
        if !self.admits(&bitstream) {
            let u = self.utilization();
            return Err(FabricError::InsufficientResources {
                detail: format!(
                    "{} needs {} LUTs but only {} of {} remain",
                    name,
                    bitstream.report.luts,
                    self.device.lut_capacity.saturating_sub(u.luts),
                    self.device.lut_capacity
                ),
            });
        }
        self.designs.insert(
            name.to_string(),
            LoadedDesign {
                name: name.to_string(),
                bitstream,
            },
        );
        let before = self.global_clock_hz;
        self.recompute_clock();
        self.reconfigurations += 1;
        self.total_reconfig_ns += self.device.reconfig_latency_ns;
        Ok(LoadOutcome {
            reconfig_latency_ns: self.device.reconfig_latency_ns,
            global_clock_hz: self.global_clock_hz,
            clock_lowered: self.global_clock_hz < before,
        })
    }

    /// Removes a design from the fabric (flagged-for-removal semantics of §4.1: the
    /// next recompilation drops it). Raises the global clock if possible.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::NotLoaded`] if no design with that name is resident.
    pub fn unload(&mut self, name: &str) -> Result<(), FabricError> {
        if self.designs.remove(name).is_none() {
            return Err(FabricError::NotLoaded(name.to_string()));
        }
        self.recompute_clock();
        Ok(())
    }

    fn recompute_clock(&mut self) {
        let slowest = self
            .designs
            .values()
            .map(|d| d.bitstream.report.achieved_hz)
            .min()
            .unwrap_or(self.device.max_clock_hz);
        self.global_clock_hz = self
            .device
            .quantize_clock(slowest.min(self.device.max_clock_hz));
    }

    /// Converts fabric cycles at the current global clock into nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        self.device.cycles_to_ns(cycles, self.global_clock_hz)
    }
}

/// A monotonically advancing virtual clock used by the experiments to report wall
/// time without depending on the host's real-time clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// The current time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The current time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns as f64 / 1e9
    }

    /// Advances the clock.
    pub fn advance_ns(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }

    /// Advances the clock by seconds (convenience for experiment scripts).
    pub fn advance_secs(&mut self, secs: f64) {
        self.advance_ns((secs * 1e9) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthReport;

    fn bitstream(name: &str, luts: u64, achieved_hz: u64) -> Bitstream {
        Bitstream {
            id: luts ^ achieved_hz,
            module_name: name.to_string(),
            device_name: "f1".into(),
            report: SynthReport {
                luts,
                ffs: luts / 2,
                bram_bits: 0,
                critical_path_ps: 4_000,
                achieved_hz,
                synth_latency_ns: 1_000,
                met_timing_at_target: true,
            },
        }
    }

    #[test]
    fn loading_accumulates_utilization() {
        let mut fabric = Fabric::new(Device::f1());
        fabric
            .load("a", bitstream("a", 100_000, 250_000_000))
            .unwrap();
        fabric
            .load("b", bitstream("b", 200_000, 250_000_000))
            .unwrap();
        let u = fabric.utilization();
        assert_eq!(u.luts, 300_000);
        assert_eq!(fabric.loaded(), vec!["a", "b"]);
        assert_eq!(fabric.reconfigurations(), 2);
    }

    #[test]
    fn oversubscription_is_rejected() {
        let mut fabric = Fabric::new(Device::de10());
        fabric
            .load("a", bitstream("a", 100_000, 50_000_000))
            .unwrap();
        let err = fabric
            .load("b", bitstream("b", 50_000, 50_000_000))
            .unwrap_err();
        assert!(matches!(err, FabricError::InsufficientResources { .. }));
        assert_eq!(fabric.loaded().len(), 1);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut fabric = Fabric::new(Device::f1());
        fabric.load("a", bitstream("a", 10, 250_000_000)).unwrap();
        assert!(matches!(
            fabric.load("a", bitstream("a", 10, 250_000_000)),
            Err(FabricError::AlreadyLoaded(_))
        ));
    }

    #[test]
    fn slow_design_lowers_the_global_clock() {
        // The Figure 12 effect: adding a design that only meets 125 MHz drags the
        // whole fabric down; removing it restores the clock.
        let mut fabric = Fabric::new(Device::f1());
        fabric
            .load("df", bitstream("df", 50_000, 250_000_000))
            .unwrap();
        fabric
            .load("bitcoin", bitstream("bitcoin", 60_000, 250_000_000))
            .unwrap();
        assert_eq!(fabric.global_clock_hz(), 250_000_000);
        let outcome = fabric
            .load("adpcm", bitstream("adpcm", 80_000, 125_000_000))
            .unwrap();
        assert!(outcome.clock_lowered);
        assert_eq!(fabric.global_clock_hz(), 125_000_000);
        fabric.unload("adpcm").unwrap();
        assert_eq!(fabric.global_clock_hz(), 250_000_000);
    }

    #[test]
    fn unload_unknown_design_errors() {
        let mut fabric = Fabric::new(Device::f1());
        assert!(matches!(
            fabric.unload("ghost"),
            Err(FabricError::NotLoaded(_))
        ));
    }

    #[test]
    fn cycles_convert_at_global_clock() {
        let mut fabric = Fabric::new(Device::f1());
        fabric
            .load("slow", bitstream("slow", 10, 125_000_000))
            .unwrap();
        assert_eq!(fabric.cycles_to_ns(125_000_000), 1_000_000_000);
    }

    #[test]
    fn sim_clock_advances() {
        let mut clock = SimClock::new();
        clock.advance_ns(500);
        clock.advance_secs(1.5);
        assert_eq!(clock.now_ns(), 1_500_000_500);
        assert!((clock.now_secs() - 1.5000005).abs() < 1e-9);
    }
}
