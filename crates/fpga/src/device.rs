//! Device models for the simulated FPGA substrate.
//!
//! The paper evaluates on two platforms (§6): Altera DE10 SoCs (Cyclone V, 110K
//! LUTs, 50 MHz, Avalon memory-mapped IO) and AWS F1 instances (Xilinx UltraScale+
//! VU9P, ~10× the LUTs, 250 MHz, PCIe). Neither is available here, so this module
//! models the properties the evaluation actually depends on: fabric capacity,
//! clock rates, reconfiguration latency, synthesis latency, and the per-request
//! latency of the transport between the runtime and the fabric.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The host-to-fabric transport used for ABI requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Avalon memory-mapped master, `mmap`ed into the runtime's address space
    /// (DE10 family, §5.1).
    AvalonMm,
    /// PCIe through the AmorphOS hull (F1, §5.2).
    Pcie,
    /// In-process software engine (no hardware transport).
    Software,
}

impl Transport {
    /// Latency of a single ABI request (get/set/evaluate/update) in nanoseconds.
    pub fn request_latency_ns(&self) -> u64 {
        match self {
            Transport::AvalonMm => 800,
            Transport::Pcie => 1_500,
            Transport::Software => 50,
        }
    }
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transport::AvalonMm => write!(f, "avalon-mm"),
            Transport::Pcie => write!(f, "pcie"),
            Transport::Software => write!(f, "software"),
        }
    }
}

/// A reconfigurable device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Human-readable device name (`de10`, `f1`).
    pub name: String,
    /// Number of LUTs in the fabric.
    pub lut_capacity: u64,
    /// Number of flip-flops in the fabric.
    pub ff_capacity: u64,
    /// Block-RAM capacity in bits.
    pub bram_bits: u64,
    /// Maximum supported fabric clock in Hz.
    pub max_clock_hz: u64,
    /// Discrete clock frequencies the build scripts step through when a design
    /// fails timing (§5.2's iterative frequency reduction), highest first.
    pub clock_steps_hz: Vec<u64>,
    /// Host-fabric transport.
    pub transport: Transport,
    /// Full-fabric reconfiguration latency in nanoseconds.
    pub reconfig_latency_ns: u64,
    /// Baseline synthesis/place/route latency in nanoseconds of simulated time
    /// (scaled by design size by the synthesis estimator).
    pub synth_base_latency_ns: u64,
}

impl Device {
    /// The Altera DE10 (Cyclone V SoC) model used in the paper's cluster.
    pub fn de10() -> Device {
        Device {
            name: "de10".into(),
            lut_capacity: 110_000,
            ff_capacity: 110_000 * 4,
            bram_bits: 5_570_000,
            max_clock_hz: 50_000_000,
            clock_steps_hz: vec![50_000_000, 37_500_000, 25_000_000, 12_500_000],
            transport: Transport::AvalonMm,
            // Full reprogramming of the Cyclone V fabric takes on the order of a
            // second through the HPS bridge.
            reconfig_latency_ns: 1_200_000_000,
            // Quartus Lite builds take ~20 minutes; represented in virtual time.
            synth_base_latency_ns: 3_000_000_000,
        }
    }

    /// The AWS F1 (Xilinx UltraScale+ VU9P) model: 10× the LUTs and 5× the clock
    /// of the DE10 (§5.2).
    pub fn f1() -> Device {
        Device {
            name: "f1".into(),
            lut_capacity: 1_100_000,
            ff_capacity: 2_364_000,
            bram_bits: 345_000_000,
            max_clock_hz: 250_000_000,
            clock_steps_hz: vec![250_000_000, 187_500_000, 125_000_000, 62_500_000],
            transport: Transport::Pcie,
            // F1 AFI loads and PCIe re-attach are slower than the DE10 path, which
            // is why Figure 9 shows a larger dip on restore.
            reconfig_latency_ns: 4_000_000_000,
            // Vivado builds take ~2 hours; represented in virtual time.
            synth_base_latency_ns: 8_000_000_000,
        }
    }

    /// A software-only "device" used for engines that never leave the software
    /// interpreter.
    pub fn software() -> Device {
        Device {
            name: "software".into(),
            lut_capacity: u64::MAX,
            ff_capacity: u64::MAX,
            bram_bits: u64::MAX,
            // The paper reports software simulation running orders of magnitude
            // slower than hardware; 50 kHz of virtual clock is representative for
            // Cascade-style interpretation.
            max_clock_hz: 50_000,
            clock_steps_hz: vec![50_000],
            transport: Transport::Software,
            reconfig_latency_ns: 0,
            synth_base_latency_ns: 0,
        }
    }

    /// A software-only "device" modelling the compiled software engine
    /// (levelized netlist + bytecode): still host-resident, but roughly an
    /// order of magnitude faster virtual clock than tree-walking
    /// interpretation.
    pub fn compiled() -> Device {
        Device {
            name: "compiled".into(),
            max_clock_hz: 1_000_000,
            clock_steps_hz: vec![1_000_000],
            ..Device::software()
        }
    }

    /// Looks up a built-in device by name.
    pub fn by_name(name: &str) -> Option<Device> {
        match name {
            "de10" => Some(Device::de10()),
            "f1" => Some(Device::f1()),
            "software" => Some(Device::software()),
            "compiled" => Some(Device::compiled()),
            _ => None,
        }
    }

    /// Nanoseconds taken by `cycles` fabric clock cycles at `clock_hz`.
    pub fn cycles_to_ns(&self, cycles: u64, clock_hz: u64) -> u64 {
        if clock_hz == 0 {
            return 0;
        }
        (cycles as u128 * 1_000_000_000u128 / clock_hz as u128) as u64
    }

    /// The highest clock step that is `<= freq_hz`, used after timing analysis.
    pub fn quantize_clock(&self, freq_hz: u64) -> u64 {
        self.clock_steps_hz
            .iter()
            .copied()
            .find(|&step| step <= freq_hz)
            .unwrap_or_else(|| *self.clock_steps_hz.last().unwrap_or(&freq_hz))
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} LUTs, {} MHz, {})",
            self.name,
            self.lut_capacity,
            self.max_clock_hz / 1_000_000,
            self.transport
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_is_bigger_and_faster_than_de10() {
        let de10 = Device::de10();
        let f1 = Device::f1();
        assert_eq!(f1.lut_capacity, de10.lut_capacity * 10);
        assert_eq!(f1.max_clock_hz, de10.max_clock_hz * 5);
        assert!(f1.reconfig_latency_ns > de10.reconfig_latency_ns);
    }

    #[test]
    fn by_name_round_trips() {
        for name in ["de10", "f1", "software", "compiled"] {
            assert_eq!(Device::by_name(name).unwrap().name, name);
        }
        assert!(Device::by_name("unknown").is_none());
    }

    #[test]
    fn compiled_device_sits_between_interpreter_and_hardware() {
        let compiled = Device::compiled();
        assert!(compiled.max_clock_hz > Device::software().max_clock_hz);
        assert!(compiled.max_clock_hz < Device::de10().max_clock_hz);
        assert_eq!(compiled.transport, Transport::Software);
        assert_eq!(compiled.reconfig_latency_ns, 0);
    }

    #[test]
    fn cycles_to_ns_scales_with_clock() {
        let d = Device::de10();
        assert_eq!(d.cycles_to_ns(50_000_000, 50_000_000), 1_000_000_000);
        assert_eq!(d.cycles_to_ns(1, 250_000_000), 4);
    }

    #[test]
    fn quantize_clock_steps_down() {
        let f1 = Device::f1();
        assert_eq!(f1.quantize_clock(250_000_000), 250_000_000);
        assert_eq!(f1.quantize_clock(200_000_000), 187_500_000);
        assert_eq!(f1.quantize_clock(130_000_000), 125_000_000);
        assert_eq!(
            f1.quantize_clock(10_000_000),
            62_500_000,
            "never below the last step"
        );
    }

    #[test]
    fn transport_latencies_ordered() {
        assert!(
            Transport::Software.request_latency_ns() < Transport::AvalonMm.request_latency_ns()
        );
        assert!(Transport::AvalonMm.request_latency_ns() < Transport::Pcie.request_latency_ns());
    }
}
