//! The six evaluation benchmarks of Table 1, written in the SYNERGY Verilog subset.
//!
//! | Name      | Description                                     | Style     |
//! |-----------|-------------------------------------------------|-----------|
//! | `adpcm`   | Pulse-code modulation encoder/decoder           | batch     |
//! | `bitcoin` | Bitcoin mining accelerator                      | batch     |
//! | `df`      | Double-precision arithmetic circuits            | batch     |
//! | `mips32`  | Bubble-sort on a 32-bit MIPS-style processor    | batch     |
//! | `nw`      | DNA sequence alignment                          | streaming |
//! | `regex`   | Streaming regular expression matcher            | streaming |
//!
//! Each benchmark has two source variants: the default, in which every register is
//! treated as `non_volatile` and captured transparently by SYNERGY, and a
//! *quiescent* variant that asserts `$yield` and annotates only its live state
//! `(* non_volatile *)`, modelling the §5.3/§6.3 experiments. See `DESIGN.md` for
//! the documented simplifications (reduced-round hashing, integer stand-ins for
//! IEEE-754 datapaths, microprogrammed MIPS datapath).

use serde::{Deserialize, Serialize};

/// Batch or streaming computation (Table 1 marks streaming workloads with a star).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Style {
    /// Reads a small input then computes for a long time.
    Batch,
    /// Streams data from an OS-managed file through `$fread`.
    Streaming,
}

/// One benchmark: its source code, metadata, and workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    /// Short name used throughout the paper (`bitcoin`, `nw`, ...).
    pub name: String,
    /// One-line description from Table 1.
    pub description: String,
    /// Batch or streaming.
    pub style: Style,
    /// Verilog source (transparent state-capture variant).
    pub source: String,
    /// Verilog source of the quiescent (`$yield`) variant.
    pub quiescent_source: String,
    /// Top module name.
    pub top: String,
    /// Clock input name.
    pub clock: String,
    /// Input file path the program `$fopen`s, if it is a streaming benchmark.
    pub input_path: Option<String>,
    /// Variable that counts completed work units.
    pub metric_var: String,
    /// Unit of the work counter (`hashes`, `instructions`, `reads`, ...).
    pub metric_unit: String,
}

impl Benchmark {
    /// Source text for the requested state-capture mode.
    pub fn source_for(&self, quiescent: bool) -> &str {
        if quiescent {
            &self.quiescent_source
        } else {
            &self.source
        }
    }
}

/// Returns all six benchmarks in Table 1 order.
pub fn all() -> Vec<Benchmark> {
    vec![adpcm(), bitcoin(), df(), mips32(), nw(), regex()]
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

/// Generates the input data stream for a streaming benchmark (deterministic, so
/// experiments are reproducible).
pub fn input_data(name: &str, len: usize) -> Vec<u64> {
    let mut state = 0x1234_5678_9abc_def0u64 ^ (name.len() as u64).wrapping_mul(0x9e37_79b9);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    match name {
        // Characters drawn mostly from {a, b, c} plus some noise.
        "regex" => (0..len)
            .map(|_| {
                let r = next() % 5;
                match r {
                    0 => 97, // 'a'
                    1 => 98, // 'b'
                    2 => 99, // 'c'
                    3 => 120,
                    _ => 32,
                }
            })
            .collect(),
        // Pairs of packed 8-base DNA sequences (two words per record).
        "nw" => (0..len)
            .map(|_| {
                let mut word = 0u64;
                for i in 0..8 {
                    let base = match next() % 4 {
                        0 => b'A',
                        1 => b'C',
                        2 => b'G',
                        _ => b'T',
                    } as u64;
                    word |= base << (i * 8);
                }
                word
            })
            .collect(),
        // 16-bit audio-like samples (a wandering waveform).
        "adpcm" => {
            let mut level = 2_000i64;
            (0..len)
                .map(|_| {
                    let delta = (next() % 601) as i64 - 300;
                    level = (level + delta).clamp(0, 65_000);
                    level as u64
                })
                .collect()
        }
        _ => (0..len).map(|_| next()).collect(),
    }
}

// --------------------------------------------------------------------- bitcoin

/// The Bitcoin mining accelerator: combines block data with a nonce, applies a
/// reduced-round SHA-256-style mixing function, and loops until a hash falls under
/// the target (§6.1).
pub fn bitcoin() -> Benchmark {
    Benchmark {
        name: "bitcoin".into(),
        description: "Bitcoin mining accelerator".into(),
        style: Style::Batch,
        source: bitcoin_source(false),
        quiescent_source: bitcoin_source(true),
        top: "Bitcoin".into(),
        clock: "clock".into(),
        input_path: None,
        metric_var: "hashes_lo".into(),
        metric_unit: "hashes".into(),
    }
}

fn bitcoin_source(quiesce: bool) -> String {
    let nv = if quiesce { "(* non_volatile *) " } else { "" };
    let yield_stmt = if quiesce { "$yield;" } else { ";" };
    format!(
        r#"module Bitcoin(input wire clock, output wire [31:0] hashes_lo, output wire found);
    {nv}reg [31:0] nonce = 0;
    {nv}reg [63:0] hashes = 0;
    {nv}reg [0:0] done = 0;
    reg [31:0] target = 32'h0000000f;
    reg [31:0] block0 = 32'h12345678;
    reg [31:0] block1 = 32'h9abcdef0;
    reg [31:0] a = 0;
    reg [31:0] b = 0;
    reg [31:0] c = 0;
    reg [31:0] d = 0;
    reg [31:0] h = 0;
    always @(posedge clock) begin
        {yield_stmt}
        if (!done) begin
            a = block0 ^ nonce;
            b = block1 + nonce;
            c = (a >> 7) ^ (a << 3) ^ b;
            d = (b >> 11) ^ (b << 5) ^ a;
            h = (c + d) ^ ((c << 13) | (d >> 13));
            h = h + ((h >> 17) ^ (h << 2));
            h = h ^ (h >> 9);
            hashes <= hashes + 1;
            nonce <= nonce + 1;
            if (h < target) done <= 1;
        end
    end
    assign hashes_lo = hashes[31:0];
    assign found = done;
endmodule
"#
    )
}

// --------------------------------------------------------------------- mips32

/// A 32-bit MIPS-style processor (register file, datapath, on-chip data memory)
/// that repeatedly randomises and bubble-sorts an in-memory array (§6.1). The
/// instruction fetch/decode stages are microprogrammed as a phase machine; the
/// architectural state (PC, register file, data memory, retired-instruction
/// counter) matches what the paper's migration experiment exercises.
pub fn mips32() -> Benchmark {
    Benchmark {
        name: "mips32".into(),
        description: "Bubble-sort on a 32-bit MIPS processor".into(),
        style: Style::Batch,
        source: mips32_source(false),
        quiescent_source: mips32_source(true),
        top: "Mips32".into(),
        clock: "clock".into(),
        input_path: None,
        metric_var: "instret_lo".into(),
        metric_unit: "instructions".into(),
    }
}

fn mips32_source(quiesce: bool) -> String {
    let nv = if quiesce { "(* non_volatile *) " } else { "" };
    let yield_stmt = if quiesce { "$yield;" } else { ";" };
    format!(
        r#"module Mips32(input wire clock, output wire [31:0] instret_lo, output wire [31:0] runs_out);
    reg [31:0] dmem [0:63];
    reg [31:0] regs [0:31];
    {nv}reg [31:0] pc = 0;
    {nv}reg [63:0] instret = 0;
    {nv}reg [31:0] runs = 0;
    reg [31:0] i = 0;
    reg [31:0] j = 0;
    reg [31:0] tmp = 0;
    reg [31:0] lfsr = 32'hace1ace1;
    reg [2:0] phase = 0;
    always @(posedge clock) begin
        {yield_stmt}
        instret <= instret + 1;
        pc <= pc + 4;
        if (phase == 0) begin
            lfsr = {{lfsr[30:0], lfsr[31] ^ lfsr[21] ^ lfsr[1] ^ lfsr[0]}};
            dmem[i[5:0]] <= lfsr;
            regs[i[4:0]] <= lfsr ^ 32'h5a5a5a5a;
            if (i == 63) begin
                i <= 0;
                phase <= 1;
            end else
                i <= i + 1;
        end else if (phase == 1) begin
            if (i >= 63)
                phase <= 3;
            else begin
                j <= 0;
                phase <= 2;
            end
        end else if (phase == 2) begin
            if (j < 63 - i) begin
                if (dmem[j[5:0]] > dmem[j[5:0] + 1]) begin
                    tmp = dmem[j[5:0]];
                    dmem[j[5:0]] <= dmem[j[5:0] + 1];
                    dmem[j[5:0] + 1] <= tmp;
                end
                j <= j + 1;
            end else begin
                i <= i + 1;
                phase <= 1;
            end
        end else begin
            runs <= runs + 1;
            i <= 0;
            phase <= 0;
        end
    end
    assign instret_lo = instret[31:0];
    assign runs_out = runs;
endmodule
"#
    )
}

// --------------------------------------------------------------------- df

/// Double-precision arithmetic circuits characteristic of numeric simulation
/// kernels. The IEEE-754 datapath is replaced by 64-bit integer mantissa
/// arithmetic with the same register widths (see `DESIGN.md`).
pub fn df() -> Benchmark {
    Benchmark {
        name: "df".into(),
        description: "Double-precision arithmetic circuits".into(),
        style: Style::Batch,
        source: df_source(false),
        quiescent_source: df_source(true),
        top: "Df".into(),
        clock: "clock".into(),
        input_path: None,
        metric_var: "ops_lo".into(),
        metric_unit: "fp-ops".into(),
    }
}

fn df_source(quiesce: bool) -> String {
    let nv = if quiesce { "(* non_volatile *) " } else { "" };
    let yield_stmt = if quiesce { "$yield;" } else { ";" };
    format!(
        r#"module Df(input wire clock, output wire [31:0] ops_lo, output wire [63:0] acc_out);
    {nv}reg [63:0] ops = 0;
    reg [63:0] acc = 64'h3ff0000000000000;
    reg [63:0] x = 64'h4000000000000000;
    reg [63:0] m0 = 0;
    reg [63:0] m1 = 0;
    reg [63:0] m2 = 0;
    reg [63:0] m3 = 0;
    reg [63:0] m4 = 0;
    reg [63:0] m5 = 0;
    always @(posedge clock) begin
        {yield_stmt}
        m0 = acc[51:0] * x[31:0];
        m1 = (acc >> 12) + (x >> 12);
        m2 = m0 ^ m1;
        m3 = m2 + (m2 >> 7) + 64'h123456789;
        m4 = (m3 << 3) ^ (m0 >> 5);
        m5 = m4 + m1;
        acc <= {{acc[63:52], m5[51:0]}};
        x <= x + 64'h10000000001;
        ops <= ops + 4;
    end
    assign ops_lo = ops[31:0];
    assign acc_out = acc;
endmodule
"#
    )
}

// --------------------------------------------------------------------- adpcm

/// An IMA-ADPCM-style pulse-code modulation encoder/decoder with the step
/// adaptation folded into control logic (the source of its long critical path in
/// Figure 15).
pub fn adpcm() -> Benchmark {
    Benchmark {
        name: "adpcm".into(),
        description: "Pulse-code modulation encoder/decoder".into(),
        style: Style::Batch,
        source: adpcm_source(false),
        quiescent_source: adpcm_source(true),
        top: "Adpcm".into(),
        clock: "clock".into(),
        input_path: Some("adpcm_input.bin".into()),
        metric_var: "samples_lo".into(),
        metric_unit: "samples".into(),
    }
}

fn adpcm_source(quiesce: bool) -> String {
    let nv = if quiesce { "(* non_volatile *) " } else { "" };
    let yield_stmt = if quiesce { "$yield;" } else { ";" };
    format!(
        r#"module Adpcm(input wire clock, output wire [31:0] samples_lo, output wire [31:0] errsum_lo);
    integer fd = $fopen("adpcm_input.bin");
    {nv}reg [31:0] samples = 0;
    {nv}reg [31:0] errsum = 0;
    {nv}reg [31:0] predicted = 0;
    {nv}reg [31:0] step = 16;
    reg [15:0] sample = 0;
    reg [3:0] code = 0;
    reg [31:0] diff = 0;
    reg [31:0] decoded = 0;
    reg [31:0] filtered = 0;
    reg [31:0] history [0:15];
    reg [0:0] eof = 0;
    always @(posedge clock) begin
        {yield_stmt}
        if (!eof) begin
            $fread(fd, sample);
            if ($feof(fd))
                eof <= 1;
            else begin
                if (sample >= predicted) begin
                    diff = sample - predicted;
                    code[3] = 0;
                end else begin
                    diff = predicted - sample;
                    code[3] = 1;
                end
                code[2:0] = 0;
                if (diff >= step) begin
                    code[2] = 1;
                    diff = diff - step;
                end
                if (diff >= (step >> 1)) begin
                    code[1] = 1;
                    diff = diff - (step >> 1);
                end
                if (diff >= (step >> 2))
                    code[0] = 1;
                decoded = (code[2] ? step : 0) + (code[1] ? (step >> 1) : 0)
                        + (code[0] ? (step >> 2) : 0) + (step >> 3);
                if (code[3]) begin
                    if (predicted > decoded)
                        predicted = predicted - decoded;
                    else
                        predicted = 0;
                end else
                    predicted = predicted + decoded;
                case (code[2:0])
                    0, 1, 2, 3: step = (step > 16) ? (step - (step >> 3)) : 16;
                    default: step = (step < 32000) ? (step + (step >> 2)) : 32000;
                endcase
                filtered = ((sample * 3 + predicted) * 5 + decoded) * 7 + step * 9;
                history[samples[3:0]] <= filtered;
                if (sample >= predicted)
                    errsum <= errsum + (sample - predicted);
                else
                    errsum <= errsum + (predicted - sample);
                samples <= samples + 1;
            end
        end
    end
    assign samples_lo = samples;
    assign errsum_lo = errsum;
endmodule
"#
    )
}

// --------------------------------------------------------------------- nw

/// DNA sequence alignment: streams pairs of packed 8-base sequences from a file
/// and scores them with a tile-based Needleman-Wunsch dynamic program (§6.2).
pub fn nw() -> Benchmark {
    Benchmark {
        name: "nw".into(),
        description: "DNA sequence alignment".into(),
        style: Style::Streaming,
        source: nw_source(false),
        quiescent_source: nw_source(true),
        top: "Nw".into(),
        clock: "clock".into(),
        input_path: Some("nw_input.bin".into()),
        metric_var: "alignments_lo".into(),
        metric_unit: "alignments".into(),
    }
}

fn nw_source(quiesce: bool) -> String {
    let nv = if quiesce { "(* non_volatile *) " } else { "" };
    let yield_stmt = if quiesce { "$yield;" } else { ";" };
    format!(
        r#"module Nw(input wire clock, output wire [31:0] alignments_lo, output wire [31:0] score_out);
    integer fd = $fopen("nw_input.bin");
    {nv}reg [31:0] alignments = 0;
    {nv}reg [31:0] last_score = 0;
    reg [63:0] seq_a = 0;
    reg [63:0] seq_b = 0;
    reg [31:0] dp [0:80];
    integer i = 0;
    integer j = 0;
    reg [31:0] diag = 0;
    reg [31:0] up = 0;
    reg [31:0] left = 0;
    reg [31:0] best = 0;
    reg [7:0] ca = 0;
    reg [7:0] cb = 0;
    reg [0:0] eof = 0;
    always @(posedge clock) begin
        {yield_stmt}
        if (!eof) begin
            $fread(fd, seq_a);
            $fread(fd, seq_b);
            if ($feof(fd))
                eof <= 1;
            else begin
                for (i = 0; i < 9; i = i + 1) begin
                    dp[i] = i * 2;
                    dp[i * 9] = i * 2;
                end
                for (i = 1; i < 9; i = i + 1) begin
                    for (j = 1; j < 9; j = j + 1) begin
                        ca = seq_a >> ((i - 1) * 8);
                        cb = seq_b >> ((j - 1) * 8);
                        diag = dp[(i - 1) * 9 + (j - 1)] + ((ca == cb) ? 0 : 3);
                        up = dp[(i - 1) * 9 + j] + 2;
                        left = dp[i * 9 + (j - 1)] + 2;
                        best = diag;
                        if (up < best) best = up;
                        if (left < best) best = left;
                        dp[i * 9 + j] = best;
                    end
                end
                last_score <= dp[80];
                alignments <= alignments + 1;
            end
        end
    end
    assign alignments_lo = alignments;
    assign score_out = last_score;
endmodule
"#
    )
}

// --------------------------------------------------------------------- regex

/// A streaming regular-expression matcher: reads characters from a file and runs a
/// small DFA (the pattern `a b* c`), producing match statistics (§6.2).
pub fn regex() -> Benchmark {
    Benchmark {
        name: "regex".into(),
        description: "Streaming regular expression matcher".into(),
        style: Style::Streaming,
        source: regex_source(false),
        quiescent_source: regex_source(true),
        top: "Regex".into(),
        clock: "clock".into(),
        input_path: Some("regex_input.bin".into()),
        metric_var: "reads_lo".into(),
        metric_unit: "reads".into(),
    }
}

fn regex_source(quiesce: bool) -> String {
    let nv = if quiesce { "(* non_volatile *) " } else { "" };
    let yield_stmt = if quiesce { "$yield;" } else { ";" };
    format!(
        r#"module Regex(input wire clock, output wire [31:0] matches_lo, output wire [31:0] reads_lo);
    integer fd = $fopen("regex_input.bin");
    {nv}reg [31:0] matches = 0;
    {nv}reg [63:0] reads = 0;
    {nv}reg [1:0] state = 0;
    reg [7:0] ch = 0;
    reg [0:0] eof = 0;
    always @(posedge clock) begin
        {yield_stmt}
        if (!eof) begin
            $fread(fd, ch);
            if ($feof(fd))
                eof <= 1;
            else begin
                reads <= reads + 1;
                case (state)
                    0: if (ch == 97) state <= 1;
                    1: begin
                        if (ch == 98)
                            state <= 1;
                        else if (ch == 99) begin
                            matches <= matches + 1;
                            state <= 0;
                        end else if (ch == 97)
                            state <= 1;
                        else
                            state <= 0;
                    end
                    default: state <= 0;
                endcase
            end
        end
    end
    assign matches_lo = matches;
    assign reads_lo = reads[31:0];
endmodule
"#
    )
}
