//! Golden-checkpoint recipe for the CI `snapshot-compat` gate.
//!
//! A *golden* is a durable checkpoint of one Table-1 workload, captured
//! mid-run on one compiled-engine tier, committed under `tests/golden/`.
//! CI restores every golden and asserts the resumed run is bit-identical to
//! a fresh run fast-forwarded to the same tick — so any drift in the wire
//! format, the engines, or the workloads is caught against bytes produced by
//! an *older build*.
//!
//! The construction here is deliberately shared between the generator
//! (`cargo run -p synergy-workloads --example showseed -- golden
//! tests/golden`) and the compat test (`tests/snapshot_compat.rs` in the
//! facade crate): both call [`golden_runtime`], so the reference lineage in
//! CI is byte-for-byte the lineage the goldens were captured from. A
//! wire-format version bump makes every golden fail decoding with a typed
//! `UnknownVersion` error until the goldens are deliberately regenerated.

use crate::benchmarks::{all, input_data, Benchmark};
use synergy_runtime::{CompiledTier, Runtime};
use synergy_vlog::VlogResult;

/// Input records generated for streaming goldens (small, CI-friendly).
pub const GOLDEN_STREAM_LEN: usize = 2048;

/// Virtual ticks executed on the compiled engine before capture.
pub const GOLDEN_WARMUP_TICKS: u64 = 96;

/// Virtual ticks the compat gate runs past the capture point on both the
/// restored and the fresh lineage before comparing state.
pub const GOLDEN_RESUME_TICKS: u64 = 64;

/// The tier suffix used in golden file names.
pub fn tier_tag(tier: CompiledTier) -> &'static str {
    match tier {
        CompiledTier::Stack => "stack",
        CompiledTier::RegAlloc => "regalloc",
    }
}

/// File name of one golden checkpoint, e.g. `bitcoin_regalloc.ckpt`.
pub fn golden_file_name(bench: &Benchmark, tier: CompiledTier) -> String {
    format!("{}_{}.ckpt", bench.name, tier_tag(tier))
}

/// Every (workload, tier) pair the gate covers: the six Table-1 benchmarks ×
/// both compiled-engine tiers.
pub fn golden_matrix() -> Vec<(Benchmark, CompiledTier)> {
    let mut out = Vec::new();
    for bench in all() {
        for tier in [CompiledTier::Stack, CompiledTier::RegAlloc] {
            out.push((bench.clone(), tier));
        }
    }
    out
}

/// Deterministically constructs one workload runtime at the golden capture
/// point: launched exactly like `SynergyVm::launch_benchmark` (two software
/// ticks so `$fopen` runs in software, as the paper's workflow does), hopped
/// onto the requested compiled-engine tier, and warmed up for
/// [`GOLDEN_WARMUP_TICKS`].
///
/// # Errors
///
/// Propagates compilation/lowering errors (all Table-1 workloads are inside
/// the compiled envelope, so an error here is a build regression).
pub fn golden_runtime(bench: &Benchmark, tier: CompiledTier) -> VlogResult<Runtime> {
    let mut rt = Runtime::new(bench.name.clone(), &bench.source, &bench.top, &bench.clock)?;
    if let Some(path) = &bench.input_path {
        rt.add_file(path.clone(), input_data(&bench.name, GOLDEN_STREAM_LEN));
    }
    rt.run_ticks(2)?;
    rt.set_compiled_tier(tier)?;
    rt.migrate_to_compiled()?;
    rt.run_ticks(GOLDEN_WARMUP_TICKS)?;
    Ok(rt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_runtime::ExecMode;

    #[test]
    fn golden_runtimes_are_deterministic_and_on_the_requested_tier() {
        let (bench, tier) = &golden_matrix()[1];
        let a = golden_runtime(bench, *tier).unwrap();
        let b = golden_runtime(bench, *tier).unwrap();
        assert_eq!(a.mode(), ExecMode::Compiled);
        assert_eq!(a.compiled_tier(), Some(*tier));
        assert_eq!(a.ticks(), 2 + GOLDEN_WARMUP_TICKS);
        assert_eq!(a.peek_state(), b.peek_state());
        assert_eq!(
            a.save_checkpoint(),
            b.save_checkpoint(),
            "golden bytes are reproducible"
        );
    }

    #[test]
    fn golden_matrix_covers_every_workload_twice() {
        let matrix = golden_matrix();
        assert_eq!(matrix.len(), 12, "6 Table-1 workloads x 2 tiers");
        let names: std::collections::BTreeSet<String> = matrix
            .iter()
            .map(|(b, t)| golden_file_name(b, *t))
            .collect();
        assert_eq!(names.len(), 12, "file names are unique");
    }
}
