//! Random design generation for cross-engine differential fuzzing.
//!
//! [`generate`] produces a random — but always *valid* — module in the
//! SYNERGY Verilog subset from a 64-bit seed: random register widths (both
//! machine-word and wide `Bits` values), 1-D memories, continuous assignments
//! (including constant-disjoint partial drivers), edge-triggered `always`
//! blocks with `if`/`case`/bounded-`for` control flow, non-blocking
//! assignment, and the unsynthesizable system tasks. Designs are constructed
//! to stay inside the compiled engine's envelope (no combinational cycles,
//! no overlapping drivers, no system calls in continuous assignments), so a
//! differential harness can demand `synergy_codegen::compile` succeeds and
//! then lock-step the compiled engine against the reference interpreter.
//!
//! The generator is deterministic: the same seed always yields the same
//! source text, which is what lets a regression corpus pin previously
//! divergent designs as ordinary unit tests.

/// A generated design plus the metadata a harness needs to run it.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedDesign {
    /// Verilog source text.
    pub source: String,
    /// Top module name (always `Fuzz`).
    pub top: String,
    /// Clock input name (always `clock`).
    pub clock: String,
    /// Input file the design `$fopen`s, when it exercises file IO.
    pub input_path: Option<String>,
    /// The seed that produced this design.
    pub seed: u64,
}

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate adjacent seeds.
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// True with probability `pct`/100.
    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[derive(Clone)]
struct Scalar {
    name: String,
    width: usize,
}

#[derive(Clone)]
struct Memory {
    name: String,
    width: usize,
    depth: usize,
}

struct Gen {
    rng: Rng,
    regs: Vec<Scalar>,
    mems: Vec<Memory>,
    wires: Vec<Scalar>,
    /// Loop variables currently in scope (depth-indexed), readable in
    /// expressions; never written by generated statement bodies.
    loop_vars: Vec<String>,
    uses_file: bool,
}

/// The one register allowed as a non-clock edge guard. It is *read-only* to
/// generated statements and driven solely by a dedicated non-blocking store
/// in a clock-edge block: a body that could rewrite its own edge guard is a
/// zero-delay self-clocking oscillator, which never settles (both engines
/// reject it at runtime, but generated designs should actually run).
const FLAG: &str = "flag";

const WIDTHS: &[usize] = &[1, 2, 3, 7, 8, 12, 16, 31, 32, 33, 48, 64, 65, 80, 100, 128];

impl Gen {
    fn literal(&mut self, width: usize) -> String {
        let w = width.min(64);
        let v = if w >= 64 {
            self.rng.next()
        } else {
            self.rng.next() & ((1u64 << w) - 1)
        };
        format!("{}'d{}", width, v)
    }

    /// A readable scalar operand: a register, wire, in-scope loop variable,
    /// memory element, bit/slice select, or literal.
    fn leaf(&mut self) -> String {
        let roll = self.rng.below(100);
        if roll < 6 {
            return FLAG.to_string();
        }
        if roll < 34 {
            let r = self.rng.pick(&self.regs).clone();
            return r.name;
        }
        if roll < 44 && !self.wires.is_empty() {
            return self.rng.pick(&self.wires).name.clone();
        }
        if roll < 54 && !self.loop_vars.is_empty() {
            return self.rng.pick(&self.loop_vars).clone();
        }
        if roll < 68 && !self.mems.is_empty() {
            let m = self.rng.pick(&self.mems).clone();
            let idx = if self.rng.chance(50) {
                format!("{}", self.rng.below(m.depth as u64 + 1))
            } else {
                let base = self.rng.pick(&self.regs).clone();
                format!("{} % {}", base.name, m.depth)
            };
            return format!("{}[{}]", m.name, idx);
        }
        if roll < 82 {
            let r = self.rng.pick(&self.regs).clone();
            if r.width > 2 && self.rng.chance(70) {
                let hi = self.rng.below(r.width as u64 + 4);
                let lo = self.rng.below(hi + 1);
                return format!("{}[{}:{}]", r.name, hi, lo);
            }
            let bit = self.rng.below(r.width as u64 + 2);
            return format!("{}[{}]", r.name, bit);
        }
        let w = *self.rng.pick(WIDTHS);
        self.literal(w)
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.chance(30) {
            return self.leaf();
        }
        match self.rng.below(8) {
            0 => {
                let op = *self.rng.pick(&["~", "!", "-", "&", "|", "^"]);
                format!("({}{})", op, self.expr(depth - 1))
            }
            1..=4 => {
                let op = *self.rng.pick(&[
                    "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", ">>>", "==", "!=", "<",
                    "<=", ">", ">=", "&&", "||",
                ]);
                let a = self.expr(depth - 1);
                let b = if matches!(op, "<<" | ">>" | ">>>") {
                    // Shift amounts stay small so values keep moving instead
                    // of collapsing to zero.
                    format!("{}'d{}", 4, self.rng.below(16))
                } else {
                    self.expr(depth - 1)
                };
                format!("({} {} {})", a, op, b)
            }
            5 => format!(
                "({} ? {} : {})",
                self.expr(depth - 1),
                self.expr(depth - 1),
                self.expr(depth - 1)
            ),
            6 => format!("{{{}, {}}}", self.expr(depth - 1), self.expr(depth - 1)),
            _ => {
                let n = self.rng.below(3) + 1;
                format!("{{{}{{{}}}}}", n, self.expr(depth - 1))
            }
        }
    }

    /// A procedural assignment target over registers and memories.
    fn proc_target(&mut self) -> String {
        let roll = self.rng.below(100);
        if roll < 25 && !self.mems.is_empty() {
            let m = self.rng.pick(&self.mems).clone();
            let idx = if self.rng.chance(40) {
                format!("{}", self.rng.below(m.depth as u64 + 1))
            } else if !self.loop_vars.is_empty() && self.rng.chance(60) {
                self.rng.pick(&self.loop_vars).clone()
            } else {
                let base = self.rng.pick(&self.regs).clone();
                format!("{} % {}", base.name, m.depth)
            };
            return format!("{}[{}]", m.name, idx);
        }
        let r = self.rng.pick(&self.regs).clone();
        if roll < 40 && r.width > 3 {
            let hi = self.rng.below(r.width as u64);
            let lo = self.rng.below(hi + 1);
            return format!("{}[{}:{}]", r.name, hi, lo);
        }
        if roll < 50 {
            let bit = self.rng.below(r.width as u64);
            return format!("{}[{}]", r.name, bit);
        }
        r.name
    }

    fn stmt(&mut self, depth: usize, out: &mut String, indent: usize) {
        let pad = " ".repeat(indent);
        let roll = if depth == 0 {
            self.rng.below(50)
        } else {
            self.rng.below(100)
        };
        match roll {
            0..=29 => {
                let target = self.proc_target();
                let op = if self.rng.chance(45) { "<=" } else { "=" };
                let rhs = self.expr(2);
                out.push_str(&format!("{}{} {} {};\n", pad, target, op, rhs));
            }
            30..=39 => {
                let arg = self.expr(1);
                let task = if self.rng.chance(70) {
                    "$display"
                } else {
                    "$write"
                };
                out.push_str(&format!("{}{}(\"v=\", {});\n", pad, task, arg));
            }
            40..=44 => {
                let target = self.rng.pick(&self.regs).clone();
                out.push_str(&format!("{}{} <= $random;\n", pad, target.name));
            }
            45..=49 => {
                let target = self.rng.pick(&self.regs).clone();
                out.push_str(&format!(
                    "{}{} <= {} ^ $time;\n",
                    pad, target.name, target.name
                ));
            }
            50..=69 => {
                out.push_str(&format!("{}if ({}) begin\n", pad, self.expr(2)));
                self.stmt(depth - 1, out, indent + 4);
                if self.rng.chance(50) {
                    out.push_str(&format!("{}end else begin\n", pad));
                    self.stmt(depth - 1, out, indent + 4);
                }
                out.push_str(&format!("{}end\n", pad));
            }
            70..=79 => {
                let scrutinee = self.expr(1);
                out.push_str(&format!("{}case ({})\n", pad, scrutinee));
                let arms = self.rng.below(3) + 1;
                for _ in 0..arms {
                    let label = self.rng.below(8);
                    out.push_str(&format!("{}    {}: begin\n", pad, label));
                    self.stmt(depth - 1, out, indent + 8);
                    out.push_str(&format!("{}    end\n", pad));
                }
                out.push_str(&format!("{}    default: begin\n", pad));
                self.stmt(depth - 1, out, indent + 8);
                out.push_str(&format!("{}    end\n", pad));
                out.push_str(&format!("{}endcase\n", pad));
            }
            80..=94 => {
                // A bounded for-loop. Constant bounds usually (the unrolling
                // path); a register-masked bound sometimes (the dynamic
                // path). Loop variables are only ever written by their own
                // init/step, keeping constant-bounded loops unrollable.
                let var = format!("i{}", self.loop_vars.len());
                let start = self.rng.below(3);
                let bound = if self.rng.chance(75) {
                    format!("{}", start + 1 + self.rng.below(7))
                } else {
                    let r = self.rng.pick(&self.regs).clone();
                    format!("({} % 7)", r.name)
                };
                let step = 1 + self.rng.below(2);
                out.push_str(&format!(
                    "{}for ({} = {}; {} < {}; {} = {} + {}) begin\n",
                    pad, var, start, var, bound, var, var, step
                ));
                self.loop_vars.push(var);
                self.stmt(depth.saturating_sub(1), out, indent + 4);
                if self.rng.chance(40) {
                    self.stmt(depth.saturating_sub(1), out, indent + 4);
                }
                self.loop_vars.pop();
                out.push_str(&format!("{}end\n", pad));
            }
            _ => {
                let count = self.rng.below(4) + 1;
                out.push_str(&format!("{}repeat ({}) begin\n", pad, count));
                self.stmt(depth.saturating_sub(1), out, indent + 4);
                out.push_str(&format!("{}end\n", pad));
            }
        }
    }

    fn always_block(&mut self, out: &mut String) {
        let mut drive_flag = false;
        let guard = match self.rng.below(10) {
            0..=5 => {
                drive_flag = self.rng.chance(40);
                "posedge clock".to_string()
            }
            6..=7 => "negedge clock".to_string(),
            // An edge on the dedicated flag register exercises the engines'
            // identical mid-evaluate edge-detection loops. The flag is only
            // ever driven from clock-edge blocks, so flag edges per tick are
            // bounded and settle always converges.
            _ => format!("posedge {}", FLAG),
        };
        out.push_str(&format!("    always @({}) begin\n", guard));
        let stmts = self.rng.below(4) + 1;
        for _ in 0..stmts {
            self.stmt(2, out, 8);
        }
        if drive_flag {
            let src = self.rng.pick(&self.regs).clone();
            let bit = self.rng.below(src.width as u64);
            out.push_str(&format!("        {} <= {}[{}];\n", FLAG, src.name, bit));
        }
        out.push_str("    end\n");
    }

    fn continuous_assigns(&mut self, out: &mut String) {
        // Wires are declared up front and driven here; a wire's rhs only
        // reads registers, memories, and *earlier* wires, so the dependency
        // graph is acyclic by construction.
        let wires = std::mem::take(&mut self.wires);
        for (idx, w) in wires.iter().enumerate() {
            self.wires = wires[..idx].to_vec();
            if w.width >= 4 && self.rng.chance(25) {
                // Two constant-disjoint partial drivers.
                let split = 1 + self.rng.below(w.width as u64 - 2);
                let lo_rhs = self.expr(2);
                let hi_rhs = self.expr(2);
                out.push_str(&format!(
                    "    assign {}[{}:0] = {};\n",
                    w.name,
                    split - 1,
                    lo_rhs
                ));
                out.push_str(&format!(
                    "    assign {}[{}:{}] = {};\n",
                    w.name,
                    w.width - 1,
                    split,
                    hi_rhs
                ));
            } else {
                let rhs = self.expr(3);
                out.push_str(&format!("    assign {} = {};\n", w.name, rhs));
            }
        }
        self.wires = wires;
        // Occasionally drive a memory element continuously. Its rhs reads
        // registers only, so no comb cycle can pass through the memory.
        if !self.mems.is_empty() && self.rng.chance(25) {
            let m = self.rng.pick(&self.mems).clone();
            let elem = self.rng.below(m.depth as u64);
            let r = self.rng.pick(&self.regs).clone();
            out.push_str(&format!(
                "    assign {}[{}] = {} + 1;\n",
                m.name, elem, r.name
            ));
        }
    }
}

/// The cross-engine regression corpus: a fixed spread of seeds pinned so the
/// exact same generated designs run on every CI invocation (the random
/// proptest sweeps draw fresh seeds per harness change). Shared by
/// `tests/fuzz_differential.rs` (every corpus seed must stay bit-identical
/// across engines) and the `showseed corpus` dump mode (CI uploads the
/// corpus sources as a workflow artifact).
pub const REGRESSION_CORPUS: &[u64] = &[
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 42, 47, 56, 59, 61, 77, 88, 93, 104, 131, 202, 241,
];

/// A minimal hostile tenant for scheduler/quarantine tests: a zero-delay
/// oscillator that elaborates fine but errors at runtime on both engines
/// when the settle cap trips (every update round re-triggers the
/// level-sensitive block). Shared by the hypervisor quarantine tests and
/// `tests/hv_parallel.rs` so the fixture cannot drift between suites.
pub const HOSTILE_DESIGN: &str = r#"
    module Hostile(input wire clock);
        reg f = 0;
        always @(posedge clock) f <= 1;
        always @(f) f <= ~f;
    endmodule
"#;

/// Generates a random valid design from a seed. The same seed always yields
/// the same design.
pub fn generate(seed: u64) -> GeneratedDesign {
    let mut rng = Rng::new(seed);
    let nregs = 3 + rng.below(5) as usize;
    let mut regs = Vec::new();
    for i in 0..nregs {
        let width = *rng.pick(WIDTHS);
        regs.push(Scalar {
            name: format!("r{}", i),
            width,
        });
    }
    // No width-1 register joins the general (writable) pool as `flag`; the
    // edge-guard flag is declared separately and stays read-only to bodies.
    let nmems = rng.below(3) as usize;
    let mut mems = Vec::new();
    for i in 0..nmems {
        mems.push(Memory {
            name: format!("m{}", i),
            width: *rng.pick(&[4usize, 8, 16, 32, 48, 72]),
            depth: 4 + rng.below(13) as usize,
        });
    }
    let nwires = 1 + rng.below(4) as usize;
    let mut wires = Vec::new();
    for i in 0..nwires {
        wires.push(Scalar {
            name: format!("w{}", i),
            width: *rng.pick(WIDTHS),
        });
    }
    let uses_file = rng.chance(30);

    let mut g = Gen {
        rng,
        regs,
        mems,
        wires,
        loop_vars: Vec::new(),
        uses_file,
    };

    let mut src = String::from("module Fuzz(input wire clock);\n");
    for r in &g.regs {
        let init = g.rng.below(1 << 16);
        if r.width == 1 {
            src.push_str(&format!("    reg {} = {};\n", r.name, init & 1));
        } else {
            src.push_str(&format!(
                "    reg [{}:0] {} = {};\n",
                r.width - 1,
                r.name,
                init
            ));
        }
    }
    src.push_str(&format!("    reg {} = 0;\n", FLAG));
    for m in &g.mems {
        src.push_str(&format!(
            "    reg [{}:0] {} [0:{}];\n",
            m.width - 1,
            m.name,
            m.depth - 1
        ));
    }
    for w in &g.wires {
        if w.width == 1 {
            src.push_str(&format!("    wire {};\n", w.name));
        } else {
            src.push_str(&format!("    wire [{}:0] {};\n", w.width - 1, w.name));
        }
    }
    src.push_str("    integer i0 = 0;\n    integer i1 = 0;\n    integer i2 = 0;\n");
    if g.uses_file {
        src.push_str("    integer fd = $fopen(\"fuzz.bin\");\n");
    }

    g.continuous_assigns(&mut src);

    if g.uses_file {
        // A streaming block in the adpcm/nw idiom: read, check EOF, consume.
        let target = g.rng.pick(&g.regs).name.clone();
        let acc = g.rng.pick(&g.regs).name.clone();
        src.push_str(&format!(
            "    always @(posedge clock) begin\n\
             \x20       $fread(fd, {});\n\
             \x20       if (!$feof(fd))\n\
             \x20           {} <= {} + {};\n\
             \x20   end\n",
            target, acc, acc, target
        ));
    }

    // A guaranteed flag driver, so flag-edge blocks are never dead code.
    {
        let srcreg = g.rng.pick(&g.regs).clone();
        let bit = g.rng.below(srcreg.width as u64);
        src.push_str(&format!(
            "    always @(posedge clock) {} <= {}[{}];\n",
            FLAG, srcreg.name, bit
        ));
    }

    let nblocks = 1 + g.rng.below(3);
    for _ in 0..nblocks {
        g.always_block(&mut src);
    }

    if g.rng.chance(25) {
        let r = g.rng.pick(&g.regs).clone();
        let v = g.rng.below(1 << 12);
        src.push_str(&format!(
            "    initial begin\n        {} = {};\n        $display(\"boot\", {});\n    end\n",
            r.name, v, r.name
        ));
    }

    if g.rng.chance(20) {
        // A rare, data-dependent $finish so exit paths get fuzzed too.
        let r = g.rng.pick(&g.regs).clone();
        let code = g.rng.below(4);
        src.push_str(&format!(
            "    always @(posedge clock) if ({}[1:0] == 3 && {}[2]) $finish({});\n",
            r.name, r.name, code
        ));
    }

    src.push_str("endmodule\n");
    GeneratedDesign {
        source: src,
        top: "Fuzz".into(),
        clock: "clock".into(),
        input_path: g.uses_file.then(|| "fuzz.bin".into()),
        seed,
    }
}

/// Deterministic input data for generated streaming designs.
pub fn fuzz_input_data(seed: u64, len: usize) -> Vec<u64> {
    let mut rng = Rng::new(seed ^ 0xf00d_f00d_f00d_f00d);
    (0..len).map(|_| rng.next()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(42), generate(42));
        assert_ne!(generate(1).source, generate(2).source);
    }

    #[test]
    fn generated_designs_parse_and_elaborate() {
        for seed in 0..200 {
            let d = generate(seed);
            synergy_vlog::compile(&d.source, &d.top).unwrap_or_else(|e| {
                panic!("seed {} failed to elaborate: {}\n{}", seed, e, d.source)
            });
        }
    }

    #[test]
    fn generated_designs_stay_in_the_compiled_envelope() {
        for seed in 0..200 {
            let d = generate(seed);
            let design = synergy_vlog::compile(&d.source, &d.top).unwrap();
            synergy_codegen::compile(&design)
                .unwrap_or_else(|e| panic!("seed {} left the envelope: {}\n{}", seed, e, d.source));
        }
    }
}
