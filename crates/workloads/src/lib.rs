//! # synergy-workloads
//!
//! The six evaluation benchmarks of the SYNERGY paper (Table 1), written in the
//! Verilog subset understood by `synergy-vlog`, plus deterministic input-data
//! generators for the streaming workloads. The experiment harnesses in
//! `synergy-bench` combine these with the runtime and hypervisor to regenerate the
//! paper's figures.
#![warn(missing_docs)]

mod benchmarks;
pub mod fuzz;
pub mod golden;

pub use benchmarks::{
    adpcm, all, bitcoin, by_name, df, input_data, mips32, nw, regex, Benchmark, Style,
};
pub use fuzz::{
    fuzz_input_data, generate as generate_fuzz_design, GeneratedDesign, HOSTILE_DESIGN,
    REGRESSION_CORPUS,
};

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_interp::{BufferEnv, Interpreter};
    use synergy_transform::{analyze, transform, TransformOptions};

    fn run_benchmark(bench: &Benchmark, ticks: usize) -> (Interpreter, BufferEnv) {
        let design = synergy_vlog::compile(&bench.source, &bench.top).unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        if let Some(path) = &bench.input_path {
            env.add_file(path.clone(), input_data(&bench.name, 4 * ticks));
        }
        for _ in 0..ticks {
            interp.tick(&bench.clock, &mut env).unwrap();
        }
        (interp, env)
    }

    #[test]
    fn all_benchmarks_are_listed_in_table_1_order() {
        let names: Vec<String> = all().into_iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec!["adpcm", "bitcoin", "df", "mips32", "nw", "regex"]
        );
        assert!(by_name("bitcoin").is_some());
        assert!(by_name("missing").is_none());
    }

    #[test]
    fn every_benchmark_compiles_and_makes_progress() {
        for bench in all() {
            let (interp, _env) = run_benchmark(&bench, 80);
            let metric = interp.get_bits(&bench.metric_var).unwrap().to_u64();
            assert!(
                metric > 0,
                "benchmark {} made no progress on {}",
                bench.name,
                bench.metric_var
            );
        }
    }

    #[test]
    fn every_benchmark_compiles_to_netlist_ir() {
        // Both source variants of every workload must stay inside the
        // compiled engine's envelope, or the runtime's Auto policy would
        // silently degrade the hot path back to the interpreter.
        for bench in all() {
            for quiescent in [false, true] {
                let design =
                    synergy_vlog::compile(bench.source_for(quiescent), &bench.top).unwrap();
                let prog = synergy_codegen::compile(&design).unwrap_or_else(|e| {
                    panic!(
                        "{} (quiescent={}) failed to lower: {}",
                        bench.name, quiescent, e
                    )
                });
                assert!(
                    prog.num_always() >= 1,
                    "{}: no procedural blocks",
                    bench.name
                );
                assert!(prog.op_count() > 0);
            }
        }
    }

    #[test]
    fn every_benchmark_transforms() {
        for bench in all() {
            let design = synergy_vlog::compile(&bench.source, &bench.top).unwrap();
            let t = transform(&design, TransformOptions::default())
                .unwrap_or_else(|e| panic!("{} failed to transform: {}", bench.name, e));
            assert!(t.num_states() >= 3, "{} has too few states", bench.name);
        }
    }

    #[test]
    fn quiescent_variants_use_yield_and_reduce_captured_state() {
        for bench in all() {
            let plain = synergy_vlog::compile(&bench.source, &bench.top).unwrap();
            let quiet = synergy_vlog::compile(&bench.quiescent_source, &bench.top).unwrap();
            let plain_report = analyze(&plain);
            let quiet_report = analyze(&quiet);
            assert!(
                !plain_report.uses_yield,
                "{} default variant must not yield",
                bench.name
            );
            assert!(
                quiet_report.uses_yield,
                "{} quiescent variant must yield",
                bench.name
            );
            assert!(
                quiet_report.captured_bits() < plain_report.captured_bits(),
                "{}: quiescence should reduce captured state",
                bench.name
            );
            assert!(quiet_report.volatile_fraction() > 0.0);
        }
    }

    #[test]
    fn bitcoin_counts_hashes() {
        let bench = bitcoin();
        let (interp, _) = run_benchmark(&bench, 100);
        assert_eq!(interp.get_bits("hashes_lo").unwrap().to_u64(), 100);
    }

    #[test]
    fn mips32_sorts_the_array() {
        let bench = mips32();
        // Enough ticks for randomise (64) + a full bubble sort pass (~2k compares).
        let (interp, _) = run_benchmark(&bench, 2_600);
        assert!(
            interp.get_bits("runs_out").unwrap().to_u64() >= 1,
            "one sort run completes"
        );
        // After a completed run the array should have been re-randomised or be in
        // a sorted prefix state; check the retired-instruction counter advanced.
        assert!(interp.get_bits("instret_lo").unwrap().to_u64() >= 2_600);
    }

    #[test]
    fn regex_counts_matches_and_reads() {
        let bench = regex();
        let (interp, env) = run_benchmark(&bench, 200);
        let reads = interp.get_bits("reads_lo").unwrap().to_u64();
        assert!(reads > 150, "reads should track the stream, got {}", reads);
        assert!(env.reads >= reads);
        // With a/b/c-heavy input some matches are found.
        assert!(interp.get_bits("matches_lo").unwrap().to_u64() > 0);
    }

    #[test]
    fn nw_scores_alignments() {
        let bench = nw();
        let (interp, _) = run_benchmark(&bench, 50);
        assert!(interp.get_bits("alignments_lo").unwrap().to_u64() > 10);
        // Gap-penalty bound: score of aligning 8 bases can never exceed 16+16.
        assert!(interp.get_bits("score_out").unwrap().to_u64() <= 32);
    }

    #[test]
    fn adpcm_tracks_predictor_error() {
        let bench = adpcm();
        let (interp, _) = run_benchmark(&bench, 300);
        let samples = interp.get_bits("samples_lo").unwrap().to_u64();
        assert!(samples > 200);
        assert!(interp.get_bits("errsum_lo").unwrap().to_u64() > 0);
    }

    #[test]
    fn df_advances_every_tick() {
        let bench = df();
        let (interp, _) = run_benchmark(&bench, 64);
        assert_eq!(interp.get_bits("ops_lo").unwrap().to_u64(), 256);
        assert!(interp.get_bits("acc_out").unwrap().to_u64() != 0x3ff0000000000000);
    }

    #[test]
    fn input_data_is_deterministic_and_shaped() {
        assert_eq!(input_data("regex", 64), input_data("regex", 64));
        assert!(input_data("regex", 1000).iter().all(|&c| c < 256));
        let nw_words = input_data("nw", 16);
        assert!(nw_words.iter().all(|w| {
            (0..8).all(|i| {
                let b = (w >> (i * 8)) & 0xff;
                [b'A' as u64, b'C' as u64, b'G' as u64, b'T' as u64].contains(&b)
            })
        }));
        assert!(input_data("adpcm", 500).iter().all(|&s| s <= 65_000));
    }
}
