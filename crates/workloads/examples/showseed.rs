//! Developer utility: sweep fuzz seeds differentially (interpreter vs both
//! compiled-engine tiers vs the optimized regalloc tier, four-way), print
//! one seed's generated source, regenerate the
//! committed golden checkpoints, or sweep seeds through a checkpoint
//! round-trip (checkpoint mid-run, restore, lockstep-compare against the
//! uninterrupted run).
//!
//! ```text
//! cargo run --release -p synergy-workloads --example showseed -- 7                # print seed 7
//! cargo run --release -p synergy-workloads --example showseed -- 0 5000          # sweep seeds 0..5000
//! cargo run --release -p synergy-workloads --example showseed -- corpus dir      # dump the pinned corpus
//! cargo run --release -p synergy-workloads --example showseed -- golden tests/golden  # regenerate goldens
//! cargo run --release -p synergy-workloads --example showseed -- roundtrip 0 2048    # checkpoint round-trip sweep
//! ```

use synergy_interp::{BufferEnv, Interpreter};
use synergy_runtime::{EnginePolicy, Runtime};
use synergy_workloads::golden::{golden_file_name, golden_matrix, golden_runtime};
use synergy_workloads::{fuzz_input_data, generate_fuzz_design, REGRESSION_CORPUS};

fn run_seed(seed: u64, ticks: usize) -> Result<(), String> {
    let d = generate_fuzz_design(seed);
    let design =
        synergy_vlog::compile(&d.source, &d.top).map_err(|e| format!("elaborate: {}", e))?;
    let prog = synergy_codegen::compile(&design).map_err(|e| format!("lower: {}", e))?;
    let mut oprog = prog.clone();
    let report = synergy_opt::optimize_with_passes(&mut oprog, &synergy_opt::PASS_NAMES);
    if report.any_reverted() {
        return Err(format!(
            "an optimization pass failed validation and reverted\n{}",
            d.source
        ));
    }
    let mut interp = Interpreter::new(design);
    let mut sim =
        synergy_codegen::CompiledSim::with_tier(prog.clone(), synergy_codegen::Tier::RegAlloc)
            .map_err(|e| format!("regalloc translation: {}", e))?;
    let mut stack =
        synergy_codegen::CompiledSim::with_tier(prog, synergy_codegen::Tier::Stack).unwrap();
    let mut osim = synergy_codegen::CompiledSim::with_tier(oprog, synergy_codegen::Tier::RegAlloc)
        .map_err(|e| format!("optimized regalloc translation: {}", e))?;
    let mut ienv = BufferEnv::new();
    let mut cenv = BufferEnv::new();
    let mut senv = BufferEnv::new();
    let mut oenv = BufferEnv::new();
    if let Some(path) = &d.input_path {
        let data = fuzz_input_data(seed, ticks / 2);
        ienv.add_file(path.clone(), data.clone());
        senv.add_file(path.clone(), data.clone());
        oenv.add_file(path.clone(), data.clone());
        cenv.add_file(path.clone(), data);
    }
    for t in 0..ticks {
        // Error parity, same as tests/fuzz_differential.rs: a design all
        // engines reject with the same message is agreement, not a failure.
        let ir = interp.tick(&d.clock, &mut ienv);
        let cr = sim.tick(&d.clock, &mut cenv);
        let sr = stack.tick(&d.clock, &mut senv);
        let or = osim.tick(&d.clock, &mut oenv);
        match (&ir, &cr, &sr, &or) {
            (Ok(()), Ok(()), Ok(()), Ok(())) => {}
            (Err(a), Err(b), Err(c), Err(d))
                if a.to_string() == b.to_string()
                    && a.to_string() == c.to_string()
                    && a.to_string() == d.to_string() =>
            {
                break
            }
            _ => {
                return Err(format!(
                    "engines disagree at tick {} (interp: {:?}, regalloc: {:?}, stack: {:?}, optimized: {:?})",
                    t, ir, cr, sr, or
                ))
            }
        }
        let isnap = interp.save_state();
        if isnap != sim.save_state() {
            return Err(format!("regalloc snapshots diverge at tick {}", t));
        }
        if isnap != stack.save_state() {
            return Err(format!("stack snapshots diverge at tick {}", t));
        }
        if isnap != osim.save_state() {
            return Err(format!("optimized snapshots diverge at tick {}", t));
        }
        if interp.finished() != sim.finished()
            || interp.finished() != stack.finished()
            || interp.finished() != osim.finished()
        {
            return Err(format!("finish diverges at tick {}", t));
        }
        if interp.finished().is_some() {
            break;
        }
    }
    if ienv.output_text() != cenv.output_text()
        || ienv.output_text() != senv.output_text()
        || ienv.output_text() != oenv.output_text()
    {
        return Err("output diverges".into());
    }
    Ok(())
}

/// Writes every pinned regression-corpus seed's generated source into `dir`
/// (one `seed_NNN.v` per seed, plus an index), re-verifying each seed on the
/// way. CI uploads the directory as the fuzz-corpus workflow artifact.
fn dump_corpus(dir: &str) {
    std::fs::create_dir_all(dir).expect("create corpus dir");
    let mut index = String::from("seed\tfile\n");
    for &seed in REGRESSION_CORPUS {
        run_seed(seed, 24).unwrap_or_else(|e| panic!("corpus seed {} regressed: {}", seed, e));
        let file = format!("seed_{:03}.v", seed);
        std::fs::write(
            format!("{}/{}", dir, file),
            generate_fuzz_design(seed).source,
        )
        .expect("write corpus design");
        index.push_str(&format!("{}\t{}\n", seed, file));
    }
    std::fs::write(format!("{}/INDEX.tsv", dir), index).expect("write corpus index");
    println!(
        "dumped {} corpus designs to {}",
        REGRESSION_CORPUS.len(),
        dir
    );
}

/// Regenerates the committed golden checkpoints: one durable checkpoint per
/// Table-1 workload per compiled-engine tier, captured by the shared
/// `synergy_workloads::golden` recipe (the same construction the CI
/// `snapshot-compat` gate replays as its fresh reference). Run this — and
/// commit the result — whenever the wire format version is deliberately
/// bumped.
fn write_goldens(dir: &str) {
    std::fs::create_dir_all(dir).expect("create golden dir");
    for (bench, tier) in golden_matrix() {
        let rt = golden_runtime(&bench, tier).unwrap_or_else(|e| {
            panic!("golden {} ({:?}) failed to build: {}", bench.name, tier, e)
        });
        let file = golden_file_name(&bench, tier);
        let bytes = rt.save_checkpoint();
        std::fs::write(format!("{}/{}", dir, file), &bytes).expect("write golden");
        println!("wrote {}/{} ({} bytes)", dir, file, bytes.len());
    }
}

/// Runs one fuzz seed through a checkpoint round-trip: execute under
/// `EnginePolicy::Auto`, checkpoint at a tick boundary mid-run, restore from
/// the bytes, then lockstep-compare the restored lineage against the
/// uninterrupted one.
fn roundtrip_seed(seed: u64, warmup: u64, rest: u64) -> Result<(), String> {
    let d = generate_fuzz_design(seed);
    let mut rt = Runtime::with_policy(
        format!("fuzz{}", seed),
        &d.source,
        &d.top,
        &d.clock,
        EnginePolicy::Auto,
    )
    .map_err(|e| format!("build: {}", e))?;
    if let Some(path) = &d.input_path {
        rt.add_file(
            path.clone(),
            fuzz_input_data(seed, (warmup + rest) as usize),
        );
    }
    if rt.run_ticks(warmup).is_err() {
        // Designs both engines reject identically are covered by the
        // differential sweep; the round-trip leg only needs runnable ones.
        return Ok(());
    }
    let bytes = rt.save_checkpoint();
    let mut restored =
        Runtime::restore_checkpoint(&bytes).map_err(|e| format!("restore: {}", e))?;
    if restored.peek_state() != rt.peek_state() {
        return Err("state diverges immediately after restore".into());
    }
    let a = rt.run_ticks(rest);
    let b = restored.run_ticks(rest);
    match (&a, &b) {
        (Ok(_), Ok(_)) => {}
        (Err(x), Err(y)) if x.to_string() == y.to_string() => return Ok(()),
        _ => return Err(format!("onward results disagree ({:?} vs {:?})", a, b)),
    }
    if restored.peek_state() != rt.peek_state() {
        return Err(format!("state diverges {} ticks after restore", rest));
    }
    if restored.env.output_text() != rt.env.output_text() {
        return Err("output diverges after restore".into());
    }
    if restored.save_checkpoint() != rt.save_checkpoint() {
        return Err("re-checkpoint bytes diverge".into());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let [mode, dir] = args.as_slice() {
        if mode == "corpus" {
            dump_corpus(dir);
            return;
        }
        if mode == "golden" {
            write_goldens(dir);
            return;
        }
    }
    if let [mode, start, end] = args.as_slice() {
        if mode == "roundtrip" {
            let (start, end): (u64, u64) = (
                start.parse().expect("numeric seed"),
                end.parse().expect("numeric seed"),
            );
            let mut failures = 0;
            for seed in start..end {
                if let Err(e) = roundtrip_seed(seed, 12, 12) {
                    failures += 1;
                    eprintln!("seed {}: {}", seed, e);
                }
            }
            println!(
                "round-tripped {} seeds through the wire format, {} failures",
                end - start,
                failures
            );
            if failures > 0 {
                std::process::exit(1);
            }
            return;
        }
    }
    let nums: Vec<u64> = args
        .iter()
        .map(|a| a.parse().expect("numeric seed"))
        .collect();
    match nums.as_slice() {
        [seed] => println!("{}", generate_fuzz_design(*seed).source),
        [start, end] => {
            let mut failures = 0;
            for seed in *start..*end {
                if let Err(e) = run_seed(seed, 24) {
                    failures += 1;
                    eprintln!("seed {}: {}", seed, e);
                }
            }
            println!("swept {} seeds, {} failures", end - start, failures);
            if failures > 0 {
                std::process::exit(1);
            }
        }
        _ => eprintln!(
            "usage: showseed <seed> | showseed <start> <end> | showseed corpus <dir> \
             | showseed golden <dir> | showseed roundtrip <start> <end>"
        ),
    }
}
