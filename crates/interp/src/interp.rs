//! The reference event-driven interpreter for elaborated designs.
//!
//! This is the "software engine" of the Cascade/SYNERGY runtime (§2.1 of the
//! paper): it executes an [`ElabModule`] according to Verilog's scheduling
//! semantics — continuous assignments re-evaluate when their inputs change,
//! procedural blocks run when their guards fire, blocking assignments are visible
//! immediately, and non-blocking assignments latch at the update step. System tasks
//! execute inline against a [`SystemEnv`], which is exactly what makes the software
//! engine able to run the full unsynthesizable language.

use crate::env::{SystemEnv, TaskEffect};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use synergy_vlog::ast::*;
use synergy_vlog::elaborate::ElabModule;
use synergy_vlog::{Bits, VlogError, VlogResult};

/// Upper bound on combinational-propagation iterations before declaring a loop.
const MAX_PROPAGATION_ITERS: usize = 10_000;
/// Upper bound on procedural loop iterations (`for`/`repeat`).
const MAX_LOOP_ITERS: u64 = 10_000_000;
/// Upper bound on evaluate/update rounds per settle. A design that schedules
/// new non-blocking assignments on every round (a zero-delay self-clocking
/// oscillator, e.g. `always @(posedge f) f <= ~f;`) would otherwise hang the
/// runtime forever; erroring keeps a hostile tenant from wedging the
/// hypervisor. The compiled engine enforces the same cap with the same
/// message so error behaviour stays engine-identical.
const MAX_SETTLE_ITERS: usize = 1_000;

/// A no-op environment used where system tasks cannot occur (guard expressions,
/// post-restore wire propagation).
struct NullEnv;

impl SystemEnv for NullEnv {
    fn print(&mut self, _text: &str) {}
    fn fopen(&mut self, _path: &str) -> u32 {
        0
    }
    fn fread(&mut self, _fd: u32, _width: usize) -> Option<Bits> {
        None
    }
    fn feof(&mut self, _fd: u32) -> bool {
        true
    }
    fn fclose(&mut self, _fd: u32) {}
    fn random(&mut self) -> u32 {
        0
    }
}

/// A snapshot of a program's architectural state, as captured by `$save` or the
/// runtime's `get` requests (§3.5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StateSnapshot {
    /// Values of every register and memory, keyed by flattened variable name.
    pub values: BTreeMap<String, Value>,
    /// Simulation time at capture.
    pub time: u64,
}

impl StateSnapshot {
    /// Total number of state bits captured.
    pub fn total_bits(&self) -> usize {
        self.values.values().map(Value::state_bits).sum()
    }
}

/// Formats the postmortem fault detail from the non-blocking assignment
/// targets still pending when a settle cap fires. Shared by every engine so
/// a hostile tenant's postmortem names the failing always-block site
/// identically regardless of execution tier.
pub fn fault_from_targets<'a>(targets: impl Iterator<Item = &'a str>) -> String {
    let mut names: Vec<&str> = targets.collect();
    names.sort_unstable();
    names.dedup();
    format!("non-convergent non-blocking targets: {}", names.join(", "))
}

/// The event-driven interpreter.
#[derive(Debug, Clone)]
pub struct Interpreter {
    module: ElabModule,
    values: BTreeMap<String, Value>,
    /// Previous values of each always-block guard expression, for edge detection.
    guard_prev: Vec<Vec<Bits>>,
    /// Sensitivity lists for `@*` blocks (identifiers read by the body).
    star_sensitivity: Vec<Vec<String>>,
    nonblocking: Vec<(LValue, Bits)>,
    effects: Vec<TaskEffect>,
    time: u64,
    finished: Option<u32>,
    initials_run: bool,
    /// Cumulative evaluate/update rounds executed by [`Interpreter::settle`].
    /// Pure observability — never part of [`StateSnapshot`].
    settle_iters: u64,
    /// Names of the non-blocking targets still pending when the settle cap
    /// fired, captured for postmortems (the error message itself stays
    /// engine-identical).
    fault: Option<String>,
}

impl Interpreter {
    /// Creates an interpreter over an elaborated module with all registers at their
    /// declared initial values.
    pub fn new(module: ElabModule) -> Self {
        let mut values = BTreeMap::new();
        for (name, var) in &module.vars {
            let v = match var.depth {
                Some(depth) => Value::memory(var.width, depth),
                None => match &var.init {
                    Some(b) => Value::Scalar(b.resize(var.width)),
                    None => Value::scalar(var.width),
                },
            };
            values.insert(name.clone(), v);
        }
        let guard_prev = module
            .always
            .iter()
            .map(|b| b.events.iter().map(|_| Bits::zero(1)).collect())
            .collect();
        let star_sensitivity = module
            .always
            .iter()
            .map(|b| {
                if b.events.is_empty() {
                    stmt_reads(&b.body)
                } else {
                    Vec::new()
                }
            })
            .collect();
        Interpreter {
            module,
            values,
            guard_prev,
            star_sensitivity,
            nonblocking: Vec::new(),
            effects: Vec::new(),
            time: 0,
            finished: None,
            initials_run: false,
            settle_iters: 0,
            fault: None,
        }
    }

    /// Cumulative evaluate/update rounds executed by [`Interpreter::settle`]
    /// over this interpreter's lifetime (telemetry; not architectural state).
    pub fn settle_iters(&self) -> u64 {
        self.settle_iters
    }

    /// Executor-specific detail for the most recent settle-cap failure: the
    /// non-blocking targets that never converged (e.g. the register a hostile
    /// `always` block keeps toggling). `None` until such a failure occurs.
    pub fn fault_detail(&self) -> Option<&str> {
        self.fault.as_deref()
    }

    /// The elaborated module being executed.
    pub fn module(&self) -> &ElabModule {
        &self.module
    }

    /// Current simulation time (incremented by [`Interpreter::tick`]).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The exit code passed to `$finish`, if the program has finished.
    pub fn finished(&self) -> Option<u32> {
        self.finished
    }

    /// Drains the control-flow effects produced by system tasks since the last call.
    pub fn take_effects(&mut self) -> Vec<TaskEffect> {
        std::mem::take(&mut self.effects)
    }

    /// Reads a variable's current value.
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    pub fn get(&self, name: &str) -> VlogResult<&Value> {
        self.values
            .get(name)
            .ok_or_else(|| VlogError::Elaborate(format!("no such variable '{}'", name)))
    }

    /// Reads a scalar variable as `Bits`.
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    pub fn get_bits(&self, name: &str) -> VlogResult<Bits> {
        Ok(self.get(name)?.as_scalar().clone())
    }

    /// Writes a variable (an input port, or any register during state restore).
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    pub fn set(&mut self, name: &str, value: Bits) -> VlogResult<()> {
        let width = self.module.width_of_var(name);
        match self.values.get_mut(name) {
            Some(Value::Scalar(b)) => {
                *b = value.resize(width);
                Ok(())
            }
            Some(Value::Memory(_)) => Err(VlogError::Elaborate(format!(
                "cannot scalar-assign memory '{}'",
                name
            ))),
            None => Err(VlogError::Elaborate(format!("no such variable '{}'", name))),
        }
    }

    /// Replaces a whole value (scalar or memory).
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    pub fn set_value(&mut self, name: &str, value: Value) -> VlogResult<()> {
        match self.values.get_mut(name) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(VlogError::Elaborate(format!("no such variable '{}'", name))),
        }
    }

    /// Captures the architectural state (registers and memories) of the program.
    pub fn save_state(&self) -> StateSnapshot {
        let mut values = BTreeMap::new();
        for (name, var) in &self.module.vars {
            if var.is_register() {
                values.insert(name.clone(), self.values[name].clone());
            }
        }
        StateSnapshot {
            values,
            time: self.time,
        }
    }

    /// Restores a previously captured state snapshot.
    ///
    /// Variables present in the snapshot but not the design are ignored, which
    /// allows migration between engines compiled from the same source. Continuous
    /// assignments are re-propagated so outputs immediately reflect the restored
    /// registers, and edge detection is re-seeded from the restored values —
    /// the restored state is the new steady state, so the transition from the
    /// pre-restore (or freshly constructed) values must not fire any
    /// `always @(edge ...)` block.
    pub fn restore_state(&mut self, snapshot: &StateSnapshot) {
        for (name, value) in &snapshot.values {
            if self.values.contains_key(name) {
                self.values.insert(name.clone(), value.clone());
            }
        }
        self.time = snapshot.time;
        let _ = self.propagate_assigns(&mut NullEnv);
        self.prime_guards();
    }

    /// Re-seeds the stored previous guard values from the *current* values,
    /// so the next [`Interpreter::evaluate`] sees no edges. The compiled
    /// tiers implement the identical priming in their `restore_state`.
    fn prime_guards(&mut self) {
        for idx in 0..self.module.always.len() {
            let block = &self.module.always[idx];
            if block.events.is_empty() {
                let current: Vec<Bits> = self.star_sensitivity[idx]
                    .iter()
                    .map(|n| {
                        self.values
                            .get(n)
                            .map(|v| v.as_scalar().clone())
                            .unwrap_or_default()
                    })
                    .collect();
                self.guard_prev[idx] = current;
            } else {
                let current: Vec<Bits> = block
                    .events
                    .iter()
                    .map(|e| {
                        self.eval_expr_pure(&e.expr)
                            .unwrap_or_else(|_| Bits::zero(1))
                    })
                    .collect();
                self.guard_prev[idx] = current;
            }
        }
    }

    /// `true` if non-blocking assignments are waiting to be latched.
    pub fn there_are_updates(&self) -> bool {
        !self.nonblocking.is_empty()
    }

    /// Whether `initial` blocks have already executed.
    pub fn initials_run(&self) -> bool {
        self.initials_run
    }

    /// Marks `initial` blocks as executed *without* running them. Used when
    /// restoring captured state into a fresh interpreter: the checkpointed
    /// program already ran its initials (and their environment side effects,
    /// such as `$fopen`), so replaying them would corrupt the restored run.
    pub fn mark_initials_run(&mut self) {
        self.initials_run = true;
    }

    /// Runs `initial` blocks if they have not run yet. Called automatically by
    /// [`Interpreter::evaluate`].
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the initial blocks.
    pub fn run_initials(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        if self.initials_run {
            return Ok(());
        }
        self.initials_run = true;
        let initials = self.module.initials.clone();
        for stmt in &initials {
            self.exec_stmt(stmt, env)?;
        }
        Ok(())
    }

    /// Runs evaluation events until the program reaches a fixed point: continuous
    /// assignments are propagated and triggered `always` blocks execute.
    ///
    /// This corresponds to the `evaluate` ABI request (§2.1).
    ///
    /// # Errors
    ///
    /// Returns an error on combinational loops or malformed programs.
    pub fn evaluate(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        self.run_initials(env)?;
        let mut iterations = 0usize;
        loop {
            self.propagate_assigns(env)?;
            let triggered = self.triggered_blocks();
            if triggered.is_empty() {
                return Ok(());
            }
            for idx in triggered {
                if self.finished.is_some() {
                    return Ok(());
                }
                let body = self.module.always[idx].body.clone();
                self.exec_stmt(&body, env)?;
                self.propagate_assigns(env)?;
            }
            iterations += 1;
            if iterations > MAX_PROPAGATION_ITERS {
                return Err(VlogError::Elaborate(
                    "always blocks did not stabilise (oscillating design?)".into(),
                ));
            }
        }
    }

    /// Latches all pending non-blocking assignments.
    ///
    /// This corresponds to the `update` ABI request (§2.1). Returns `true` if any
    /// value changed.
    ///
    /// # Errors
    ///
    /// Returns an error if an assignment target is malformed.
    pub fn update(&mut self, env: &mut dyn SystemEnv) -> VlogResult<bool> {
        if self.nonblocking.is_empty() {
            return Ok(false);
        }
        let pending = std::mem::take(&mut self.nonblocking);
        for (lhs, value) in pending {
            self.assign_lvalue(&lhs, value, env)?;
        }
        Ok(true)
    }

    /// Runs evaluate/update until no more updates are pending.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Interpreter::evaluate`] and
    /// [`Interpreter::update`], and rejects designs whose update rounds never
    /// drain (zero-delay self-triggering edges).
    pub fn settle(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        for iter in 0..MAX_SETTLE_ITERS {
            self.evaluate(env)?;
            self.settle_iters += 1;
            if iter + 1 == MAX_SETTLE_ITERS && !self.nonblocking.is_empty() {
                // About to hit the cap: capture the still-pending targets for
                // the postmortem before the final (futile) update drains them.
                self.fault = Some(fault_from_targets(
                    self.nonblocking.iter().flat_map(|(l, _)| l.targets()),
                ));
            }
            if !self.update(env)? {
                return Ok(());
            }
        }
        Err(VlogError::Elaborate(
            "non-blocking updates did not converge (self-triggering design?)".into(),
        ))
    }

    /// Advances one full virtual clock cycle on the named clock input: drives it
    /// high, settles, drives it low, settles, and increments simulation time.
    ///
    /// # Errors
    ///
    /// Returns an error if the clock variable does not exist or evaluation fails.
    pub fn tick(&mut self, clock: &str, env: &mut dyn SystemEnv) -> VlogResult<()> {
        self.set(clock, Bits::from_u64(1, 1))?;
        self.settle(env)?;
        self.set(clock, Bits::from_u64(1, 0))?;
        self.settle(env)?;
        self.time += 1;
        Ok(())
    }

    // ------------------------------------------------------------------ internals

    /// Re-evaluates continuous assignments until no wire changes value.
    fn propagate_assigns(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        let assigns = self.module.assigns.clone();
        for iter in 0.. {
            if iter > MAX_PROPAGATION_ITERS {
                return Err(VlogError::Elaborate(
                    "combinational loop detected in continuous assignments".into(),
                ));
            }
            let mut changed = false;
            for a in &assigns {
                let value = self.eval_expr(&a.rhs, env)?;
                changed |= self.assign_lvalue_check_changed(&a.lhs, value, env)?;
            }
            if !changed {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Determines which always blocks fire, updating the stored previous guard
    /// values as a side effect.
    fn triggered_blocks(&mut self) -> Vec<usize> {
        let mut triggered = Vec::new();
        for (idx, block) in self.module.always.iter().enumerate() {
            if block.events.is_empty() {
                // `always @*`: fire when any identifier read by the body changed.
                let current: Vec<Bits> = self.star_sensitivity[idx]
                    .iter()
                    .map(|n| {
                        self.values
                            .get(n)
                            .map(|v| v.as_scalar().clone())
                            .unwrap_or_default()
                    })
                    .collect();
                if self.guard_prev[idx].len() != current.len() {
                    self.guard_prev[idx] = vec![Bits::zero(1); current.len()];
                }
                let fired = self.guard_prev[idx]
                    .iter()
                    .zip(current.iter())
                    .any(|(p, c)| p != c);
                self.guard_prev[idx] = current;
                if fired {
                    triggered.push(idx);
                }
                continue;
            }
            let mut fired = false;
            let mut new_prev = Vec::with_capacity(block.events.len());
            for (eidx, event) in block.events.iter().enumerate() {
                let current = self
                    .eval_expr_pure(&event.expr)
                    .unwrap_or_else(|_| Bits::zero(1));
                let prev = &self.guard_prev[idx][eidx];
                let f = match event.edge {
                    Edge::Pos => !prev.bit(0) && current.bit(0),
                    Edge::Neg => prev.bit(0) && !current.bit(0),
                    Edge::Any => prev != &current,
                };
                fired |= f;
                new_prev.push(current);
            }
            self.guard_prev[idx] = new_prev;
            if fired {
                triggered.push(idx);
            }
        }
        triggered
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut dyn SystemEnv) -> VlogResult<()> {
        if self.finished.is_some() {
            return Ok(());
        }
        match stmt {
            Stmt::Block(stmts) | Stmt::Fork(stmts) => {
                // fork/join is executed sequentially: a valid scheduling (§3.2).
                for s in stmts {
                    self.exec_stmt(s, env)?;
                }
                Ok(())
            }
            Stmt::Blocking(a) => {
                let value = self.eval_expr(&a.rhs, env)?;
                self.assign_lvalue(&a.lhs, value, env)?;
                Ok(())
            }
            Stmt::NonBlocking(a) => {
                let value = self.eval_expr(&a.rhs, env)?;
                self.nonblocking.push((a.lhs.clone(), value));
                Ok(())
            }
            Stmt::If { cond, then, other } => {
                if self.eval_expr(cond, env)?.to_bool() {
                    self.exec_stmt(then, env)
                } else if let Some(e) = other {
                    self.exec_stmt(e, env)
                } else {
                    Ok(())
                }
            }
            Stmt::Case {
                expr,
                arms,
                default,
            } => {
                let scrutinee = self.eval_expr(expr, env)?;
                for arm in arms {
                    for label in &arm.labels {
                        let lv = self.eval_expr(label, env)?;
                        if lv.ucmp(&scrutinee) == std::cmp::Ordering::Equal {
                            return self.exec_stmt(&arm.body, env);
                        }
                    }
                }
                if let Some(d) = default {
                    self.exec_stmt(d, env)
                } else {
                    Ok(())
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let v = self.eval_expr(&init.rhs, env)?;
                self.assign_lvalue(&init.lhs, v, env)?;
                let mut iters = 0u64;
                while self.eval_expr(cond, env)?.to_bool() {
                    self.exec_stmt(body, env)?;
                    let v = self.eval_expr(&step.rhs, env)?;
                    self.assign_lvalue(&step.lhs, v, env)?;
                    iters += 1;
                    if iters > MAX_LOOP_ITERS {
                        return Err(VlogError::Elaborate(
                            "for loop exceeded iteration cap".into(),
                        ));
                    }
                    if self.finished.is_some() {
                        break;
                    }
                }
                Ok(())
            }
            Stmt::Repeat { count, body } => {
                let n = self.eval_expr(count, env)?.to_u64();
                for _ in 0..n.min(MAX_LOOP_ITERS) {
                    self.exec_stmt(body, env)?;
                    if self.finished.is_some() {
                        break;
                    }
                }
                Ok(())
            }
            Stmt::SystemTask(task) => self.exec_task(task, env),
            Stmt::Null => Ok(()),
        }
    }

    fn exec_task(&mut self, task: &SystemTask, env: &mut dyn SystemEnv) -> VlogResult<()> {
        match task.kind {
            TaskKind::Display | TaskKind::Write => {
                let mut text = String::new();
                for arg in &task.args {
                    match arg {
                        Expr::StringLit(s) => text.push_str(s),
                        other => {
                            let v = self.eval_expr(other, env)?;
                            text.push_str(&v.to_dec_string());
                        }
                    }
                }
                if task.kind == TaskKind::Display {
                    text.push('\n');
                }
                env.print(&text);
                Ok(())
            }
            TaskKind::Finish => {
                let code = match task.args.first() {
                    Some(e) => self.eval_expr(e, env)?.to_u64() as u32,
                    None => 0,
                };
                self.finished = Some(code);
                self.effects.push(TaskEffect::Finish(code));
                Ok(())
            }
            TaskKind::Fclose => {
                if let Some(e) = task.args.first() {
                    let fd = self.eval_expr(e, env)?.to_u64() as u32;
                    env.fclose(fd);
                }
                Ok(())
            }
            TaskKind::Fread => {
                let (fd_expr, target) = match (task.args.first(), task.args.get(1)) {
                    (Some(fd), Some(target)) => (fd, target),
                    _ => {
                        return Err(VlogError::Elaborate(
                            "$fread requires a descriptor and a target".into(),
                        ))
                    }
                };
                let fd = self.eval_expr(fd_expr, env)?.to_u64() as u32;
                let lhs = expr_to_lvalue(target)?;
                let width = self.lvalue_width(&lhs);
                if let Some(v) = env.fread(fd, width) {
                    self.assign_lvalue(&lhs, v, env)?;
                }
                Ok(())
            }
            TaskKind::Save => {
                let tag = string_arg(task.args.first());
                self.effects.push(TaskEffect::Save(tag));
                Ok(())
            }
            TaskKind::Restart => {
                let tag = string_arg(task.args.first());
                self.effects.push(TaskEffect::Restart(tag));
                Ok(())
            }
            TaskKind::Yield => {
                self.effects.push(TaskEffect::Yield);
                Ok(())
            }
            // Function-style tasks used in statement position are evaluated for
            // their side effects.
            TaskKind::Fopen | TaskKind::Feof | TaskKind::Time | TaskKind::Random => {
                let call = Expr::SystemCall(task.kind, task.args.clone());
                let _ = self.eval_expr(&call, env)?;
                Ok(())
            }
        }
    }

    fn lvalue_width(&self, lv: &LValue) -> usize {
        lvalue_width(&self.module, lv)
    }

    fn assign_lvalue(
        &mut self,
        lv: &LValue,
        value: Bits,
        env: &mut dyn SystemEnv,
    ) -> VlogResult<()> {
        self.assign_lvalue_check_changed(lv, value, env)?;
        Ok(())
    }

    fn assign_lvalue_check_changed(
        &mut self,
        lv: &LValue,
        value: Bits,
        env: &mut dyn SystemEnv,
    ) -> VlogResult<bool> {
        match lv {
            LValue::Ident(name) => {
                let width = self.module.width_of_var(name);
                let new = value.resize(width);
                match self.values.get_mut(name) {
                    Some(Value::Scalar(b)) => {
                        if *b != new {
                            *b = new;
                            Ok(true)
                        } else {
                            Ok(false)
                        }
                    }
                    Some(Value::Memory(_)) => Err(VlogError::Elaborate(format!(
                        "cannot assign whole memory '{}'",
                        name
                    ))),
                    None => Err(VlogError::Elaborate(format!("no such variable '{}'", name))),
                }
            }
            LValue::Index(name, idx) => {
                let idx = self.eval_expr(idx, env)?.to_u64() as usize;
                let is_memory = self
                    .module
                    .var(name)
                    .map(|v| v.depth.is_some())
                    .unwrap_or(false);
                let elem_width = self.module.width_of_var(name);
                match self.values.get_mut(name) {
                    Some(Value::Memory(mem)) => {
                        if idx >= mem.len() {
                            return Ok(false);
                        }
                        let new = value.resize(elem_width);
                        if mem[idx] != new {
                            mem[idx] = new;
                            Ok(true)
                        } else {
                            Ok(false)
                        }
                    }
                    Some(Value::Scalar(b)) => {
                        let _ = is_memory;
                        if idx >= b.width() {
                            return Ok(false);
                        }
                        let old = b.bit(idx);
                        let new = value.bit(0);
                        b.set_bit(idx, new);
                        Ok(old != new)
                    }
                    None => Err(VlogError::Elaborate(format!("no such variable '{}'", name))),
                }
            }
            LValue::Slice(name, hi, lo) => {
                let hi = self.eval_expr(hi, env)?.to_u64() as usize;
                let lo = self.eval_expr(lo, env)?.to_u64() as usize;
                match self.values.get_mut(name) {
                    Some(Value::Scalar(b)) => {
                        let old = b.clone();
                        b.set_slice(hi.max(lo), hi.min(lo), &value);
                        Ok(*b != old)
                    }
                    Some(Value::Memory(_)) => Err(VlogError::Elaborate(format!(
                        "part select on memory '{}' is not supported",
                        name
                    ))),
                    None => Err(VlogError::Elaborate(format!("no such variable '{}'", name))),
                }
            }
            LValue::Concat(parts) => {
                // `{a, b} = rhs` assigns the high bits of rhs to `a`.
                let total: usize = parts.iter().map(|p| self.lvalue_width(p)).sum();
                let value = value.resize(total);
                let mut offset = total;
                let mut changed = false;
                for part in parts {
                    let w = self.lvalue_width(part);
                    offset -= w;
                    let piece = value.slice(offset + w - 1, offset);
                    changed |= self.assign_lvalue_check_changed(part, piece, env)?;
                }
                Ok(changed)
            }
        }
    }

    /// Evaluates an expression without access to the system environment (guards).
    fn eval_expr_pure(&self, expr: &Expr) -> VlogResult<Bits> {
        // Guard expressions are always side-effect free identifiers in practice.
        self.eval_expr_inner(expr, &mut NullEnv)
    }

    /// Evaluates an expression, executing system functions against `env`.
    pub fn eval_expr(&self, expr: &Expr, env: &mut dyn SystemEnv) -> VlogResult<Bits> {
        self.eval_expr_inner(expr, env)
    }

    fn eval_expr_inner(&self, expr: &Expr, env: &mut dyn SystemEnv) -> VlogResult<Bits> {
        match expr {
            Expr::Literal(b) => Ok(b.clone()),
            Expr::StringLit(s) => Ok(string_lit_bits(s)),
            Expr::Ident(name) => match self.values.get(name) {
                Some(v) => Ok(v.as_scalar().clone()),
                None => Err(VlogError::Elaborate(format!("no such variable '{}'", name))),
            },
            Expr::Index(base, idx) => {
                let idx_v = self.eval_expr_inner(idx, env)?.to_u64() as usize;
                if let Expr::Ident(name) = base.as_ref() {
                    if let Some(Value::Memory(mem)) = self.values.get(name) {
                        return Ok(mem
                            .get(idx_v)
                            .cloned()
                            .unwrap_or_else(|| Bits::zero(self.module.width_of_var(name))));
                    }
                }
                let base_v = self.eval_expr_inner(base, env)?;
                Ok(Bits::from_bool(base_v.bit(idx_v)))
            }
            Expr::Slice(base, hi, lo) => {
                let base_v = self.eval_expr_inner(base, env)?;
                let hi = self.eval_expr_inner(hi, env)?.to_u64() as usize;
                let lo = self.eval_expr_inner(lo, env)?.to_u64() as usize;
                Ok(base_v.slice(hi.max(lo), hi.min(lo)))
            }
            Expr::Unary(op, a) => {
                let a = self.eval_expr_inner(a, env)?;
                Ok(match op {
                    UnaryOp::Not => a.not(),
                    UnaryOp::LogicalNot => Bits::from_bool(!a.to_bool()),
                    UnaryOp::Neg => a.neg(),
                    UnaryOp::Plus => a,
                    UnaryOp::ReduceAnd => Bits::from_bool(a.reduce_and()),
                    UnaryOp::ReduceOr => Bits::from_bool(a.reduce_or()),
                    UnaryOp::ReduceXor => Bits::from_bool(a.reduce_xor()),
                })
            }
            Expr::Binary(op, a, b) => {
                let a = self.eval_expr_inner(a, env)?;
                let b = self.eval_expr_inner(b, env)?;
                Ok(apply_binary(*op, &a, &b))
            }
            Expr::Ternary(c, a, b) => {
                if self.eval_expr_inner(c, env)?.to_bool() {
                    self.eval_expr_inner(a, env)
                } else {
                    self.eval_expr_inner(b, env)
                }
            }
            Expr::Concat(parts) => {
                let mut acc: Option<Bits> = None;
                for p in parts {
                    let v = self.eval_expr_inner(p, env)?;
                    acc = Some(match acc {
                        None => v,
                        Some(a) => a.concat(&v),
                    });
                }
                Ok(acc.unwrap_or_default())
            }
            Expr::Replicate(n, e) => {
                let n = self.eval_expr_inner(n, env)?.to_u64() as usize;
                let v = self.eval_expr_inner(e, env)?;
                Ok(v.replicate(n))
            }
            Expr::SystemCall(kind, args) => match kind {
                TaskKind::Fopen => {
                    let path = match args.first() {
                        Some(Expr::StringLit(s)) => s.clone(),
                        _ => String::new(),
                    };
                    Ok(Bits::from_u64(32, env.fopen(&path) as u64))
                }
                TaskKind::Feof => {
                    let fd = match args.first() {
                        Some(e) => self.eval_expr_inner(e, env)?.to_u64() as u32,
                        None => 0,
                    };
                    Ok(Bits::from_bool(env.feof(fd)))
                }
                TaskKind::Time => Ok(Bits::from_u64(64, self.time)),
                TaskKind::Random => Ok(Bits::from_u64(32, env.random() as u64)),
                other => Err(VlogError::Unsupported(format!(
                    "system task {} cannot be used in an expression",
                    other
                ))),
            },
        }
    }
}

/// Applies a binary operator to two values.
pub fn apply_binary(op: BinaryOp, a: &Bits, b: &Bits) -> Bits {
    use std::cmp::Ordering;
    match op {
        BinaryOp::Add => a.add(b),
        BinaryOp::Sub => a.sub(b),
        BinaryOp::Mul => a.mul(b),
        BinaryOp::Div => a.div(b),
        BinaryOp::Rem => a.rem(b),
        BinaryOp::And => a.and(b),
        BinaryOp::Or => a.or(b),
        BinaryOp::Xor => a.xor(b),
        BinaryOp::Shl => a.shl(b.to_u64().min(1 << 20) as usize),
        BinaryOp::Shr => a.shr(b.to_u64().min(1 << 20) as usize),
        BinaryOp::AShr => a.ashr(b.to_u64().min(1 << 20) as usize),
        BinaryOp::LogicalAnd => Bits::from_bool(a.to_bool() && b.to_bool()),
        BinaryOp::LogicalOr => Bits::from_bool(a.to_bool() || b.to_bool()),
        BinaryOp::Eq => Bits::from_bool(a.ucmp(b) == Ordering::Equal),
        BinaryOp::Ne => Bits::from_bool(a.ucmp(b) != Ordering::Equal),
        BinaryOp::Lt => Bits::from_bool(a.ucmp(b) == Ordering::Less),
        BinaryOp::Le => Bits::from_bool(a.ucmp(b) != Ordering::Greater),
        BinaryOp::Gt => Bits::from_bool(a.ucmp(b) == Ordering::Greater),
        BinaryOp::Ge => Bits::from_bool(a.ucmp(b) != Ordering::Less),
    }
}

/// Width of an assignment target, shared with the compiled engine so both
/// engines resolve `$fread`/concat-store widths identically.
pub fn lvalue_width(module: &ElabModule, lv: &LValue) -> usize {
    match lv {
        LValue::Ident(n) => module.width_of_var(n),
        LValue::Index(n, _) => match module.var(n) {
            Some(v) if v.depth.is_some() => v.width,
            _ => 1,
        },
        LValue::Slice(_, hi, lo) => {
            let hi = synergy_vlog::parser::const_eval(hi, &|_| None)
                .map(|b| b.to_u64())
                .unwrap_or(0);
            let lo = synergy_vlog::parser::const_eval(lo, &|_| None)
                .map(|b| b.to_u64())
                .unwrap_or(0);
            (hi.saturating_sub(lo) as usize) + 1
        }
        LValue::Concat(parts) => parts.iter().map(|p| lvalue_width(module, p)).sum(),
    }
}

/// The packed-ASCII value of a string literal used in expression position,
/// shared with the compiled engine.
pub fn string_lit_bits(s: &str) -> Bits {
    let mut b = Bits::zero((s.len() * 8).max(1));
    for (i, byte) in s.bytes().rev().enumerate() {
        for bit in 0..8 {
            b.set_bit(i * 8 + bit, (byte >> bit) & 1 == 1);
        }
    }
    b
}

/// Converts an expression used as a `$fread` target into an lvalue, shared
/// with the compiled engine.
pub fn expr_to_lvalue(expr: &Expr) -> VlogResult<LValue> {
    match expr {
        Expr::Ident(n) => Ok(LValue::Ident(n.clone())),
        Expr::Index(base, idx) => match base.as_ref() {
            Expr::Ident(n) => Ok(LValue::Index(n.clone(), (**idx).clone())),
            _ => Err(VlogError::Unsupported("complex $fread target".into())),
        },
        _ => Err(VlogError::Unsupported(
            "$fread target must be a variable or memory element".into(),
        )),
    }
}

/// The string payload of a system-task argument (empty for non-strings),
/// shared with the compiled engine.
pub fn task_string_arg(arg: Option<&Expr>) -> String {
    match arg {
        Some(Expr::StringLit(s)) => s.clone(),
        _ => String::new(),
    }
}

fn string_arg(arg: Option<&Expr>) -> String {
    task_string_arg(arg)
}

/// Identifiers read by a statement, in first-read order — the `always @*`
/// sensitivity algorithm, shared with the compiled engine so both engines
/// watch exactly the same values.
pub fn stmt_reads(stmt: &Stmt) -> Vec<String> {
    fn visit(stmt: &Stmt, out: &mut Vec<String>) {
        let add_expr = |e: &Expr, out: &mut Vec<String>| {
            for id in e.idents() {
                if !out.iter().any(|x| x == id) {
                    out.push(id.to_string());
                }
            }
        };
        match stmt {
            Stmt::Block(v) | Stmt::Fork(v) => v.iter().for_each(|s| visit(s, out)),
            Stmt::Blocking(a) | Stmt::NonBlocking(a) => add_expr(&a.rhs, out),
            Stmt::If { cond, then, other } => {
                add_expr(cond, out);
                visit(then, out);
                if let Some(e) = other {
                    visit(e, out);
                }
            }
            Stmt::Case {
                expr,
                arms,
                default,
            } => {
                add_expr(expr, out);
                for arm in arms {
                    arm.labels.iter().for_each(|l| add_expr(l, out));
                    visit(&arm.body, out);
                }
                if let Some(d) = default {
                    visit(d, out);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                add_expr(&init.rhs, out);
                add_expr(cond, out);
                add_expr(&step.rhs, out);
                visit(body, out);
            }
            Stmt::Repeat { count, body } => {
                add_expr(count, out);
                visit(body, out);
            }
            Stmt::SystemTask(t) => t.args.iter().for_each(|a| add_expr(a, out)),
            Stmt::Null => {}
        }
    }
    let mut out = Vec::new();
    visit(stmt, &mut out);
    out
}

// The reference interpreter crosses threads inside the hypervisor's parallel
// scheduler (as the fallback software engine of a tenant's `Runtime`), so it
// must stay `Send`: plain owned state, no `Rc`/`RefCell`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Interpreter>();
};
