//! The system-task environment: how unsynthesizable Verilog reaches OS-managed
//! resources.
//!
//! The paper's key point (§3) is that unsynthesizable constructs such as `$display`
//! and file IO become *interfaces to OS-managed resources* once the compiler can
//! yield control at sub-clock-tick granularity. In this reproduction the interpreter
//! and the hardware engine both route those constructs through the [`SystemEnv`]
//! trait; the runtime supplies an implementation backed by in-memory data streams
//! and the hypervisor's IO path.

use std::collections::HashMap;
use synergy_vlog::Bits;

/// Control-flow effects a system task can request from its caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskEffect {
    /// Continue normal execution.
    Continue,
    /// `$finish(code)` was executed.
    Finish(u32),
    /// `$save("tag")` was executed — the caller should capture state.
    Save(String),
    /// `$restart("tag")` was executed — the caller should restore state.
    Restart(String),
    /// `$yield` was executed — the program is at an application-defined
    /// quiescence point (§5.3).
    Yield,
}

/// Host environment for unsynthesizable system tasks.
///
/// Implementations decide where `$display` output goes, what backs file
/// descriptors, and how `$save`/`$restart`/`$yield` are surfaced to the runtime.
pub trait SystemEnv {
    /// Handles `$display`/`$write` output (the newline is already appended for
    /// `$display`).
    fn print(&mut self, text: &str);

    /// Opens a file path and returns a descriptor.
    fn fopen(&mut self, path: &str) -> u32;

    /// Reads the next `width`-bit value from the descriptor. Returns `None` at
    /// end-of-file.
    fn fread(&mut self, fd: u32, width: usize) -> Option<Bits>;

    /// End-of-file predicate for a descriptor.
    fn feof(&mut self, fd: u32) -> bool;

    /// Closes a descriptor.
    fn fclose(&mut self, fd: u32);

    /// Returns a pseudo-random 32-bit value (`$random`).
    fn random(&mut self) -> u32;
}

/// A [`SystemEnv`] backed by in-memory buffers, suitable for tests and for the
/// simulated data-center workloads used in the evaluation.
#[derive(Debug, Default)]
pub struct BufferEnv {
    /// Captured `$display`/`$write` output.
    pub output: Vec<String>,
    files: HashMap<String, Vec<u64>>,
    /// Streams indexed by `fd - 1` (descriptors are handed out
    /// sequentially); `None` marks a closed descriptor. Dense storage keeps
    /// the per-`$fread` cost to an array index on the simulation hot path.
    streams: Vec<Option<FileStream>>,
    next_fd: u32,
    rng_state: u64,
    /// Total number of values served through `$fread`.
    pub reads: u64,
}

#[derive(Debug)]
struct FileStream {
    data: Vec<u64>,
    pos: usize,
    /// Set after a read attempt fails, matching C/Verilog `feof` semantics: the
    /// flag becomes true only once a read has gone past the end.
    eof: bool,
}

/// A serializable image of one open (or closed) `$fopen` stream, part of
/// [`EnvImage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamImage {
    /// The stream's backing data (cloned from the file at `$fopen` time).
    pub data: Vec<u64>,
    /// Read cursor.
    pub pos: u64,
    /// Whether a read has already gone past the end.
    pub eof: bool,
}

/// A complete, serializable image of a [`BufferEnv`]: registered files, open
/// stream positions, captured output, and the RNG state. This is the
/// "tenant environment" section of a durable checkpoint — restoring it (via
/// [`BufferEnv::from_image`]) reproduces every `$fread`/`$feof`/`$random`
/// outcome bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvImage {
    /// Captured `$display`/`$write` output fragments, in emission order.
    pub output: Vec<String>,
    /// Registered files, sorted by path (deterministic encoding).
    pub files: Vec<(String, Vec<u64>)>,
    /// Streams indexed by `fd - 1`; `None` marks a closed descriptor.
    pub streams: Vec<Option<StreamImage>>,
    /// Next descriptor `$fopen` will hand out.
    pub next_fd: u32,
    /// `$random` generator state.
    pub rng_state: u64,
    /// Total values served through `$fread`.
    pub reads: u64,
}

impl BufferEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        BufferEnv {
            next_fd: 1,
            rng_state: 0x9e3779b97f4a7c15,
            ..Default::default()
        }
    }

    /// Registers an in-memory "file" of 64-bit values that `$fopen` can open by
    /// path.
    pub fn add_file(&mut self, path: impl Into<String>, data: Vec<u64>) {
        self.files.insert(path.into(), data);
    }

    /// All captured output joined into one string.
    pub fn output_text(&self) -> String {
        self.output.concat()
    }

    /// Captures the complete environment state for a durable checkpoint.
    pub fn image(&self) -> EnvImage {
        let mut files: Vec<(String, Vec<u64>)> = self
            .files
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        files.sort_by(|a, b| a.0.cmp(&b.0));
        EnvImage {
            output: self.output.clone(),
            files,
            streams: self
                .streams
                .iter()
                .map(|s| {
                    s.as_ref().map(|s| StreamImage {
                        data: s.data.clone(),
                        pos: s.pos as u64,
                        eof: s.eof,
                    })
                })
                .collect(),
            next_fd: self.next_fd,
            rng_state: self.rng_state,
            reads: self.reads,
        }
    }

    /// Reconstructs an environment from a checkpointed image.
    pub fn from_image(image: EnvImage) -> BufferEnv {
        BufferEnv {
            output: image.output,
            files: image.files.into_iter().collect(),
            streams: image
                .streams
                .into_iter()
                .map(|s| {
                    s.map(|s| FileStream {
                        data: s.data,
                        pos: s.pos as usize,
                        eof: s.eof,
                    })
                })
                .collect(),
            next_fd: image.next_fd,
            rng_state: image.rng_state,
            reads: image.reads,
        }
    }
}

impl SystemEnv for BufferEnv {
    fn print(&mut self, text: &str) {
        self.output.push(text.to_string());
    }

    fn fopen(&mut self, path: &str) -> u32 {
        let data = self.files.get(path).cloned().unwrap_or_default();
        let fd = self.next_fd;
        self.next_fd += 1;
        self.streams.push(Some(FileStream {
            data,
            pos: 0,
            eof: false,
        }));
        fd
    }

    fn fread(&mut self, fd: u32, width: usize) -> Option<Bits> {
        let stream = self
            .streams
            .get_mut((fd as usize).wrapping_sub(1))?
            .as_mut()?;
        if stream.pos >= stream.data.len() {
            stream.eof = true;
            return None;
        }
        let v = stream.data[stream.pos];
        stream.pos += 1;
        self.reads += 1;
        Some(Bits::from_u64(width.max(1), v))
    }

    fn feof(&mut self, fd: u32) -> bool {
        match self.streams.get((fd as usize).wrapping_sub(1)) {
            Some(Some(s)) => s.eof,
            _ => true,
        }
    }

    fn fclose(&mut self, fd: u32) {
        if let Some(slot) = self.streams.get_mut((fd as usize).wrapping_sub(1)) {
            *slot = None;
        }
    }

    fn random(&mut self) -> u32 {
        // xorshift64*; deterministic so experiments are reproducible.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fread_walks_registered_file() {
        let mut env = BufferEnv::new();
        env.add_file("data", vec![1, 2, 3]);
        let fd = env.fopen("data");
        assert!(!env.feof(fd));
        assert_eq!(env.fread(fd, 32).unwrap().to_u64(), 1);
        assert_eq!(env.fread(fd, 32).unwrap().to_u64(), 2);
        assert_eq!(env.fread(fd, 32).unwrap().to_u64(), 3);
        // As with C's feof, the flag is only raised once a read fails.
        assert!(!env.feof(fd));
        assert!(env.fread(fd, 32).is_none());
        assert!(env.feof(fd));
        assert_eq!(env.reads, 3);
    }

    #[test]
    fn unknown_path_opens_empty_file() {
        let mut env = BufferEnv::new();
        let fd = env.fopen("missing");
        assert!(env.fread(fd, 32).is_none());
        assert!(env.feof(fd));
    }

    #[test]
    fn random_is_deterministic() {
        let mut a = BufferEnv::new();
        let mut b = BufferEnv::new();
        assert_eq!(a.random(), b.random());
        assert_ne!(a.random(), a.random());
    }

    #[test]
    fn env_image_round_trips_stream_positions_and_rng() {
        let mut env = BufferEnv::new();
        env.add_file("data", vec![1, 2, 3, 4]);
        env.print("hello");
        let fd = env.fopen("data");
        let closed = env.fopen("missing");
        env.fclose(closed);
        env.fread(fd, 32).unwrap();
        env.fread(fd, 32).unwrap();
        env.random();

        let mut restored = BufferEnv::from_image(env.image());
        assert_eq!(restored.image(), env.image(), "image is stable");
        // Both lineages continue identically: same next record, same eof
        // transition, same RNG draws, same fd numbering.
        assert_eq!(
            restored.fread(fd, 32).unwrap().to_u64(),
            env.fread(fd, 32).unwrap().to_u64()
        );
        assert_eq!(restored.random(), env.random());
        assert_eq!(restored.fopen("data"), env.fopen("data"));
        assert_eq!(restored.output_text(), env.output_text());
        assert!(restored.fread(closed, 32).is_none(), "closed stays closed");
    }

    #[test]
    fn print_captures_output() {
        let mut env = BufferEnv::new();
        env.print("hello ");
        env.print("world");
        assert_eq!(env.output_text(), "hello world");
    }
}
