//! # synergy-interp
//!
//! Reference event-driven interpreter for the SYNERGY Verilog subset: the
//! "software engine" of the Cascade/SYNERGY runtime (§2.1 of the paper).
//!
//! The interpreter executes an elaborated design ([`synergy_vlog::elaborate::ElabModule`])
//! with full support for unsynthesizable Verilog: `$display`, file IO, `$finish`,
//! and the SYNERGY extensions `$save`, `$restart`, and `$yield`. System tasks run
//! against a [`SystemEnv`] implementation supplied by the caller, and control-flow
//! effects (save/restart/yield/finish) are surfaced as [`TaskEffect`] values that
//! the runtime consumes.
//!
//! # Example
//!
//! ```
//! use synergy_interp::{BufferEnv, Interpreter};
//! use synergy_vlog::compile;
//!
//! let design = compile(
//!     r#"module Counter(input wire clock, output wire [7:0] out);
//!            reg [7:0] count = 0;
//!            always @(posedge clock) count <= count + 1;
//!            assign out = count;
//!        endmodule"#,
//!     "Counter",
//! )?;
//! let mut interp = Interpreter::new(design);
//! let mut env = BufferEnv::new();
//! for _ in 0..5 {
//!     interp.tick("clock", &mut env)?;
//! }
//! assert_eq!(interp.get_bits("count")?.to_u64(), 5);
//! # Ok::<(), synergy_vlog::VlogError>(())
//! ```

#![warn(missing_docs)]

mod env;
mod interp;
mod value;

pub use env::{BufferEnv, EnvImage, StreamImage, SystemEnv, TaskEffect};
pub use interp::{
    apply_binary, expr_to_lvalue, fault_from_targets, lvalue_width, stmt_reads, string_lit_bits,
    task_string_arg, Interpreter, StateSnapshot,
};
pub use value::Value;

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_vlog::compile;
    use synergy_vlog::Bits;

    fn counter() -> Interpreter {
        let design = compile(
            r#"module Counter(input wire clock, output wire [7:0] out);
                   reg [7:0] count = 0;
                   always @(posedge clock) count <= count + 1;
                   assign out = count;
               endmodule"#,
            "Counter",
        )
        .unwrap();
        Interpreter::new(design)
    }

    #[test]
    fn counter_counts_clock_edges() {
        let mut interp = counter();
        let mut env = BufferEnv::new();
        for _ in 0..10 {
            interp.tick("clock", &mut env).unwrap();
        }
        assert_eq!(interp.get_bits("count").unwrap().to_u64(), 10);
        assert_eq!(interp.get_bits("out").unwrap().to_u64(), 10);
        assert_eq!(interp.time(), 10);
    }

    #[test]
    fn counter_wraps_at_width() {
        let mut interp = counter();
        let mut env = BufferEnv::new();
        for _ in 0..260 {
            interp.tick("clock", &mut env).unwrap();
        }
        assert_eq!(interp.get_bits("count").unwrap().to_u64(), 4);
    }

    #[test]
    fn blocking_vs_nonblocking_semantics() {
        // Mirrors the discussion of Figure 1 in the paper: a blocking write is
        // visible immediately, a non-blocking write only after the update step.
        let design = compile(
            r#"module M(input wire clock, output wire [7:0] observed);
                   reg [7:0] a = 0;
                   reg [7:0] b = 0;
                   reg [7:0] seen_mid = 0;
                   always @(posedge clock) begin
                       a = 8'd7;
                       seen_mid = a + b;
                       b <= 8'd3;
                   end
                   assign observed = seen_mid;
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        interp.tick("clock", &mut env).unwrap();
        // First tick: a=7 visible immediately, b still 0 when seen_mid computed.
        assert_eq!(interp.get_bits("seen_mid").unwrap().to_u64(), 7);
        assert_eq!(interp.get_bits("b").unwrap().to_u64(), 3);
        interp.tick("clock", &mut env).unwrap();
        // Second tick: b's non-blocking value from tick 1 is now visible.
        assert_eq!(interp.get_bits("seen_mid").unwrap().to_u64(), 10);
    }

    #[test]
    fn figure_one_nonblocking_ordering() {
        // The `r` register from Figure 1: blocking write of y (=2) is visible at
        // once, the non-blocking 3 appears only on the next tick's read.
        let design = compile(
            r#"module M(input wire clock);
                   wire [31:0] x = 1;
                   wire [31:0] y = x + 1;
                   reg [63:0] r = 0;
                   reg [63:0] first = 0;
                   always @(posedge clock) begin
                       first = r;
                       r = y;
                       r <= 3;
                   end
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        interp.tick("clock", &mut env).unwrap();
        assert_eq!(interp.get_bits("first").unwrap().to_u64(), 0);
        assert_eq!(interp.get_bits("r").unwrap().to_u64(), 3);
        interp.tick("clock", &mut env).unwrap();
        // On the second tick the value read at the top of the block is 3.
        assert_eq!(interp.get_bits("first").unwrap().to_u64(), 3);
    }

    #[test]
    fn continuous_assign_chains_propagate() {
        let design = compile(
            r#"module M(input wire [7:0] a, output wire [7:0] d);
                   wire [7:0] b = a + 1;
                   wire [7:0] c = b * 2;
                   assign d = c - 1;
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        interp.set("a", Bits::from_u64(8, 5)).unwrap();
        interp.settle(&mut env).unwrap();
        assert_eq!(interp.get_bits("d").unwrap().to_u64(), 11);
    }

    #[test]
    fn file_io_sum_program_runs_to_completion() {
        // Figure 2 of the paper: sum the values in a file, print, finish.
        let design = compile(
            r#"module M(input wire clock);
                   integer fd = $fopen("data.bin");
                   reg [31:0] r = 0;
                   reg [127:0] sum = 0;
                   always @(posedge clock) begin
                       $fread(fd, r);
                       if ($feof(fd)) begin
                           $display(sum);
                           $finish(0);
                       end else
                           sum <= sum + r;
                   end
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        env.add_file("data.bin", vec![10, 20, 30, 40]);
        let mut ticks = 0;
        while interp.finished().is_none() && ticks < 100 {
            interp.tick("clock", &mut env).unwrap();
            ticks += 1;
        }
        assert_eq!(interp.finished(), Some(0));
        assert_eq!(interp.get_bits("sum").unwrap().to_u64(), 100);
        assert!(env.output_text().contains("100"));
    }

    #[test]
    fn display_effects_are_captured() {
        let design = compile(
            r#"module M(input wire clock);
                   reg [7:0] n = 41;
                   always @(posedge clock) begin
                       n = n + 1;
                       $display("n=", n);
                   end
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        interp.tick("clock", &mut env).unwrap();
        assert_eq!(env.output_text(), "n=42\n");
    }

    #[test]
    fn save_and_restart_effects_surface() {
        let design = compile(
            r#"module M(input wire clock, input wire do_save);
                   reg [31:0] n = 0;
                   always @(posedge clock) begin
                       n <= n + 1;
                       if (do_save) $save("checkpoint");
                   end
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        interp.tick("clock", &mut env).unwrap();
        assert!(interp.take_effects().is_empty());
        interp.set("do_save", Bits::from_u64(1, 1)).unwrap();
        interp.tick("clock", &mut env).unwrap();
        let effects = interp.take_effects();
        assert_eq!(effects, vec![TaskEffect::Save("checkpoint".into())]);
    }

    #[test]
    fn state_snapshot_round_trips() {
        let mut interp = counter();
        let mut env = BufferEnv::new();
        for _ in 0..7 {
            interp.tick("clock", &mut env).unwrap();
        }
        let snapshot = interp.save_state();
        assert_eq!(snapshot.values["count"].as_scalar().to_u64(), 7);
        assert!(snapshot.total_bits() >= 8);

        // Restore into a fresh instance and continue: counts resume from 7.
        let mut fresh = counter();
        fresh.restore_state(&snapshot);
        for _ in 0..3 {
            fresh.tick("clock", &mut env).unwrap();
        }
        assert_eq!(fresh.get_bits("count").unwrap().to_u64(), 10);
    }

    #[test]
    fn memories_read_and_write() {
        let design = compile(
            r#"module M(input wire clock, input wire [3:0] addr, input wire [7:0] din,
                        input wire we, output wire [7:0] dout);
                   reg [7:0] mem [0:15];
                   always @(posedge clock) if (we) mem[addr] <= din;
                   assign dout = mem[addr];
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        interp.set("addr", Bits::from_u64(4, 3)).unwrap();
        interp.set("din", Bits::from_u64(8, 0xab)).unwrap();
        interp.set("we", Bits::from_u64(1, 1)).unwrap();
        interp.tick("clock", &mut env).unwrap();
        interp.set("we", Bits::from_u64(1, 0)).unwrap();
        interp.settle(&mut env).unwrap();
        assert_eq!(interp.get_bits("dout").unwrap().to_u64(), 0xab);
    }

    #[test]
    fn case_statement_state_machine() {
        let design = compile(
            r#"module M(input wire clock, output wire [1:0] out);
                   reg [1:0] s = 0;
                   always @(posedge clock)
                       case (s)
                           0: s <= 1;
                           1: s <= 2;
                           2: s <= 0;
                           default: s <= 0;
                       endcase
                   assign out = s;
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        let mut seen = Vec::new();
        for _ in 0..6 {
            interp.tick("clock", &mut env).unwrap();
            seen.push(interp.get_bits("s").unwrap().to_u64());
        }
        assert_eq!(seen, vec![1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn for_loops_execute_in_one_tick() {
        let design = compile(
            r#"module M(input wire clock, output wire [31:0] total);
                   reg [7:0] mem [0:7];
                   reg [31:0] sum = 0;
                   integer i = 0;
                   reg [0:0] primed = 0;
                   always @(posedge clock) begin
                       if (!primed) begin
                           for (i = 0; i < 8; i = i + 1)
                               mem[i] = i * 2;
                           primed = 1;
                       end else begin
                           sum = 0;
                           for (i = 0; i < 8; i = i + 1)
                               sum = sum + mem[i];
                       end
                   end
                   assign total = sum;
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        interp.tick("clock", &mut env).unwrap();
        interp.tick("clock", &mut env).unwrap();
        assert_eq!(interp.get_bits("total").unwrap().to_u64(), 56);
    }

    #[test]
    fn fork_join_executes_all_branches() {
        let design = compile(
            r#"module M(input wire clock);
                   reg [7:0] a = 0;
                   reg [7:0] b = 0;
                   always @(posedge clock) fork
                       a <= a + 1;
                       b <= b + 2;
                   join
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        interp.tick("clock", &mut env).unwrap();
        assert_eq!(interp.get_bits("a").unwrap().to_u64(), 1);
        assert_eq!(interp.get_bits("b").unwrap().to_u64(), 2);
    }

    #[test]
    fn always_star_reacts_to_input_changes() {
        let design = compile(
            r#"module M(input wire [7:0] a, input wire [7:0] b, output wire [7:0] biggest);
                   reg [7:0] m = 0;
                   always @* begin
                       if (a > b) m = a; else m = b;
                   end
                   assign biggest = m;
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        interp.set("a", Bits::from_u64(8, 9)).unwrap();
        interp.set("b", Bits::from_u64(8, 4)).unwrap();
        interp.settle(&mut env).unwrap();
        assert_eq!(interp.get_bits("biggest").unwrap().to_u64(), 9);
        interp.set("b", Bits::from_u64(8, 200)).unwrap();
        interp.settle(&mut env).unwrap();
        assert_eq!(interp.get_bits("biggest").unwrap().to_u64(), 200);
    }

    #[test]
    fn negedge_blocks_fire_on_falling_edge() {
        let design = compile(
            r#"module M(input wire clock);
                   reg [7:0] rises = 0;
                   reg [7:0] falls = 0;
                   always @(posedge clock) rises <= rises + 1;
                   always @(negedge clock) falls <= falls + 1;
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        for _ in 0..4 {
            interp.tick("clock", &mut env).unwrap();
        }
        assert_eq!(interp.get_bits("rises").unwrap().to_u64(), 4);
        assert_eq!(interp.get_bits("falls").unwrap().to_u64(), 4);
    }

    #[test]
    fn finish_stops_execution() {
        let design = compile(
            r#"module M(input wire clock);
                   reg [7:0] n = 0;
                   always @(posedge clock) begin
                       n <= n + 1;
                       if (n == 3) $finish(7);
                   end
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        for _ in 0..10 {
            interp.tick("clock", &mut env).unwrap();
            if interp.finished().is_some() {
                break;
            }
        }
        assert_eq!(interp.finished(), Some(7));
        // n stopped advancing once $finish executed.
        assert!(interp.get_bits("n").unwrap().to_u64() <= 4);
    }

    #[test]
    fn undeclared_variable_errors() {
        let mut interp = counter();
        assert!(interp.get_bits("nope").is_err());
        assert!(interp.set("nope", Bits::from_u64(1, 0)).is_err());
    }

    #[test]
    fn concat_lvalue_assignment() {
        let design = compile(
            r#"module M(input wire clock, input wire [15:0] in);
                   reg [7:0] hi = 0;
                   reg [7:0] lo = 0;
                   always @(posedge clock) {hi, lo} = in;
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        interp.set("in", Bits::from_u64(16, 0xa55a)).unwrap();
        interp.tick("clock", &mut env).unwrap();
        assert_eq!(interp.get_bits("hi").unwrap().to_u64(), 0xa5);
        assert_eq!(interp.get_bits("lo").unwrap().to_u64(), 0x5a);
    }

    #[test]
    fn random_and_time_functions() {
        let design = compile(
            r#"module M(input wire clock);
                   reg [31:0] r = 0;
                   reg [63:0] t = 0;
                   always @(posedge clock) begin
                       r <= $random;
                       t <= $time;
                   end
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design);
        let mut env = BufferEnv::new();
        interp.tick("clock", &mut env).unwrap();
        interp.tick("clock", &mut env).unwrap();
        assert!(interp.get_bits("r").unwrap().to_u64() != 0);
        assert_eq!(interp.get_bits("t").unwrap().to_u64(), 1);
    }
}
