//! Runtime values held by the interpreter: scalars and 1-D memories.

use serde::{Deserialize, Serialize};
use synergy_vlog::Bits;

/// A runtime value: either a scalar packed vector or a 1-D memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A scalar variable of fixed width.
    Scalar(Bits),
    /// A memory of `depth` elements, each of the element width.
    Memory(Vec<Bits>),
}

impl Value {
    /// Creates a zeroed scalar of the given width.
    pub fn scalar(width: usize) -> Value {
        Value::Scalar(Bits::zero(width))
    }

    /// Creates a zeroed memory of `depth` elements of `width` bits.
    pub fn memory(width: usize, depth: usize) -> Value {
        Value::Memory(vec![Bits::zero(width); depth])
    }

    /// Reads the scalar value; memory values read as their element 0 (used only by
    /// diagnostics — memories are normally read through an index). A
    /// zero-depth memory reads as a 1-bit zero instead of panicking, so a
    /// malformed tenant can't take down a diagnostic path in the hypervisor.
    pub fn as_scalar(&self) -> &Bits {
        static EMPTY: std::sync::OnceLock<Bits> = std::sync::OnceLock::new();
        match self {
            Value::Scalar(b) => b,
            Value::Memory(v) => match v.first() {
                Some(b) => b,
                None => EMPTY.get_or_init(|| Bits::zero(1)),
            },
        }
    }

    /// Total number of bits of state held by this value.
    pub fn state_bits(&self) -> usize {
        match self {
            Value::Scalar(b) => b.width(),
            Value::Memory(v) => v.iter().map(|b| b.width()).sum(),
        }
    }

    /// Serialises the value into a flat word vector (used by `$save`).
    pub fn to_words(&self) -> Vec<u64> {
        match self {
            Value::Scalar(b) => b.words().to_vec(),
            Value::Memory(v) => v.iter().flat_map(|b| b.words().iter().copied()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_state_bits() {
        assert_eq!(Value::scalar(17).state_bits(), 17);
    }

    #[test]
    fn memory_state_bits() {
        assert_eq!(Value::memory(8, 16).state_bits(), 128);
    }

    #[test]
    fn to_words_flattens_memory() {
        let v = Value::memory(8, 4);
        assert_eq!(v.to_words().len(), 4);
    }

    #[test]
    fn as_scalar_on_zero_depth_memory_reads_safe_zero() {
        // Regression pin: `&v[0]` used to panic on an empty memory; the
        // diagnostic read must return a defined value instead.
        let v = Value::Memory(Vec::new());
        assert_eq!(*v.as_scalar(), Bits::zero(1));
        assert_eq!(v.state_bits(), 0);
        // Non-empty memories still read element 0.
        let v = Value::Memory(vec![Bits::from_u64(8, 42)]);
        assert_eq!(v.as_scalar().to_u64(), 42);
    }
}
