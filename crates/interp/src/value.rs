//! Runtime values held by the interpreter: scalars and 1-D memories.

use serde::{Deserialize, Serialize};
use synergy_vlog::Bits;

/// A runtime value: either a scalar packed vector or a 1-D memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A scalar variable of fixed width.
    Scalar(Bits),
    /// A memory of `depth` elements, each of the element width.
    Memory(Vec<Bits>),
}

impl Value {
    /// Creates a zeroed scalar of the given width.
    pub fn scalar(width: usize) -> Value {
        Value::Scalar(Bits::zero(width))
    }

    /// Creates a zeroed memory of `depth` elements of `width` bits.
    pub fn memory(width: usize, depth: usize) -> Value {
        Value::Memory(vec![Bits::zero(width); depth])
    }

    /// Reads the scalar value; memory values read as their element 0 (used only by
    /// diagnostics — memories are normally read through an index).
    pub fn as_scalar(&self) -> &Bits {
        match self {
            Value::Scalar(b) => b,
            Value::Memory(v) => &v[0],
        }
    }

    /// Total number of bits of state held by this value.
    pub fn state_bits(&self) -> usize {
        match self {
            Value::Scalar(b) => b.width(),
            Value::Memory(v) => v.iter().map(|b| b.width()).sum(),
        }
    }

    /// Serialises the value into a flat word vector (used by `$save`).
    pub fn to_words(&self) -> Vec<u64> {
        match self {
            Value::Scalar(b) => b.words().to_vec(),
            Value::Memory(v) => v.iter().flat_map(|b| b.words().iter().copied()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_state_bits() {
        assert_eq!(Value::scalar(17).state_bits(), 17);
    }

    #[test]
    fn memory_state_bits() {
        assert_eq!(Value::memory(8, 16).state_bits(), 128);
    }

    #[test]
    fn to_words_flattens_memory() {
        let v = Value::memory(8, 4);
        assert_eq!(v.to_words().len(), 4);
    }
}
