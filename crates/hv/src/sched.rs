//! Parallel round scheduling for the hypervisor.
//!
//! The compiled software engine made each tenant's hot path an order of
//! magnitude faster (see `BENCH_interp_vs_compiled.json`); the next order of
//! magnitude for *aggregate* throughput comes from executing independent
//! tenants' rounds concurrently. This module provides the two pieces the
//! hypervisor needs for that:
//!
//! * [`WorkerPool`] — a persistent pool of `std::thread` workers with
//!   per-worker job deques and work stealing (crossbeam-style, implemented
//!   in-tree on `std::sync` since the build container is offline). Round
//!   jobs *own* their tenant's [`synergy_runtime::Runtime`] for the duration
//!   of the round — the execution stack is `Send` end-to-end — so no borrows
//!   cross threads and no `unsafe` is needed. Results are joined
//!   deterministically: the hypervisor reinstalls runtimes and reports stats
//!   in stable tenant order regardless of completion order, which is what
//!   keeps parallel rounds bit-identical to sequential ones.
//!
//! * [`DeficitRoundRobin`] — the fairness layer that assigns each tenant a
//!   per-round *tick budget*. IO-bound tenants typically consume only a
//!   fraction of their budget (they are bound by simulated transport time,
//!   not host ticks); the unspent deficit carries over (bounded) so they can
//!   burst later, while compute-bound tenants can never exceed their own
//!   budget to crowd the round. Budgets are computed *before* dispatch, in
//!   tenant order, so the sequential and parallel paths see identical
//!   schedules.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How the hypervisor executes the tenants of one scheduling round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Tick every tenant on the calling thread, in tenant order (the
    /// drop-in-compatible default).
    #[default]
    Sequential,
    /// Execute independent tenants' rounds concurrently on a persistent
    /// work-stealing worker pool. Results are joined in stable tenant order,
    /// so stats, events, and state snapshots are bit-identical to
    /// [`SchedPolicy::Sequential`].
    Parallel {
        /// Number of worker threads (clamped to at least 1).
        workers: usize,
    },
}

impl SchedPolicy {
    /// Worker count this policy asks for (1 for `Sequential`).
    pub fn workers(&self) -> usize {
        match self {
            SchedPolicy::Sequential => 1,
            SchedPolicy::Parallel { workers } => (*workers).max(1),
        }
    }
}

// ---------------------------------------------------------------- worker pool

/// A job shipped to the pool: owns everything it needs, returns nothing
/// (results travel back through the batch's channel).
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    /// One deque per worker. Owners push/pop at the back (LIFO keeps caches
    /// warm); thieves steal from the front (FIFO takes the oldest, largest
    /// remaining work first).
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Unclaimed-job count, guarded by the condvar's mutex so wakeups cannot
    /// be lost: submitters increment it *after* pushing (deque pushes
    /// happen-before the increment via the lock), workers block on the
    /// condvar until they can claim one. A successful claim guarantees some
    /// deque holds a job (claims never exceed pushes, and only claimants
    /// pop), so idle workers park indefinitely at zero cost.
    unclaimed: Mutex<usize>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    /// Telemetry: jobs executed, successful steals, and condvar park
    /// transitions since pool creation.
    executed: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
}

/// Snapshot of pool telemetry (used by the scaling benchmark and tests).
///
/// All three counters are host-scheduling artifacts — how work happened to
/// land on threads this run — so they belong in the *non-deterministic*
/// telemetry namespace (see `Hypervisor::metrics`), never in round stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Jobs executed since the pool was created.
    pub executed: u64,
    /// Jobs that ran on a worker other than the one they were submitted to.
    pub steals: u64,
    /// Times a worker parked on the condvar waiting for work (one
    /// park/unpark transition per increment, not per spurious wakeup).
    pub parks: u64,
}

/// A persistent work-stealing thread pool for round jobs.
///
/// Workers park on a condvar when every deque is empty, so an idle pool
/// costs nothing between rounds. Dropping the pool shuts the workers down.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (at least 1) persistent worker threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            unclaimed: Mutex::new(0),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("synergy-hv-worker-{}", id))
                    .spawn(move || worker_loop(id, &shared))
                    .expect("spawn hypervisor worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// Pool telemetry counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed: self.shared.executed.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
        }
    }

    /// Runs a batch of independent jobs to completion and returns their
    /// outcomes **in submission order**, regardless of which worker finished
    /// which job when. Each outcome carries the host nanoseconds the job
    /// spent executing (used by the scaling benchmark's critical-path
    /// model).
    ///
    /// A panicking job does not kill its worker, wedge the pool, or discard
    /// its siblings' results: the unwind is caught on the worker and
    /// returned as that job's `Err` outcome, so the caller can salvage every
    /// completed job before deciding whether to re-raise.
    pub fn run_batch<T, F>(&self, jobs: Vec<F>) -> Vec<(std::thread::Result<T>, u64)>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>, u64)>();
        for (idx, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            let wrapped: Job = Box::new(move || {
                let start = std::time::Instant::now();
                // The job owns all its data, so unwind safety reduces to
                // "the caller treats an Err outcome as poisoned".
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                let busy = start.elapsed().as_nanos() as u64;
                // The receiver outlives the batch; the send only fails if
                // the caller vanished (it cannot: we join below).
                let _ = tx.send((idx, out, busy));
            });
            // Round-robin initial placement; stealing rebalances from there.
            self.shared.deques[idx % self.shared.deques.len()]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(wrapped);
        }
        drop(tx);
        // Publish the jobs under the condvar mutex *after* the pushes, so a
        // worker that claims is guaranteed to find a job in some deque.
        {
            let mut unclaimed = self
                .shared
                .unclaimed
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *unclaimed += n;
            self.shared.work_ready.notify_all();
        }

        let mut slots: Vec<Option<(std::thread::Result<T>, u64)>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, out, busy) = rx.recv().expect("worker delivered a result");
            slots[idx] = Some((out, busy));
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job reported"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Flag under the condvar mutex so no worker can park between the
        // store and the notification.
        {
            let _guard = self
                .shared
                .unclaimed
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(id: usize, shared: &PoolShared) {
    loop {
        // Claim one job (or learn of shutdown) under the condvar mutex;
        // parking is untimed because submitters notify under the same lock.
        {
            let mut unclaimed = shared.unclaimed.lock().unwrap_or_else(|e| e.into_inner());
            let mut parked = false;
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if *unclaimed > 0 {
                    *unclaimed -= 1;
                    break;
                }
                if !parked {
                    parked = true;
                    shared.parks.fetch_add(1, Ordering::Relaxed);
                }
                unclaimed = shared
                    .work_ready
                    .wait(unclaimed)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        // The claim guarantees a job is resident in some deque (claims never
        // exceed pushes and only claimants pop); the yield covers the sliver
        // where a sibling claimant holds a deque lock mid-pop.
        let (job, stolen) = loop {
            match find_job(id, shared) {
                Some(found) => break found,
                None => std::thread::yield_now(),
            }
        };
        if stolen {
            shared.steals.fetch_add(1, Ordering::Relaxed);
        }
        // Count before running: the job's result send is what completes
        // the batch, so incrementing first keeps the counter ahead of
        // any observer that joined on those results.
        shared.executed.fetch_add(1, Ordering::Relaxed);
        job();
    }
}

/// Pops from the worker's own deque, else steals from a sibling. Returns the
/// job and whether it was stolen.
fn find_job(id: usize, shared: &PoolShared) -> Option<(Job, bool)> {
    if let Some(job) = shared.deques[id]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_back()
    {
        return Some((job, false));
    }
    let n = shared.deques.len();
    for off in 1..n {
        let victim = (id + off) % n;
        if let Some(job) = shared.deques[victim]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some((job, true));
        }
    }
    None
}

// ------------------------------------------------------- deficit round robin

/// Upper bound on accumulated deficit, in quanta: an idle or descheduled
/// tenant can burst at most this many rounds' worth of ticks when it wakes,
/// so a long-idle tenant cannot monopolise a round.
const MAX_BURST_QUANTA: u64 = 4;

/// Deficit-round-robin tick budgeting (fairness layer of the scheduler).
///
/// Each runnable tenant receives one quantum of ticks per round (the
/// hypervisor's round tick cap). Ticks it does not consume — IO-bound
/// tenants spend their round waiting on simulated transport, not ticking —
/// accumulate as *deficit*, bounded at `MAX_BURST_QUANTA` (4) quanta, and
/// are added to later budgets. Compute-bound tenants always exhaust their budget, so
/// their deficit stays at zero and they can never squeeze an IO-bound
/// tenant's share; conversely a starved IO-bound tenant wakes up with a
/// bounded burst allowance instead of a single quantum.
#[derive(Debug, Default, Clone)]
pub struct DeficitRoundRobin {
    deficits: std::collections::BTreeMap<u64, u64>,
}

impl DeficitRoundRobin {
    /// Creates an empty scheduler state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants this round's quantum to a runnable tenant and returns its tick
    /// budget (carried deficit + quantum, capped at the burst bound).
    pub fn grant(&mut self, app: u64, quantum: u64) -> u64 {
        let quantum = quantum.max(1);
        let deficit = self.deficits.entry(app).or_insert(0);
        *deficit = (*deficit + quantum).min(quantum.saturating_mul(MAX_BURST_QUANTA));
        *deficit
    }

    /// Charges the ticks a tenant actually executed against its deficit.
    pub fn charge(&mut self, app: u64, ticks: u64) {
        if let Some(deficit) = self.deficits.get_mut(&app) {
            *deficit = deficit.saturating_sub(ticks);
        }
    }

    /// Forgets a tenant (on disconnect).
    pub fn forget(&mut self, app: u64) {
        self.deficits.remove(&app);
    }

    /// Current deficit of a tenant (unspent tick allowance).
    pub fn deficit(&self, app: u64) -> u64 {
        self.deficits.get(&app).copied().unwrap_or(0)
    }

    /// All `(app, deficit)` entries in app order (fleet checkpointing).
    pub fn entries(&self) -> Vec<(u64, u64)> {
        self.deficits.iter().map(|(&a, &d)| (a, d)).collect()
    }

    /// Replaces the scheduler state wholesale (fleet restore).
    pub fn restore_entries(&mut self, entries: impl IntoIterator<Item = (u64, u64)>) {
        self.deficits = entries.into_iter().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<_> = (0..64u64)
            .map(|i| {
                move || {
                    // Vary the work so completion order scrambles.
                    let mut acc = i;
                    for _ in 0..(i % 7) * 1000 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    (i, acc)
                }
            })
            .collect();
        let results = pool.run_batch(jobs);
        assert_eq!(results.len(), 64);
        for (idx, (out, _busy)) in results.into_iter().enumerate() {
            let Ok((i, _)) = out else {
                panic!("job {} failed", idx)
            };
            assert_eq!(i, idx as u64, "result order is submission order");
        }
        assert_eq!(pool.stats().executed, 64);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..10u64 {
            let results = pool.run_batch((0..8).map(|i| move || round * 8 + i).collect::<Vec<_>>());
            for (i, (v, _)) in results.into_iter().enumerate() {
                assert_eq!(v.ok(), Some(round * 8 + i as u64));
            }
        }
        assert_eq!(pool.stats().executed, 80);
    }

    #[test]
    fn stealing_rebalances_skewed_submission() {
        // Maximally skewed submission: single-job batches always land on
        // deque 0, but any of the 4 workers can claim them — every claim by
        // workers 1..3 is a steal. Over 64 batches the claimant winning the
        // race is worker 0 every single time only with vanishing
        // probability, so the steal path must fire.
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let c = Arc::clone(&counter);
            pool.run_batch(vec![move || {
                c.fetch_add(1, Ordering::SeqCst);
            }]);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        let stats = pool.stats();
        assert_eq!(stats.executed, 64);
        assert!(
            stats.steals > 0,
            "steals must rebalance jobs submitted to one deque"
        );
    }

    #[test]
    fn panicking_job_is_an_err_outcome_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let mut results = pool.run_batch(vec![
            Box::new(|| 1u64) as Box<dyn FnOnce() -> u64 + Send>,
            Box::new(|| panic!("tenant bug")),
        ]);
        assert_eq!(results.len(), 2, "siblings' results are not discarded");
        assert_eq!(results.remove(0).0.ok(), Some(1), "healthy job succeeded");
        assert!(
            results.remove(0).0.is_err(),
            "panic returned as Err outcome"
        );
        // The worker threads survived the unwind: the pool still works.
        let results = pool.run_batch(vec![
            Box::new(|| 7u64) as Box<dyn FnOnce() -> u64 + Send>,
            Box::new(|| 8u64),
        ]);
        assert_eq!(results[0].0.as_ref().ok(), Some(&7));
        assert_eq!(results[1].0.as_ref().ok(), Some(&8));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(2);
        let results: Vec<(std::thread::Result<u32>, u64)> =
            pool.run_batch(Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn drr_carries_unspent_budget_bounded() {
        let mut drr = DeficitRoundRobin::new();
        // Compute-bound: consumes everything, budget stays one quantum.
        assert_eq!(drr.grant(1, 100), 100);
        drr.charge(1, 100);
        assert_eq!(drr.grant(1, 100), 100);
        drr.charge(1, 100);
        assert_eq!(drr.deficit(1), 0);

        // IO-bound: consumes a sliver, deficit carries...
        assert_eq!(drr.grant(2, 100), 100);
        drr.charge(2, 5);
        assert_eq!(drr.grant(2, 100), 195);
        drr.charge(2, 5);
        // ...but is capped at MAX_BURST_QUANTA rounds' worth.
        for _ in 0..10 {
            drr.grant(2, 100);
            drr.charge(2, 0);
        }
        assert_eq!(drr.deficit(2), 400);
        assert_eq!(drr.grant(2, 100), 400);

        drr.forget(2);
        assert_eq!(drr.deficit(2), 0);
    }

    #[test]
    fn sched_policy_default_is_sequential() {
        assert_eq!(SchedPolicy::default(), SchedPolicy::Sequential);
        assert_eq!(SchedPolicy::Sequential.workers(), 1);
        assert_eq!(SchedPolicy::Parallel { workers: 0 }.workers(), 1);
        assert_eq!(SchedPolicy::Parallel { workers: 8 }.workers(), 8);
    }
}
