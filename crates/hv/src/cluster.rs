//! Multi-device clusters and cross-device workload migration.
//!
//! The paper's evaluation spans a cluster of DE10 SoCs and F1 cloud instances
//! (§6.1): programs are suspended on one node and resumed on another, without
//! exposing the architectural differences between the platforms. A [`Cluster`]
//! holds one [`Hypervisor`] per node (all sharing a bitstream cache) and provides
//! the migration primitive used by Figures 9 and 10. It also demonstrates the
//! nesting property of §4.1: a hypervisor whose device is full can delegate a
//! deployment to another node.

use crate::hypervisor::{AppId, DeployOutcome, HvError, Hypervisor};
use crate::sched::SchedPolicy;
use serde::{Deserialize, Serialize};
use synergy_amorphos::DomainId;
use synergy_fpga::{BitstreamCache, Device};
use synergy_runtime::{CompiledTier, EnginePolicy, OptLevel, Runtime};
use synergy_telemetry::{Namespace, Registry};

/// Identifies a node (one device + hypervisor) within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A cluster of hypervisor-managed devices sharing one compilation cache.
pub struct Cluster {
    nodes: Vec<Hypervisor>,
    cache: BitstreamCache,
    policy: EnginePolicy,
    tier: Option<CompiledTier>,
    opt_level: Option<OptLevel>,
    sched: SchedPolicy,
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new()
    }
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Cluster {
            nodes: Vec::new(),
            cache: BitstreamCache::new(),
            policy: EnginePolicy::Interpreter,
            tier: None,
            opt_level: None,
            sched: SchedPolicy::Sequential,
        }
    }

    /// Adds a node managing the given device.
    pub fn add_node(&mut self, device: Device) -> NodeId {
        let mut hv = Hypervisor::with_cache(device, self.cache.clone());
        hv.set_engine_policy(self.policy);
        if let Some(tier) = self.tier {
            hv.set_compiled_tier(tier);
        }
        if let Some(level) = self.opt_level {
            hv.set_opt_level(level);
        }
        hv.set_sched_policy(self.sched);
        self.nodes.push(hv);
        NodeId(self.nodes.len() - 1)
    }

    /// Selects the compiled-engine tier on every current and future node
    /// (see [`Hypervisor::set_compiled_tier`]).
    pub fn set_compiled_tier(&mut self, tier: CompiledTier) {
        self.tier = Some(tier);
        for node in &mut self.nodes {
            node.set_compiled_tier(tier);
        }
    }

    /// Selects the netlist optimization level on every current and future
    /// node (see [`Hypervisor::set_opt_level`]).
    pub fn set_opt_level(&mut self, level: OptLevel) {
        self.opt_level = Some(level);
        for node in &mut self.nodes {
            node.set_opt_level(level);
        }
    }

    /// Sets the software-engine selection policy on every current and future
    /// node (see [`Hypervisor::set_engine_policy`]).
    pub fn set_engine_policy(&mut self, policy: EnginePolicy) {
        self.policy = policy;
        for node in &mut self.nodes {
            node.set_engine_policy(policy);
        }
    }

    /// Sets the round-scheduling policy on every current and future node
    /// (see [`Hypervisor::set_sched_policy`]).
    pub fn set_sched_policy(&mut self, sched: SchedPolicy) {
        self.sched = sched;
        for node in &mut self.nodes {
            node.set_sched_policy(sched);
        }
    }

    /// Number of nodes in the cluster.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The shared bitstream cache.
    pub fn cache(&self) -> &BitstreamCache {
        &self.cache
    }

    /// Access to a node's hypervisor.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn node(&self, id: NodeId) -> &Hypervisor {
        &self.nodes[id.0]
    }

    /// Mutable access to a node's hypervisor.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Hypervisor {
        &mut self.nodes[id.0]
    }

    /// A fleet-wide metrics snapshot: every node's [`Hypervisor::metrics`]
    /// registry merged under a `node=<index>` label. The deterministic
    /// namespace inherits the per-node contract — bit-identical across
    /// scheduling policies for the same fleet and rounds.
    pub fn metrics(&self) -> Registry {
        let mut out = Registry::default();
        for (idx, node) in self.nodes.iter().enumerate() {
            out.merge_labeled(&node.metrics(), "node", &idx.to_string());
        }
        out
    }

    /// Migrates a running application from one node to another *in process*:
    /// the source node suspends it (state capture through `$save`-style get
    /// requests), the target node deploys the same program and restores the
    /// captured state, and execution continues there (the Figure 9 /
    /// Figure 10 flow).
    ///
    /// This is the in-memory reference path; production migration is
    /// [`Cluster::live_migrate`], which moves the tenant through the durable
    /// checkpoint wire format instead of handing the `Runtime` object across
    /// — the differential suite asserts the two are bit-identical.
    ///
    /// Returns the application's id on the target node together with the target's
    /// deployment outcome.
    ///
    /// # Errors
    ///
    /// Returns an error if the application is unknown on the source node or the
    /// target cannot deploy it.
    pub fn migrate(
        &mut self,
        from: NodeId,
        app: AppId,
        to: NodeId,
        domain: DomainId,
        io_bound: bool,
    ) -> Result<(AppId, DeployOutcome), HvError> {
        let runtime: Runtime = self.node_mut(from).disconnect(app)?;
        let target = self.node_mut(to);
        let new_id = target.connect(runtime, domain, io_bound);
        let outcome = target.deploy(new_id)?;
        Ok((new_id, outcome))
    }

    /// Migrates a running application from one node to another through the
    /// durable checkpoint **wire format**: the source node suspends and
    /// disconnects the tenant, its entire state is serialized to bytes
    /// ([`Runtime::save_checkpoint`]), a fresh `Runtime` is rebuilt from
    /// those bytes on the target node, and the target deploys it. The byte
    /// stream is exactly what an on-disk checkpoint holds, so cross-node
    /// migration, crash recovery, and the CI golden gate all exercise one
    /// code path — and the result is bit-identical to the in-process
    /// [`Cluster::migrate`].
    ///
    /// Returns the application's id on the target node together with the
    /// target's deployment outcome.
    ///
    /// # Errors
    ///
    /// Returns an error if the application is unknown on the source node,
    /// the checkpoint cannot be rebuilt ([`HvError::Checkpoint`]), or the
    /// target cannot deploy it.
    pub fn live_migrate(
        &mut self,
        from: NodeId,
        app: AppId,
        to: NodeId,
        domain: DomainId,
        io_bound: bool,
    ) -> Result<(AppId, DeployOutcome), HvError> {
        let runtime: Runtime = self.node_mut(from).disconnect(app)?;
        // The wire crossing: everything the tenant is becomes bytes...
        let wire = runtime.save_checkpoint();
        drop(runtime);
        // ...and a brand-new runtime (as in a different process) comes back.
        let restored = Runtime::restore_checkpoint(&wire)?;
        let target = self.node_mut(to);
        let new_id = target.connect(restored, domain, io_bound);
        let outcome = target.deploy(new_id)?;
        // Downtime is the simulated latency of re-admission on the target —
        // deterministic (virtual) time, so it lives in the Det namespace on
        // the node that now hosts the tenant.
        if synergy_telemetry::enabled() {
            let rounds = target.rounds();
            let t = target.telemetry_mut();
            t.registry
                .counter_add(Namespace::Det, "cluster_migrations_total", &[], 1);
            t.registry.counter_add(
                Namespace::Det,
                "cluster_migration_bytes_total",
                &[],
                wire.len() as u64,
            );
            t.registry.counter_add(
                Namespace::Det,
                "cluster_migration_downtime_ns_total",
                &[],
                outcome.latency_ns,
            );
            t.recorder.record(
                rounds,
                "live_migrate_in",
                format!(
                    "app={} bytes={} downtime_ns={}",
                    new_id.0,
                    wire.len(),
                    outcome.latency_ns
                ),
            );
        }
        Ok((new_id, outcome))
    }

    /// Deploys an application on `preferred`, falling back to the other nodes when
    /// the preferred device cannot admit it — the nested-delegation behaviour of
    /// §4.1 (step 6 of Figure 6).
    ///
    /// # Errors
    ///
    /// Returns the last node's error if no node can host the application.
    pub fn deploy_with_delegation(
        &mut self,
        preferred: NodeId,
        app: AppId,
        domain: DomainId,
        io_bound: bool,
    ) -> Result<(NodeId, AppId, DeployOutcome), HvError> {
        match self.node_mut(preferred).deploy(app) {
            Ok(outcome) => Ok((preferred, app, outcome)),
            Err(HvError::Fabric(_)) => {
                // Delegate to the first other node that accepts the program.
                let runtime = self.node_mut(preferred).disconnect(app)?;
                let mut runtime = Some(runtime);
                let mut last_err = HvError::UnknownApp(app.0);
                for idx in 0..self.nodes.len() {
                    if idx == preferred.0 {
                        continue;
                    }
                    let rt = runtime.take().expect("runtime present");
                    let node = &mut self.nodes[idx];
                    let new_id = node.connect(rt, domain, io_bound);
                    match node.deploy(new_id) {
                        Ok(outcome) => {
                            // Placement decision: the preferred node was
                            // full and this one took the tenant.
                            if synergy_telemetry::enabled() {
                                let rounds = node.rounds();
                                let t = node.telemetry_mut();
                                t.registry.counter_add(
                                    Namespace::Det,
                                    "cluster_delegations_total",
                                    &[],
                                    1,
                                );
                                t.recorder.record(
                                    rounds,
                                    "delegated_placement",
                                    format!(
                                        "app={} preferred_node={} placed_node={}",
                                        new_id.0, preferred.0, idx
                                    ),
                                );
                            }
                            return Ok((NodeId(idx), new_id, outcome));
                        }
                        Err(e) => {
                            last_err = e;
                            runtime = Some(node.disconnect(new_id)?);
                        }
                    }
                }
                Err(last_err)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
        module Counter(input wire clock, output wire [31:0] out);
            reg [31:0] count = 0;
            always @(posedge clock) count <= count + 1;
            assign out = count;
        endmodule
    "#;

    fn counter_runtime(name: &str) -> Runtime {
        Runtime::new(name, COUNTER, "Counter", "clock").unwrap()
    }

    #[test]
    fn migration_between_heterogeneous_nodes_preserves_state() {
        let mut cluster = Cluster::new();
        let de10 = cluster.add_node(Device::de10());
        let f1 = cluster.add_node(Device::f1());

        let app = cluster
            .node_mut(de10)
            .connect(counter_runtime("mips"), DomainId(1), false);
        cluster.node_mut(de10).deploy(app).unwrap();
        cluster.node_mut(de10).run_round(0.0002).unwrap();
        let before = cluster
            .node(de10)
            .app(app)
            .unwrap()
            .get_bits("count")
            .unwrap()
            .to_u64();
        assert!(before > 0);

        let (new_app, outcome) = cluster.migrate(de10, app, f1, DomainId(1), false).unwrap();
        assert_eq!(outcome.global_clock_hz, 250_000_000);
        let after_migration = cluster
            .node(f1)
            .app(new_app)
            .unwrap()
            .get_bits("count")
            .unwrap()
            .to_u64();
        assert_eq!(after_migration, before, "state is preserved across devices");

        cluster.node_mut(f1).run_round(0.0002).unwrap();
        let after_run = cluster
            .node(f1)
            .app(new_app)
            .unwrap()
            .get_bits("count")
            .unwrap()
            .to_u64();
        assert!(after_run > before);
        // The source node no longer knows the application.
        assert!(cluster.node(de10).app(app).is_err());
    }

    #[test]
    fn delegation_falls_back_when_the_preferred_device_is_full() {
        let mut cluster = Cluster::new();
        // A toy device too small for anything.
        let tiny = Device {
            name: "tiny".into(),
            lut_capacity: 10,
            ff_capacity: 10,
            bram_bits: 10,
            ..Device::de10()
        };
        let small = cluster.add_node(tiny);
        let big = cluster.add_node(Device::f1());
        let app = cluster
            .node_mut(small)
            .connect(counter_runtime("c"), DomainId(1), false);
        let (node, new_app, _) = cluster
            .deploy_with_delegation(small, app, DomainId(1), false)
            .unwrap();
        assert_eq!(node, big);
        assert!(cluster.node(big).app(new_app).is_ok());
    }

    #[test]
    fn live_migrate_matches_in_process_migration_bit_for_bit() {
        let build = || {
            let mut cluster = Cluster::new();
            let de10 = cluster.add_node(Device::de10());
            let f1 = cluster.add_node(Device::f1());
            let app = cluster
                .node_mut(de10)
                .connect(counter_runtime("c"), DomainId(1), false);
            cluster.node_mut(de10).deploy(app).unwrap();
            cluster.node_mut(de10).run_round(0.0002).unwrap();
            (cluster, de10, f1, app)
        };

        let (mut in_proc, de10_a, f1_a, app_a) = build();
        let (mut wire, de10_b, f1_b, app_b) = build();
        let (new_a, out_a) = in_proc
            .migrate(de10_a, app_a, f1_a, DomainId(2), false)
            .unwrap();
        let (new_b, out_b) = wire
            .live_migrate(de10_b, app_b, f1_b, DomainId(2), false)
            .unwrap();
        assert_eq!(out_a, out_b, "deployment outcomes must match");

        // Identical state right after migration, and identical onward
        // execution — the wire crossing is invisible.
        assert_eq!(
            in_proc.node(f1_a).app(new_a).unwrap().peek_state(),
            wire.node(f1_b).app(new_b).unwrap().peek_state(),
        );
        in_proc.node_mut(f1_a).run_round(0.0002).unwrap();
        wire.node_mut(f1_b).run_round(0.0002).unwrap();
        assert_eq!(
            in_proc.node(f1_a).app(new_a).unwrap().peek_state(),
            wire.node(f1_b).app(new_b).unwrap().peek_state(),
        );
        assert_eq!(
            in_proc.node(f1_a).app(new_a).unwrap().now_ns(),
            wire.node(f1_b).app(new_b).unwrap().now_ns(),
        );
    }

    #[test]
    fn shared_cache_spans_nodes_of_the_same_device_type() {
        let mut cluster = Cluster::new();
        let a = cluster.add_node(Device::de10());
        let b = cluster.add_node(Device::de10());
        let app_a = cluster
            .node_mut(a)
            .connect(counter_runtime("x"), DomainId(1), false);
        let first = cluster.node_mut(a).deploy(app_a).unwrap();
        let app_b = cluster
            .node_mut(b)
            .connect(counter_runtime("y"), DomainId(1), false);
        let second = cluster.node_mut(b).deploy(app_b).unwrap();
        assert!(!first.cache_hit);
        assert!(
            second.cache_hit,
            "bitstreams are shared across identical nodes"
        );
    }
}
