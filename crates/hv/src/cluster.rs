//! Multi-device clusters and cross-device workload migration.
//!
//! The paper's evaluation spans a cluster of DE10 SoCs and F1 cloud instances
//! (§6.1): programs are suspended on one node and resumed on another, without
//! exposing the architectural differences between the platforms. A [`Cluster`]
//! holds one [`Hypervisor`] per node (all sharing a bitstream cache) and provides
//! the migration primitive used by Figures 9 and 10. It also demonstrates the
//! nesting property of §4.1: a hypervisor whose device is full can delegate a
//! deployment to another node.

use crate::hypervisor::{AppId, DeployOutcome, HvError, Hypervisor};
use crate::sched::SchedPolicy;
use serde::{Deserialize, Serialize};
use synergy_amorphos::DomainId;
use synergy_fpga::{BitstreamCache, Device};
use synergy_runtime::{CompiledTier, EnginePolicy, OptLevel, Runtime};
use synergy_telemetry::{Namespace, Registry};

/// Identifies a node (one device + hypervisor) within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A cluster of hypervisor-managed devices sharing one compilation cache.
pub struct Cluster {
    nodes: Vec<Hypervisor>,
    cache: BitstreamCache,
    policy: EnginePolicy,
    tier: Option<CompiledTier>,
    opt_level: Option<OptLevel>,
    sched: SchedPolicy,
    round_tick_cap: Option<u64>,
    tenant_capacity: Option<usize>,
    /// Armed deterministic migration faults: while non-zero, the next
    /// [`Cluster::live_migrate`] calls fail after the wire crossing
    /// (exercising the rebuild-and-reconnect recovery path) and decrement
    /// the counter. Chaos-plan plumbing; see [`crate::FaultPlan`].
    migration_faults: u64,
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new()
    }
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Cluster {
            nodes: Vec::new(),
            cache: BitstreamCache::new(),
            policy: EnginePolicy::Interpreter,
            tier: None,
            opt_level: None,
            sched: SchedPolicy::Sequential,
            round_tick_cap: None,
            tenant_capacity: None,
            migration_faults: 0,
        }
    }

    /// Builds a hypervisor carrying every cluster-wide knob (the shared
    /// constructor behind [`Cluster::add_node`] and [`Cluster::reset_node`]).
    fn build_node(&self, device: Device) -> Hypervisor {
        let mut hv = Hypervisor::with_cache(device, self.cache.clone());
        hv.set_engine_policy(self.policy);
        if let Some(tier) = self.tier {
            hv.set_compiled_tier(tier);
        }
        if let Some(level) = self.opt_level {
            hv.set_opt_level(level);
        }
        if let Some(cap) = self.round_tick_cap {
            hv.set_round_tick_cap(cap);
        }
        hv.set_tenant_capacity(self.tenant_capacity);
        hv.set_sched_policy(self.sched);
        hv
    }

    /// Adds a node managing the given device.
    pub fn add_node(&mut self, device: Device) -> NodeId {
        let hv = self.build_node(device);
        self.nodes.push(hv);
        NodeId(self.nodes.len() - 1)
    }

    /// Replaces a node's hypervisor with a fresh, empty one managing the
    /// same device (all connected tenants and fabric state are dropped on
    /// the floor) — the crash primitive behind
    /// [`crate::FaultKind::KillNode`], also usable as the rollback step of
    /// coordinated recovery. Cluster-wide knobs are re-applied; the shared
    /// bitstream cache survives (it models the cluster-wide artifact store,
    /// not node memory).
    ///
    /// # Errors
    ///
    /// Returns [`HvError::UnknownNode`] for an out-of-range id.
    pub fn reset_node(&mut self, id: NodeId) -> Result<(), HvError> {
        let device = self.try_node(id)?.device().clone();
        self.nodes[id.0] = self.build_node(device);
        Ok(())
    }

    /// Arms `n` deterministic migration faults: each subsequent
    /// [`Cluster::live_migrate`] fails with [`HvError::Injected`] *after*
    /// the tenant has been serialized to wire bytes — the worst spot, which
    /// forces the rebuild-from-wire recovery path — until the counter
    /// drains.
    pub fn inject_migration_failures(&mut self, n: u64) {
        self.migration_faults += n;
    }

    /// Selects the compiled-engine tier on every current and future node
    /// (see [`Hypervisor::set_compiled_tier`]).
    pub fn set_compiled_tier(&mut self, tier: CompiledTier) {
        self.tier = Some(tier);
        for node in &mut self.nodes {
            node.set_compiled_tier(tier);
        }
    }

    /// Selects the netlist optimization level on every current and future
    /// node (see [`Hypervisor::set_opt_level`]).
    pub fn set_opt_level(&mut self, level: OptLevel) {
        self.opt_level = Some(level);
        for node in &mut self.nodes {
            node.set_opt_level(level);
        }
    }

    /// Sets the software-engine selection policy on every current and future
    /// node (see [`Hypervisor::set_engine_policy`]).
    pub fn set_engine_policy(&mut self, policy: EnginePolicy) {
        self.policy = policy;
        for node in &mut self.nodes {
            node.set_engine_policy(policy);
        }
    }

    /// Sets the round-scheduling policy on every current and future node
    /// (see [`Hypervisor::set_sched_policy`]).
    pub fn set_sched_policy(&mut self, sched: SchedPolicy) {
        self.sched = sched;
        for node in &mut self.nodes {
            node.set_sched_policy(sched);
        }
    }

    /// Caps per-tenant round tick budgets on every current and future node
    /// (see [`Hypervisor::set_round_tick_cap`]).
    pub fn set_round_tick_cap(&mut self, cap: u64) {
        self.round_tick_cap = Some(cap);
        for node in &mut self.nodes {
            node.set_round_tick_cap(cap);
        }
    }

    /// Caps software tenant admission on every current and future node
    /// (see [`Hypervisor::set_tenant_capacity`]).
    pub fn set_tenant_capacity(&mut self, capacity: Option<usize>) {
        self.tenant_capacity = capacity;
        for node in &mut self.nodes {
            node.set_tenant_capacity(capacity);
        }
    }

    /// Number of nodes in the cluster.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The shared bitstream cache.
    pub fn cache(&self) -> &BitstreamCache {
        &self.cache
    }

    /// Every node id, in index order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).map(NodeId).collect()
    }

    /// Fallible access to a node's hypervisor — the form every control-plane
    /// path that takes an external id uses.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::UnknownNode`] for an out-of-range id.
    pub fn try_node(&self, id: NodeId) -> Result<&Hypervisor, HvError> {
        self.nodes.get(id.0).ok_or(HvError::UnknownNode(id.0))
    }

    /// Fallible mutable access to a node's hypervisor.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::UnknownNode`] for an out-of-range id.
    pub fn try_node_mut(&mut self, id: NodeId) -> Result<&mut Hypervisor, HvError> {
        self.nodes.get_mut(id.0).ok_or(HvError::UnknownNode(id.0))
    }

    /// Access to a node's hypervisor.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range; prefer [`Cluster::try_node`]
    /// when the id comes from outside.
    pub fn node(&self, id: NodeId) -> &Hypervisor {
        self.try_node(id).expect("node id in range")
    }

    /// Mutable access to a node's hypervisor.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range; prefer
    /// [`Cluster::try_node_mut`] when the id comes from outside.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Hypervisor {
        self.try_node_mut(id).expect("node id in range")
    }

    /// A fleet-wide metrics snapshot: every node's [`Hypervisor::metrics`]
    /// registry merged under a `node=<index>` label. The deterministic
    /// namespace inherits the per-node contract — bit-identical across
    /// scheduling policies for the same fleet and rounds.
    pub fn metrics(&self) -> Registry {
        let mut out = Registry::default();
        for (idx, node) in self.nodes.iter().enumerate() {
            out.merge_labeled(&node.metrics(), "node", &idx.to_string());
        }
        out
    }

    /// Migrates a running application from one node to another *in process*:
    /// the source node suspends it (state capture through `$save`-style get
    /// requests), the target node deploys the same program and restores the
    /// captured state, and execution continues there (the Figure 9 /
    /// Figure 10 flow).
    ///
    /// This is the in-memory reference path; production migration is
    /// [`Cluster::live_migrate`], which moves the tenant through the durable
    /// checkpoint wire format instead of handing the `Runtime` object across
    /// — the differential suite asserts the two are bit-identical.
    ///
    /// Returns the application's id on the target node together with the target's
    /// deployment outcome.
    ///
    /// # Errors
    ///
    /// Returns an error if the application is unknown on the source node or the
    /// target cannot deploy it.
    pub fn migrate(
        &mut self,
        from: NodeId,
        app: AppId,
        to: NodeId,
        domain: DomainId,
        io_bound: bool,
    ) -> Result<(AppId, DeployOutcome), HvError> {
        self.try_node(to)?;
        let runtime: Runtime = self.try_node_mut(from)?.disconnect(app)?;
        let target = self.node_mut(to);
        let new_id = target.connect(runtime, domain, io_bound);
        let outcome = target.deploy(new_id)?;
        Ok((new_id, outcome))
    }

    /// Migrates a running application from one node to another through the
    /// durable checkpoint **wire format**: the source node suspends and
    /// disconnects the tenant, its entire state is serialized to bytes
    /// ([`Runtime::save_checkpoint`]), a fresh `Runtime` is rebuilt from
    /// those bytes on the target node, and the target deploys it. The byte
    /// stream is exactly what an on-disk checkpoint holds, so cross-node
    /// migration, crash recovery, and the CI golden gate all exercise one
    /// code path — and the result is bit-identical to the in-process
    /// [`Cluster::migrate`].
    ///
    /// Returns the application's id on the target node together with the
    /// target's deployment outcome.
    ///
    /// # Errors
    ///
    /// Returns an error if the application is unknown on the source node,
    /// the checkpoint cannot be rebuilt ([`HvError::Checkpoint`]), or the
    /// target cannot deploy it. On any failure *after* the wire crossing the
    /// tenant is rebuilt from the wire bytes and reconnected (and, if it was
    /// deployed before, redeployed best-effort) on the source node — a failed
    /// migration never loses the tenant.
    pub fn live_migrate(
        &mut self,
        from: NodeId,
        app: AppId,
        to: NodeId,
        domain: DomainId,
        io_bound: bool,
    ) -> Result<(AppId, DeployOutcome), HvError> {
        self.try_node(to)?;
        let (src_domain, src_io, was_deployed) = self.try_node(from)?.slot_meta(app)?;
        let runtime: Runtime = self.node_mut(from).disconnect(app)?;
        // The wire crossing: everything the tenant is becomes bytes...
        let wire = runtime.save_checkpoint();
        drop(runtime);
        // ...and a brand-new runtime (as in a different process) comes back.
        let restored = if self.migration_faults > 0 {
            self.migration_faults -= 1;
            Err(HvError::Injected(format!(
                "live_migrate app={} {}->{}: injected wire-crossing fault",
                app.0, from.0, to.0
            )))
        } else {
            Runtime::restore_checkpoint(&wire).map_err(HvError::from)
        };
        let failure = match restored {
            Ok(restored) => {
                let target = self.node_mut(to);
                let new_id = target.connect(restored, domain, io_bound);
                match target.deploy(new_id) {
                    Ok(outcome) => return self.finish_live_migrate(to, new_id, &wire, outcome),
                    Err(e) => {
                        // Evict the half-migrated tenant from the target; the
                        // wire bytes are the authoritative copy from here on.
                        drop(self.node_mut(to).disconnect(new_id)?);
                        e
                    }
                }
            }
            Err(e) => e,
        };
        // Recovery: the tenant still exists as wire bytes — rebuild it and
        // hand it back to the source node, surfacing the original error.
        let rebuilt = Runtime::restore_checkpoint(&wire)?;
        let source = self.node_mut(from);
        let back_id = source.connect(rebuilt, src_domain, src_io);
        if was_deployed {
            // Best-effort: the fabric slot was freed by the disconnect above,
            // so this succeeds in practice; if it doesn't, the tenant is
            // still connected (software-resident) and nothing is lost.
            let _ = source.deploy(back_id);
        }
        if synergy_telemetry::enabled() {
            let rounds = source.rounds();
            let t = source.telemetry_mut();
            t.registry
                .counter_add(Namespace::Det, "cluster_migration_failures_total", &[], 1);
            t.recorder.record(
                rounds,
                "live_migrate_rollback",
                format!("app={} target_node={} error={}", back_id.0, to.0, failure),
            );
        }
        Err(failure)
    }

    /// Success tail of [`Cluster::live_migrate`]: records the migration
    /// metrics on the node that now hosts the tenant.
    fn finish_live_migrate(
        &mut self,
        to: NodeId,
        new_id: AppId,
        wire: &[u8],
        outcome: DeployOutcome,
    ) -> Result<(AppId, DeployOutcome), HvError> {
        let target = self.node_mut(to);
        // Downtime is the simulated latency of re-admission on the target —
        // deterministic (virtual) time, so it lives in the Det namespace on
        // the node that now hosts the tenant.
        if synergy_telemetry::enabled() {
            let rounds = target.rounds();
            let t = target.telemetry_mut();
            t.registry
                .counter_add(Namespace::Det, "cluster_migrations_total", &[], 1);
            t.registry.counter_add(
                Namespace::Det,
                "cluster_migration_bytes_total",
                &[],
                wire.len() as u64,
            );
            t.registry.counter_add(
                Namespace::Det,
                "cluster_migration_downtime_ns_total",
                &[],
                outcome.latency_ns,
            );
            t.recorder.record(
                rounds,
                "live_migrate_in",
                format!(
                    "app={} bytes={} downtime_ns={}",
                    new_id.0,
                    wire.len(),
                    outcome.latency_ns
                ),
            );
        }
        Ok((new_id, outcome))
    }

    /// `true` when a deployment rejection is capacity-shaped — the tenant is
    /// fine, the node just cannot host it right now — and delegation to
    /// another node is the right response.
    fn is_capacity_rejection(e: &HvError) -> bool {
        matches!(e, HvError::Fabric(_) | HvError::SoftwareCapacity { .. })
    }

    /// Deploys an application on `preferred`, falling back to the other nodes when
    /// the preferred device cannot admit it — the nested-delegation behaviour of
    /// §4.1 (step 6 of Figure 6). Delegation triggers on any capacity-shaped
    /// rejection (fabric placement *or* software tenant capacity); every node
    /// skipped along the way is recorded, with its reason, in the preferred
    /// node's flight recorder (`delegation_skip` events).
    ///
    /// # Errors
    ///
    /// Returns the last node's error if no node can host the application.
    pub fn deploy_with_delegation(
        &mut self,
        preferred: NodeId,
        app: AppId,
        domain: DomainId,
        io_bound: bool,
    ) -> Result<(NodeId, AppId, DeployOutcome), HvError> {
        match self.try_node_mut(preferred)?.deploy(app) {
            Ok(outcome) => Ok((preferred, app, outcome)),
            Err(e) if Self::is_capacity_rejection(&e) => {
                // Delegate to the first other node that accepts the program,
                // keeping a skip ledger of every rejection on the way.
                let mut skips: Vec<(usize, String)> = vec![(preferred.0, e.to_string())];
                let runtime = self.node_mut(preferred).disconnect(app)?;
                let mut runtime = Some(runtime);
                let mut last_err = e;
                let mut placed = None;
                for idx in 0..self.nodes.len() {
                    if idx == preferred.0 {
                        continue;
                    }
                    let rt = runtime.take().expect("runtime present");
                    let node = &mut self.nodes[idx];
                    let new_id = match node.try_connect(rt, domain, io_bound) {
                        Ok(id) => id,
                        Err(rejected) => {
                            let (e, rt) = *rejected;
                            skips.push((idx, e.to_string()));
                            last_err = e;
                            runtime = Some(rt);
                            continue;
                        }
                    };
                    match node.deploy(new_id) {
                        Ok(outcome) => {
                            // Placement decision: the preferred node was
                            // full and this one took the tenant.
                            if synergy_telemetry::enabled() {
                                let rounds = node.rounds();
                                let t = node.telemetry_mut();
                                t.registry.counter_add(
                                    Namespace::Det,
                                    "cluster_delegations_total",
                                    &[],
                                    1,
                                );
                                t.recorder.record(
                                    rounds,
                                    "delegated_placement",
                                    format!(
                                        "app={} preferred_node={} placed_node={}",
                                        new_id.0, preferred.0, idx
                                    ),
                                );
                            }
                            placed = Some((NodeId(idx), new_id, outcome));
                            break;
                        }
                        Err(e) => {
                            skips.push((idx, e.to_string()));
                            last_err = e;
                            runtime = Some(node.disconnect(new_id)?);
                        }
                    }
                }
                // Nobody took it: re-home the tenant (software-resident,
                // over-capacity if need be) on the preferred node rather than
                // dropping it — delegation failure must never lose a tenant.
                if let Some(rt) = runtime.take() {
                    let home = self.node_mut(preferred);
                    let back_id = home.connect(rt, domain, io_bound);
                    skips.push((preferred.0, format!("re-homed as app={}", back_id.0)));
                }
                if synergy_telemetry::enabled() {
                    let home = self.node_mut(preferred);
                    let rounds = home.rounds();
                    let t = home.telemetry_mut();
                    for (idx, reason) in &skips {
                        t.recorder.record(
                            rounds,
                            "delegation_skip",
                            format!("app={} node={} reason={}", app.0, idx, reason),
                        );
                    }
                }
                placed.ok_or(last_err)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
        module Counter(input wire clock, output wire [31:0] out);
            reg [31:0] count = 0;
            always @(posedge clock) count <= count + 1;
            assign out = count;
        endmodule
    "#;

    fn counter_runtime(name: &str) -> Runtime {
        Runtime::new(name, COUNTER, "Counter", "clock").unwrap()
    }

    #[test]
    fn migration_between_heterogeneous_nodes_preserves_state() {
        let mut cluster = Cluster::new();
        let de10 = cluster.add_node(Device::de10());
        let f1 = cluster.add_node(Device::f1());

        let app = cluster
            .node_mut(de10)
            .connect(counter_runtime("mips"), DomainId(1), false);
        cluster.node_mut(de10).deploy(app).unwrap();
        cluster.node_mut(de10).run_round(0.0002).unwrap();
        let before = cluster
            .node(de10)
            .app(app)
            .unwrap()
            .get_bits("count")
            .unwrap()
            .to_u64();
        assert!(before > 0);

        let (new_app, outcome) = cluster.migrate(de10, app, f1, DomainId(1), false).unwrap();
        assert_eq!(outcome.global_clock_hz, 250_000_000);
        let after_migration = cluster
            .node(f1)
            .app(new_app)
            .unwrap()
            .get_bits("count")
            .unwrap()
            .to_u64();
        assert_eq!(after_migration, before, "state is preserved across devices");

        cluster.node_mut(f1).run_round(0.0002).unwrap();
        let after_run = cluster
            .node(f1)
            .app(new_app)
            .unwrap()
            .get_bits("count")
            .unwrap()
            .to_u64();
        assert!(after_run > before);
        // The source node no longer knows the application.
        assert!(cluster.node(de10).app(app).is_err());
    }

    #[test]
    fn delegation_falls_back_when_the_preferred_device_is_full() {
        let mut cluster = Cluster::new();
        // A toy device too small for anything.
        let tiny = Device {
            name: "tiny".into(),
            lut_capacity: 10,
            ff_capacity: 10,
            bram_bits: 10,
            ..Device::de10()
        };
        let small = cluster.add_node(tiny);
        let big = cluster.add_node(Device::f1());
        let app = cluster
            .node_mut(small)
            .connect(counter_runtime("c"), DomainId(1), false);
        let (node, new_app, _) = cluster
            .deploy_with_delegation(small, app, DomainId(1), false)
            .unwrap();
        assert_eq!(node, big);
        assert!(cluster.node(big).app(new_app).is_ok());
    }

    #[test]
    fn live_migrate_matches_in_process_migration_bit_for_bit() {
        let build = || {
            let mut cluster = Cluster::new();
            let de10 = cluster.add_node(Device::de10());
            let f1 = cluster.add_node(Device::f1());
            let app = cluster
                .node_mut(de10)
                .connect(counter_runtime("c"), DomainId(1), false);
            cluster.node_mut(de10).deploy(app).unwrap();
            cluster.node_mut(de10).run_round(0.0002).unwrap();
            (cluster, de10, f1, app)
        };

        let (mut in_proc, de10_a, f1_a, app_a) = build();
        let (mut wire, de10_b, f1_b, app_b) = build();
        let (new_a, out_a) = in_proc
            .migrate(de10_a, app_a, f1_a, DomainId(2), false)
            .unwrap();
        let (new_b, out_b) = wire
            .live_migrate(de10_b, app_b, f1_b, DomainId(2), false)
            .unwrap();
        assert_eq!(out_a, out_b, "deployment outcomes must match");

        // Identical state right after migration, and identical onward
        // execution — the wire crossing is invisible.
        assert_eq!(
            in_proc.node(f1_a).app(new_a).unwrap().peek_state(),
            wire.node(f1_b).app(new_b).unwrap().peek_state(),
        );
        in_proc.node_mut(f1_a).run_round(0.0002).unwrap();
        wire.node_mut(f1_b).run_round(0.0002).unwrap();
        assert_eq!(
            in_proc.node(f1_a).app(new_a).unwrap().peek_state(),
            wire.node(f1_b).app(new_b).unwrap().peek_state(),
        );
        assert_eq!(
            in_proc.node(f1_a).app(new_a).unwrap().now_ns(),
            wire.node(f1_b).app(new_b).unwrap().now_ns(),
        );
    }

    #[test]
    fn failed_live_migrate_reconnects_the_tenant_to_the_source() {
        let mut cluster = Cluster::new();
        let de10 = cluster.add_node(Device::de10());
        // Target too small to deploy anything: the wire crossing succeeds but
        // the target `deploy` fails, which used to drop the tenant forever.
        let tiny = cluster.add_node(Device {
            name: "tiny".into(),
            lut_capacity: 10,
            ff_capacity: 10,
            bram_bits: 10,
            ..Device::de10()
        });

        let app = cluster
            .node_mut(de10)
            .connect(counter_runtime("c"), DomainId(1), false);
        cluster.node_mut(de10).deploy(app).unwrap();
        cluster.node_mut(de10).run_round(0.0002).unwrap();
        let before = cluster
            .node(de10)
            .app(app)
            .unwrap()
            .get_bits("count")
            .unwrap()
            .to_u64();
        assert!(before > 0);

        let err = cluster
            .live_migrate(de10, app, tiny, DomainId(1), false)
            .unwrap_err();
        assert!(matches!(err, HvError::Fabric(_)), "got {err}");

        // The tenant survived the failed migration: back on the source node,
        // state intact, still runnable.
        assert!(cluster.node(tiny).apps().is_empty());
        let homed = cluster.node(de10).apps();
        assert_eq!(homed.len(), 1);
        let back = homed[0];
        let after = cluster
            .node(de10)
            .app(back)
            .unwrap()
            .get_bits("count")
            .unwrap()
            .to_u64();
        assert_eq!(after, before, "state survives the rollback");
        cluster.node_mut(de10).run_round(0.0002).unwrap();
        assert!(
            cluster
                .node(de10)
                .app(back)
                .unwrap()
                .get_bits("count")
                .unwrap()
                .to_u64()
                > before
        );
        assert!(cluster
            .node(de10)
            .flight_dump()
            .contains("live_migrate_rollback"));
    }

    #[test]
    fn injected_migration_fault_rolls_back_then_drains() {
        let mut cluster = Cluster::new();
        let a = cluster.add_node(Device::de10());
        let b = cluster.add_node(Device::de10());
        let app = cluster
            .node_mut(a)
            .connect(counter_runtime("c"), DomainId(1), false);
        cluster.node_mut(a).deploy(app).unwrap();
        cluster.node_mut(a).run_round(0.0002).unwrap();

        cluster.inject_migration_failures(1);
        let err = cluster
            .live_migrate(a, app, b, DomainId(1), false)
            .unwrap_err();
        assert!(matches!(err, HvError::Injected(_)), "got {err}");
        assert_eq!(cluster.node(a).apps().len(), 1);
        assert!(cluster.node(b).apps().is_empty());

        // The fault was consumed: the retry goes through.
        let back = cluster.node(a).apps()[0];
        cluster
            .live_migrate(a, back, b, DomainId(1), false)
            .unwrap();
        assert!(cluster.node(a).apps().is_empty());
        assert_eq!(cluster.node(b).apps().len(), 1);
    }

    #[test]
    fn try_node_returns_typed_errors_for_out_of_range_ids() {
        let mut cluster = Cluster::new();
        let only = cluster.add_node(Device::de10());
        assert!(matches!(
            cluster.try_node(NodeId(7)),
            Err(HvError::UnknownNode(7))
        ));
        assert!(matches!(
            cluster.try_node_mut(NodeId(7)),
            Err(HvError::UnknownNode(7))
        ));
        // A migration towards a bad node fails fast, before the tenant is
        // disturbed on the source.
        let app = cluster
            .node_mut(only)
            .connect(counter_runtime("c"), DomainId(1), false);
        cluster.node_mut(only).deploy(app).unwrap();
        let err = cluster
            .live_migrate(only, app, NodeId(9), DomainId(1), false)
            .unwrap_err();
        assert!(matches!(err, HvError::UnknownNode(9)));
        assert!(cluster.node(only).app(app).is_ok());
    }

    #[test]
    fn delegation_covers_software_capacity_and_records_skip_reasons() {
        let mut cluster = Cluster::new();
        let a = cluster.add_node(Device::de10());
        let b = cluster.add_node(Device::de10());
        cluster.set_tenant_capacity(Some(1));

        let first = cluster
            .node_mut(a)
            .connect(counter_runtime("one"), DomainId(1), false);
        cluster.node_mut(a).deploy(first).unwrap();

        // Second tenant lands on node a over its software capacity; deploying
        // it there must delegate to node b, not fail.
        let second = cluster
            .node_mut(a)
            .connect(counter_runtime("two"), DomainId(2), false);
        let (node, placed, _) = cluster
            .deploy_with_delegation(a, second, DomainId(2), false)
            .unwrap();
        assert_eq!(node, b);
        assert!(cluster.node(b).app(placed).is_ok());
        // The skip ledger landed in the preferred node's flight recorder.
        let dump = cluster.node(a).flight_dump();
        assert!(dump.contains("delegation_skip"), "dump: {dump}");
        assert!(dump.contains("software capacity"), "dump: {dump}");
    }

    #[test]
    fn shared_cache_spans_nodes_of_the_same_device_type() {
        let mut cluster = Cluster::new();
        let a = cluster.add_node(Device::de10());
        let b = cluster.add_node(Device::de10());
        let app_a = cluster
            .node_mut(a)
            .connect(counter_runtime("x"), DomainId(1), false);
        let first = cluster.node_mut(a).deploy(app_a).unwrap();
        let app_b = cluster
            .node_mut(b)
            .connect(counter_runtime("y"), DomainId(1), false);
        let second = cluster.node_mut(b).deploy(app_b).unwrap();
        assert!(!first.cache_hit);
        assert!(
            second.cache_hit,
            "bitstreams are shared across identical nodes"
        );
    }
}
