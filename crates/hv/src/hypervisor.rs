//! The SYNERGY hypervisor (§4 of the paper).
//!
//! The hypervisor sits between runtime instances and the physical fabric. Each
//! instance's compiler connects to the hypervisor, ships the source of its
//! transformed sub-program, and receives an engine identifier; the hypervisor
//! coalesces every connected sub-program into a single monolithic design, places it
//! on the fabric through the AmorphOS hull, and schedules ABI requests. Destructive
//! events (recompiling the combined program) go through the state-safe handshake of
//! Figure 7: every connected instance saves its state between logical clock ticks
//! before the device is reprogrammed and restores it afterwards.
//!
//! Spatial multiplexing falls out of coalescing; temporal multiplexing serialises
//! instances that contend on a shared IO path (Figure 11); and co-tenancy can lower
//! the shared global clock (Figure 12).

use crate::sched::{DeficitRoundRobin, SchedPolicy, WorkerPool};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use synergy_amorphos::{DomainId, Hull, HullError, MorphletId, Quiescence};
use synergy_fpga::{
    BitstreamCache, CompileOutcome, Device, Fabric, FabricError, SimClock, SynthOptions,
};
use synergy_runtime::{
    CheckpointError, CompiledTier, EnginePolicy, ExecMode, OptLevel, RunReport, Runtime,
    RuntimeEvent,
};
use synergy_snapshot::{decode_frame_of, Reader, SnapshotError, Writer, KIND_FLEET};
use synergy_telemetry::{Namespace, Registry, Telemetry, POW2_BUCKETS};
use synergy_transform::transform;
use synergy_vlog::VlogError;

/// Identifier the hypervisor assigns to a connected application instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub u64);

/// Identifier for an engine placed on the fabric (step 3 of Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EngineId(pub u64);

/// Errors raised by hypervisor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum HvError {
    /// The application id is not connected.
    UnknownApp(u64),
    /// The node id does not name a node of the cluster (see
    /// [`crate::Cluster::try_node`]).
    UnknownNode(usize),
    /// The node's software side is at its configured tenant capacity
    /// ([`Hypervisor::set_tenant_capacity`]); the caller should place the
    /// tenant elsewhere — the control plane treats this exactly like a
    /// fabric rejection.
    SoftwareCapacity {
        /// Tenants currently connected to the rejecting node.
        tenants: usize,
        /// The node's configured capacity.
        capacity: usize,
    },
    /// A deterministic fault injected by a chaos plan (see
    /// [`crate::FaultPlan`]); carries the injection site.
    Injected(String),
    /// Crash recovery ran out of restorable checkpoints or retry budget;
    /// the fleet keeps serving but the dead node's tenants could not be
    /// rebuilt (each is recorded in the control plane's loss ledger —
    /// never silently dropped).
    RecoveryExhausted {
        /// Recovery attempts made before giving up.
        attempts: u32,
        /// The last underlying failure, rendered.
        detail: String,
    },
    /// The fabric rejected the placement.
    Fabric(FabricError),
    /// The protection layer rejected the operation.
    Hull(HullError),
    /// Compilation of the sub-program failed.
    Compile(VlogError),
    /// The application is not currently deployed to hardware.
    NotDeployed(u64),
    /// A durable checkpoint could not be decoded or rebuilt
    /// (see [`synergy_runtime::CheckpointError`]).
    Checkpoint(CheckpointError),
    /// A fleet restore was attempted in an invalid configuration (e.g. into
    /// a hypervisor that already has connected tenants).
    Restore(String),
    /// A checkpointed tenant that was deployed to hardware no longer fits on
    /// the restoring device — a checkpoint taken on a large device (`f1`)
    /// must not silently land in software when restored onto a small one
    /// (`de10`); the caller decides whether to restore elsewhere.
    RestoreCapacity {
        /// The tenant that failed re-admission.
        app: u64,
        /// The device that rejected it.
        device: String,
        /// Human-readable shortfall description.
        detail: String,
    },
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::UnknownApp(id) => write!(f, "unknown application {}", id),
            HvError::UnknownNode(id) => write!(f, "unknown node {}", id),
            HvError::SoftwareCapacity { tenants, capacity } => write!(
                f,
                "node is at software capacity ({} tenants, capacity {})",
                tenants, capacity
            ),
            HvError::Injected(site) => write!(f, "injected fault: {}", site),
            HvError::RecoveryExhausted { attempts, detail } => write!(
                f,
                "crash recovery exhausted after {} attempt(s): {}",
                attempts, detail
            ),
            HvError::Fabric(e) => write!(f, "fabric error: {}", e),
            HvError::Hull(e) => write!(f, "protection error: {}", e),
            HvError::Compile(e) => write!(f, "compilation error: {}", e),
            HvError::NotDeployed(id) => write!(f, "application {} is not deployed", id),
            HvError::Checkpoint(e) => write!(f, "checkpoint error: {}", e),
            HvError::Restore(what) => write!(f, "fleet restore rejected: {}", what),
            HvError::RestoreCapacity {
                app,
                device,
                detail,
            } => write!(
                f,
                "checkpointed application {} does not fit device '{}': {}",
                app, device, detail
            ),
        }
    }
}

impl std::error::Error for HvError {}

impl From<CheckpointError> for HvError {
    fn from(e: CheckpointError) -> Self {
        HvError::Checkpoint(e)
    }
}

impl From<SnapshotError> for HvError {
    fn from(e: SnapshotError) -> Self {
        HvError::Checkpoint(CheckpointError::Decode(e))
    }
}

impl From<FabricError> for HvError {
    fn from(e: FabricError) -> Self {
        HvError::Fabric(e)
    }
}

impl From<HullError> for HvError {
    fn from(e: HullError) -> Self {
        HvError::Hull(e)
    }
}

impl From<VlogError> for HvError {
    fn from(e: VlogError) -> Self {
        HvError::Compile(e)
    }
}

/// An entry in the hypervisor's engine table (Figure 6).
#[derive(Debug, Clone)]
pub struct EngineEntry {
    /// Engine identifier returned to the instance.
    pub id: EngineId,
    /// Owning application.
    pub app: AppId,
    /// Name of the generated module inside the monolithic program.
    pub module_name: String,
    /// Source text of the transformed sub-program.
    pub source: String,
    /// The Morphlet representing this engine inside the AmorphOS hull.
    pub morphlet: MorphletId,
}

/// The result of deploying an application to the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployOutcome {
    /// Engine identifier assigned by the hypervisor.
    pub engine: u64,
    /// Total simulated latency of the deployment (compile + handshake + reconfig +
    /// state transfer) in nanoseconds.
    pub latency_ns: u64,
    /// Whether the bitstream came from the compilation cache.
    pub cache_hit: bool,
    /// The fabric's global clock after deployment.
    pub global_clock_hz: u64,
    /// Whether this deployment forced the global clock down (Figure 12).
    pub clock_lowered: bool,
}

/// Per-application statistics for one scheduling round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// The application.
    pub app: u64,
    /// Whether the app actually executed this round (false when descheduled by
    /// temporal multiplexing, quarantined, or already finished).
    pub ran: bool,
    /// Virtual clock ticks executed this round.
    pub ticks: u64,
    /// Task traps serviced this round.
    pub tasks: u64,
    /// Runtime events ($save/$restart/$yield/$finish) raised this round, in
    /// execution order. Reported in stable tenant order regardless of the
    /// scheduling policy.
    pub events: Vec<RuntimeEvent>,
    /// Engine error raised mid-round, if any. The tenant is quarantined (it
    /// idles in subsequent rounds) rather than aborting the other tenants'
    /// round; see [`Hypervisor::quarantined`].
    pub error: Option<String>,
    /// The erroring tenant's flight-recorder dump at the moment of failure
    /// (`None` when there was no error or the recorder was empty, e.g. with
    /// telemetry disabled). Deterministic content — virtual ticks and event
    /// details only — so round stats stay bit-identical across scheduling
    /// policies. The same dump is stored in the quarantine entry; see
    /// [`Hypervisor::quarantine_report`].
    pub postmortem: Option<String>,
}

impl RoundStats {
    fn idle(app: AppId) -> Self {
        RoundStats {
            app: app.0,
            ran: false,
            ticks: 0,
            tasks: 0,
            events: Vec::new(),
            error: None,
            postmortem: None,
        }
    }
}

struct AppSlot {
    id: AppId,
    /// `None` only transiently while the tenant's round job is in flight on
    /// the worker pool; always `Some` between `run_round` calls.
    runtime: Option<Runtime>,
    domain: DomainId,
    io_bound: bool,
    engine: Option<EngineId>,
}

impl AppSlot {
    fn runtime(&self) -> &Runtime {
        self.runtime.as_ref().expect("runtime resident in slot")
    }

    fn runtime_mut(&mut self) -> &mut Runtime {
        self.runtime.as_mut().expect("runtime resident in slot")
    }
}

/// The SYNERGY hypervisor for one device.
pub struct Hypervisor {
    device: Device,
    fabric: Fabric,
    cache: BitstreamCache,
    hull: Hull,
    apps: BTreeMap<AppId, AppSlot>,
    engines: BTreeMap<EngineId, EngineEntry>,
    next_app: u64,
    next_engine: u64,
    clock: SimClock,
    io_cursor: usize,
    handshakes: u64,
    round_tick_cap: u64,
    policy: EnginePolicy,
    /// Compiled-engine tier pushed to every current and future tenant
    /// runtime (`None` leaves each runtime's own/default tier in place).
    tier: Option<CompiledTier>,
    /// Netlist optimization level pushed to every current and future tenant
    /// runtime (`None` leaves each runtime's own/default level in place).
    opt_level: Option<OptLevel>,
    sched: SchedPolicy,
    /// Persistent worker pool, spawned lazily on the first parallel round and
    /// rebuilt when the requested worker count changes.
    pool: Option<WorkerPool>,
    drr: DeficitRoundRobin,
    /// Quarantined tenants, each with the flight-recorder postmortem captured
    /// when the engine error occurred (empty string when the recorder had
    /// nothing, e.g. telemetry disabled). Only the app ids enter the fleet
    /// wire format — postmortems do not survive a checkpoint/restore.
    quarantined: BTreeMap<AppId, String>,
    /// Host nanoseconds each tenant's job spent executing in the last round
    /// (telemetry for the scaling benchmark; not part of round semantics).
    last_round_host_ns: Vec<(u64, u64)>,
    /// Virtual ticks the whole fleet executed in the most recent round —
    /// deterministic (the cluster control plane keys placement and
    /// rebalancing decisions off it), unconditionally updated regardless of
    /// the telemetry gate.
    last_round_ticks: u64,
    /// Optional cap on connected tenants. Host policy like the scheduling
    /// policy — never serialized into fleet checkpoints; a restored fleet
    /// adopts the restoring hypervisor's capacity.
    tenant_capacity: Option<usize>,
    /// Hypervisor-level telemetry: scheduler/placement metrics plus a flight
    /// recorder of scheduling decisions and errors. Behind a `Mutex` so
    /// `&self` accessors can record; never contended (the hypervisor itself
    /// is single-threaded — only round jobs fan out).
    telem: Mutex<Telemetry>,
    /// Scheduling rounds run so far (also the virtual timestamp given to
    /// hypervisor-level trace events).
    rounds: u64,
}

impl Hypervisor {
    /// Creates a hypervisor managing one device, with a fresh bitstream cache.
    pub fn new(device: Device) -> Self {
        Self::with_cache(device, BitstreamCache::new())
    }

    /// Creates a hypervisor that shares an existing bitstream cache (e.g. with
    /// other hypervisors in a cluster).
    pub fn with_cache(device: Device, cache: BitstreamCache) -> Self {
        let fabric = Fabric::new(device.clone());
        let hull = Hull::new(&device);
        Hypervisor {
            device,
            fabric,
            cache,
            hull,
            apps: BTreeMap::new(),
            engines: BTreeMap::new(),
            next_app: 1,
            next_engine: 1,
            clock: SimClock::new(),
            io_cursor: 0,
            handshakes: 0,
            round_tick_cap: 100_000,
            policy: EnginePolicy::Interpreter,
            tier: None,
            opt_level: None,
            sched: SchedPolicy::Sequential,
            pool: None,
            drr: DeficitRoundRobin::new(),
            quarantined: BTreeMap::new(),
            last_round_host_ns: Vec::new(),
            last_round_ticks: 0,
            tenant_capacity: None,
            telem: Mutex::new(Telemetry::default()),
            rounds: 0,
        }
    }

    /// Locks the hypervisor's telemetry block, shrugging off poison.
    fn telem_lock(&self) -> std::sync::MutexGuard<'_, Telemetry> {
        self.telem.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Direct telemetry access for sibling modules (the cluster records
    /// migration/placement metrics on the node that hosts the tenant).
    pub(crate) fn telemetry_mut(&mut self) -> &mut Telemetry {
        self.telem.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// A connected tenant's placement metadata: `(domain, io_bound,
    /// deployed)`. The cluster captures this before disconnecting a tenant
    /// for migration so a failed migration can reconnect it faithfully.
    pub(crate) fn slot_meta(&self, id: AppId) -> Result<(DomainId, bool, bool), HvError> {
        self.apps
            .get(&id)
            .map(|s| (s.domain, s.io_bound, s.engine.is_some()))
            .ok_or(HvError::UnknownApp(id.0))
    }

    /// Scheduling rounds completed so far (the virtual timestamp of
    /// hypervisor-level trace events).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Records `e` into the hypervisor's flight recorder on the way out, so
    /// every [`HvError`] leaves trace context behind for postmortems.
    fn noted(&self, e: HvError) -> HvError {
        let rounds = self.rounds;
        self.telem_lock()
            .recorder
            .record(rounds, "hv_error", e.to_string());
        e
    }

    /// Sets how scheduling rounds execute tenants: [`SchedPolicy::Sequential`]
    /// (the default) ticks them in tenant order on the calling thread;
    /// [`SchedPolicy::Parallel`] runs them concurrently on a persistent
    /// work-stealing worker pool. Both produce bit-identical stats, events,
    /// and tenant state — parallel rounds are joined in stable tenant order.
    pub fn set_sched_policy(&mut self, sched: SchedPolicy) {
        // Any policy change drops the pool: switching to Sequential must not
        // leave worker threads behind, and a different width needs a rebuild.
        if self.sched != sched {
            self.pool = None;
        }
        self.sched = sched;
    }

    /// The current round-scheduling policy.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.sched
    }

    /// Applications currently quarantined after an engine error (they idle in
    /// scheduling rounds until [`Hypervisor::clear_quarantine`]).
    pub fn quarantined(&self) -> Vec<AppId> {
        self.quarantined.keys().copied().collect()
    }

    /// The flight-recorder postmortem captured when `id` was quarantined:
    /// the tenant's last trace events up to and including the engine error,
    /// one `#seq @tick span: detail` line per event. `None` when the tenant
    /// is not quarantined; empty when the recorder had nothing to say
    /// (telemetry disabled, or the entry was restored from a fleet
    /// checkpoint — postmortems are observability, not architectural state,
    /// and do not survive the wire).
    pub fn quarantine_report(&self, id: AppId) -> Option<&str> {
        self.quarantined.get(&id).map(String::as_str)
    }

    /// Releases an application from quarantine so it is scheduled again.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::UnknownApp`] if the id is not connected.
    pub fn clear_quarantine(&mut self, id: AppId) -> Result<(), HvError> {
        if !self.apps.contains_key(&id) {
            return Err(HvError::UnknownApp(id.0));
        }
        self.quarantined.remove(&id);
        Ok(())
    }

    /// Host nanoseconds each tenant's round job spent executing during the
    /// most recent [`Hypervisor::run_round`], as `(app, ns)` pairs in tenant
    /// order. Scheduler telemetry for the scaling benchmark — deliberately
    /// kept out of [`RoundStats`] so stats stay bit-identical across
    /// scheduling policies.
    ///
    /// Deprecated in favor of [`Hypervisor::metrics`]: the same data now
    /// accumulates in the *non-deterministic* namespace as the
    /// `hv_host_round_ns_total{app=...}` counters, while this raw accessor
    /// keeps only the most recent round. It is not going away (the scaling
    /// benchmark wants per-round values, not cumulative counters), but new
    /// code should read the registry.
    #[deprecated(
        note = "read the hv_host_round_ns_total{app} counters from Hypervisor::metrics(); \
                this accessor only retains the most recent round"
    )]
    pub fn last_round_host_costs(&self) -> &[(u64, u64)] {
        &self.last_round_host_ns
    }

    /// Sets the software-engine selection policy for programs that are not
    /// (or not yet) resident on the fabric: under any policy other than
    /// [`EnginePolicy::Interpreter`] the hypervisor upgrades software-resident
    /// programs to the compiled engine — immediately for already-connected
    /// programs, and from then on at connect and undeploy time.
    ///
    /// The hypervisor never refuses a program, so the upgrade is best-effort:
    /// designs outside the compilable envelope keep the interpreter, even
    /// under [`EnginePolicy::Compiled`]. Strict compiled-only execution is
    /// enforced at runtime creation ([`Runtime::with_policy`]), not here.
    pub fn set_engine_policy(&mut self, policy: EnginePolicy) {
        self.policy = policy;
        for slot in self.apps.values_mut() {
            if slot.engine.is_none() {
                let _ = apply_software_policy(policy, slot.runtime_mut());
            }
        }
    }

    /// Selects the compiled-engine tier for every current and future tenant
    /// (the [`EnginePolicy`] companion knob): programs running on the
    /// compiled engine re-migrate onto the requested tier immediately;
    /// others pick it up at their next software upgrade. Best-effort like
    /// [`Hypervisor::set_engine_policy`] — a program the regalloc
    /// translation cannot handle stays on the stack tier.
    pub fn set_compiled_tier(&mut self, tier: CompiledTier) {
        self.tier = Some(tier);
        for slot in self.apps.values_mut() {
            let _ = slot.runtime_mut().set_compiled_tier(tier);
        }
    }

    /// Selects the netlist optimization level for every current and future
    /// tenant (see [`Runtime::set_opt_level`]): programs on the compiled
    /// engine rebuild immediately; others pick the level up at their next
    /// migration. Like the tier, the level is host policy — it never enters
    /// checkpoint wire formats and migrating tenants adopt the destination
    /// host's level.
    pub fn set_opt_level(&mut self, level: OptLevel) {
        self.opt_level = Some(level);
        for slot in self.apps.values_mut() {
            let _ = slot.runtime_mut().set_opt_level(level);
        }
    }

    /// Caps how many virtual ticks one application may execute per scheduling
    /// round. The cap bounds host-side simulation cost for very fast designs; an
    /// application that hits it simply idles for the rest of the round.
    pub fn set_round_tick_cap(&mut self, cap: u64) {
        self.round_tick_cap = cap.max(1);
    }

    /// The device this hypervisor manages.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The shared bitstream cache.
    pub fn cache(&self) -> &BitstreamCache {
        &self.cache
    }

    /// Simulated wall-clock time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.clock.now_secs()
    }

    /// The fabric's current global clock in Hz.
    pub fn global_clock_hz(&self) -> u64 {
        self.fabric.global_clock_hz()
    }

    /// Number of state-safe handshakes performed (Figure 7).
    pub fn handshakes(&self) -> u64 {
        self.handshakes
    }

    /// Caps how many tenants this node accepts through the *fallible*
    /// admission path ([`Hypervisor::try_connect`]) and how many
    /// [`Hypervisor::deploy`] tolerates before rejecting with
    /// [`HvError::SoftwareCapacity`]. `None` (the default) is unlimited.
    ///
    /// Host policy, like the scheduling policy: the capacity never enters
    /// fleet checkpoints, and the infallible [`Hypervisor::connect`] ignores
    /// it (crash recovery must always be able to park a tenant somewhere).
    pub fn set_tenant_capacity(&mut self, capacity: Option<usize>) {
        self.tenant_capacity = capacity;
    }

    /// The configured software tenant capacity (`None` = unlimited).
    pub fn tenant_capacity(&self) -> Option<usize> {
        self.tenant_capacity
    }

    /// Number of connected tenants (cheaper than `apps().len()`).
    pub fn tenant_count(&self) -> usize {
        self.apps.len()
    }

    /// Virtual ticks the fleet executed in the most recent scheduling round.
    /// Deterministic — bit-identical across [`SchedPolicy`] — and always
    /// tracked (not gated on the telemetry switch), so control-plane
    /// placement decisions can key off it.
    pub fn last_round_ticks(&self) -> u64 {
        self.last_round_ticks
    }

    /// Current fabric occupancy (LUT/FF/BRAM usage and LUT fraction) —
    /// deterministic placement input for the cluster control plane.
    pub fn fabric_utilization(&self) -> synergy_fpga::Utilization {
        self.fabric.utilization()
    }

    /// Capacity-checked admission: rejects with [`HvError::SoftwareCapacity`]
    /// when the node is at its configured tenant capacity, handing the
    /// runtime back to the caller so it can be placed elsewhere. Identical
    /// to [`Hypervisor::connect`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns the runtime together with [`HvError::SoftwareCapacity`] when
    /// the node is full.
    pub fn try_connect(
        &mut self,
        runtime: Runtime,
        domain: DomainId,
        io_bound: bool,
    ) -> Result<AppId, Box<(HvError, Runtime)>> {
        if let Some(cap) = self.tenant_capacity {
            if self.apps.len() >= cap {
                let e = self.noted(HvError::SoftwareCapacity {
                    tenants: self.apps.len(),
                    capacity: cap,
                });
                return Err(Box::new((e, runtime)));
            }
        }
        Ok(self.connect(runtime, domain, io_bound))
    }

    /// Puts a connected tenant into quarantine with an explicit postmortem,
    /// exactly as if its engine had errored mid-round. The cluster control
    /// plane uses this to re-establish quarantine for tenants that crossed
    /// nodes during crash recovery (quarantine travels by app id inside one
    /// fleet frame, but recovery re-admits tenants under fresh ids).
    ///
    /// # Errors
    ///
    /// Returns [`HvError::UnknownApp`] if the id is not connected.
    pub fn force_quarantine(&mut self, id: AppId, postmortem: String) -> Result<(), HvError> {
        if !self.apps.contains_key(&id) {
            return Err(HvError::UnknownApp(id.0));
        }
        self.quarantined.insert(id, postmortem);
        Ok(())
    }

    /// Connects a runtime instance to the hypervisor (step 1 of Figure 6).
    ///
    /// `io_bound` marks streaming applications that contend on the off-device IO
    /// path and are therefore subject to temporal multiplexing (Figure 11).
    pub fn connect(&mut self, mut runtime: Runtime, domain: DomainId, io_bound: bool) -> AppId {
        // Best-effort here: connect is infallible by design (the interpreter
        // always works); undeploy surfaces internal lowering failures.
        if let Some(tier) = self.tier {
            let _ = runtime.set_compiled_tier(tier);
        }
        if let Some(level) = self.opt_level {
            let _ = runtime.set_opt_level(level);
        }
        let _ = apply_software_policy(self.policy, &mut runtime);
        let id = AppId(self.next_app);
        self.next_app += 1;
        self.apps.insert(
            id,
            AppSlot {
                id,
                runtime: Some(runtime),
                domain,
                io_bound,
                engine: None,
            },
        );
        id
    }

    /// Access to a connected application's runtime.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::UnknownApp`] if the id is not connected.
    pub fn app(&self, id: AppId) -> Result<&Runtime, HvError> {
        self.apps
            .get(&id)
            .map(|s| s.runtime())
            .ok_or(HvError::UnknownApp(id.0))
    }

    /// Mutable access to a connected application's runtime.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::UnknownApp`] if the id is not connected.
    pub fn app_mut(&mut self, id: AppId) -> Result<&mut Runtime, HvError> {
        self.apps
            .get_mut(&id)
            .map(|s| s.runtime_mut())
            .ok_or(HvError::UnknownApp(id.0))
    }

    /// Ids of all connected applications.
    pub fn apps(&self) -> Vec<AppId> {
        self.apps.keys().copied().collect()
    }

    /// The coalesced monolithic program: every connected engine's sub-program text
    /// concatenated, with requests routed by engine identifier (§4.1).
    pub fn monolithic_source(&self) -> String {
        let mut out = String::new();
        for entry in self.engines.values() {
            out.push_str(&format!("// engine {} (app {})\n", entry.id.0, entry.app.0));
            out.push_str(&entry.source);
            out.push('\n');
        }
        out
    }

    /// Deploys a connected application onto the fabric: transforms the program,
    /// compiles it (through the cache), runs the state-safe handshake with the
    /// other residents, reprograms the device, and migrates the instance's engine
    /// from software to hardware (steps 2-5 of Figure 6).
    ///
    /// # Errors
    ///
    /// Returns an error if the application is unknown, the transformation fails,
    /// or the fabric cannot admit the design.
    pub fn deploy(&mut self, id: AppId) -> Result<DeployOutcome, HvError> {
        match self.deploy_inner(id) {
            Ok(out) => {
                if synergy_telemetry::enabled() {
                    let rounds = self.rounds;
                    let t = self.telem.get_mut().unwrap_or_else(|e| e.into_inner());
                    t.registry.counter_add(
                        Namespace::Det,
                        "hv_admissions_total",
                        &[("cache", if out.cache_hit { "hit" } else { "miss" })],
                        1,
                    );
                    if out.clock_lowered {
                        t.registry
                            .counter_add(Namespace::Det, "hv_clock_lowerings_total", &[], 1);
                    }
                    t.recorder.record(
                        rounds,
                        "deploy",
                        format!(
                            "app={} engine={} cache_hit={} clock_hz={}",
                            id.0, out.engine, out.cache_hit, out.global_clock_hz
                        ),
                    );
                }
                Ok(out)
            }
            Err(e) => Err(self.noted(e)),
        }
    }

    fn deploy_inner(&mut self, id: AppId) -> Result<DeployOutcome, HvError> {
        let slot = self.apps.get(&id).ok_or(HvError::UnknownApp(id.0))?;
        if let Some(engine) = slot.engine {
            // Already deployed; report the current state.
            return Ok(DeployOutcome {
                engine: engine.0,
                latency_ns: 0,
                cache_hit: true,
                global_clock_hz: self.fabric.global_clock_hz(),
                clock_lowered: false,
            });
        }
        // An over-capacity node rejects new deployments with the same
        // capacity-shaped error the fallible connect path uses, so
        // delegation can move the tenant to a node with headroom
        // (oversubscription can happen through the infallible `connect`).
        if let Some(cap) = self.tenant_capacity {
            if self.apps.len() > cap {
                return Err(HvError::SoftwareCapacity {
                    tenants: self.apps.len(),
                    capacity: cap,
                });
            }
        }
        let slot = self.apps.get_mut(&id).ok_or(HvError::UnknownApp(id.0))?;

        // The instance's compiler sends the sub-program to the hypervisor, which
        // produces a target-specific engine (steps 1-2).
        let transformed = transform(slot.runtime().design(), Default::default())?;
        let synth_options = SynthOptions::synergy(
            &self.device,
            transformed.state.captured_bits() as u64,
            transformed.state.vars.len() as u64,
        );
        let outcome = self.cache.compile(
            &transformed.source,
            &transformed.elab,
            &self.device,
            synth_options,
        );

        // Admission through the AmorphOS hull (protection + placement).
        let morphlet = self.hull.register(
            slot.domain,
            slot.runtime().name().to_string(),
            outcome.bitstream.report,
            if transformed.state.uses_yield {
                Quiescence::ApplicationManaged
            } else {
                Quiescence::Transparent
            },
        );

        // Changing the monolithic program is destructive: run the handshake so
        // every connected instance is between ticks with saved state (Figure 7).
        let handshake_ns = self.state_safe_handshake(Some(id));

        // Reprogram the fabric with the new coalesced design.
        let engine_id = EngineId(self.next_engine);
        self.next_engine += 1;
        let engine_key = format!("engine_{}", engine_id.0);
        let load = self
            .fabric
            .load(&engine_key, outcome.bitstream.clone())
            .map_err(HvError::from)?;

        // Migrate the application itself onto hardware.
        let slot = self.apps.get_mut(&id).expect("slot exists");
        let migrate_ns = slot
            .runtime_mut()
            .migrate_to_hardware(&self.device, &self.cache)
            .map_err(HvError::Compile)?;
        slot.engine = Some(engine_id);

        self.engines.insert(
            engine_id,
            EngineEntry {
                id: engine_id,
                app: id,
                module_name: transformed.module.name.clone(),
                source: transformed.source.clone(),
                morphlet,
            },
        );

        // The shared clock may have dropped: propagate to every resident tenant.
        let global = self.fabric.global_clock_hz();
        for slot in self.apps.values_mut() {
            if slot.engine.is_some() {
                slot.runtime_mut().set_clock_hz(global);
            }
        }

        let latency_ns = outcome.latency_ns + handshake_ns + load.reconfig_latency_ns + migrate_ns;
        self.clock.advance_ns(load.reconfig_latency_ns);
        Ok(DeployOutcome {
            engine: engine_id.0,
            latency_ns,
            cache_hit: outcome.cache_hit,
            global_clock_hz: global,
            clock_lowered: load.clock_lowered,
        })
    }

    /// Removes an application's engine from the fabric (flag-for-removal semantics
    /// of §4.1) and moves its execution back to software.
    ///
    /// # Errors
    ///
    /// Returns an error if the application is unknown or not deployed.
    pub fn undeploy(&mut self, id: AppId) -> Result<(), HvError> {
        match self.undeploy_inner(id) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.noted(e)),
        }
    }

    fn undeploy_inner(&mut self, id: AppId) -> Result<(), HvError> {
        let slot = self.apps.get_mut(&id).ok_or(HvError::UnknownApp(id.0))?;
        let engine = slot.engine.take().ok_or(HvError::NotDeployed(id.0))?;
        // Land on the best software engine in one hop: compiled when the
        // policy allows and the design lowers, otherwise the interpreter.
        if self.policy == EnginePolicy::Interpreter
            || !apply_compiled_migration(slot.runtime_mut())?
        {
            slot.runtime_mut().migrate_to_software();
        }
        if let Some(entry) = self.engines.remove(&engine) {
            self.hull.retire(entry.morphlet)?;
        }
        self.fabric.unload(&format!("engine_{}", engine.0))?;
        let global = self.fabric.global_clock_hz();
        for slot in self.apps.values_mut() {
            if slot.engine.is_some() {
                slot.runtime_mut().set_clock_hz(global);
            }
        }
        Ok(())
    }

    /// Disconnects an application entirely, undeploying it first if necessary.
    ///
    /// # Errors
    ///
    /// Returns an error if the application is unknown.
    pub fn disconnect(&mut self, id: AppId) -> Result<Runtime, HvError> {
        if self
            .apps
            .get(&id)
            .ok_or(HvError::UnknownApp(id.0))?
            .engine
            .is_some()
        {
            self.undeploy(id)?;
        }
        let slot = self.apps.remove(&id).ok_or(HvError::UnknownApp(id.0))?;
        self.quarantined.remove(&id);
        self.drr.forget(id.0);
        Ok(slot.runtime.expect("runtime resident in slot"))
    }

    /// Runs the Figure-7 handshake: every connected instance (other than the one
    /// being deployed, which is still in software) schedules an interrupt between
    /// logical clock ticks, saves its state, and blocks until reprogramming
    /// finishes. Returns the simulated latency added to the deployment.
    fn state_safe_handshake(&mut self, excluding: Option<AppId>) -> u64 {
        let mut latency = 0u64;
        let reconfig = self.device.reconfig_latency_ns;
        let mut any = false;
        for slot in self.apps.values_mut() {
            if Some(slot.id) == excluding || slot.engine.is_none() {
                continue;
            }
            any = true;
            // Save state through get requests, stall for the reconfiguration, then
            // restore through set requests.
            let runtime = slot.runtime_mut();
            let snapshot = runtime.save("__handshake");
            runtime.idle_for_ns(reconfig);
            runtime.restore(&snapshot);
        }
        if any {
            self.handshakes += 1;
            latency += reconfig / 4;
        }
        latency
    }

    /// Runs one scheduling round of `dt` simulated seconds.
    ///
    /// Applications that share the off-device IO path (marked `io_bound` at connect
    /// time) are time-slice scheduled round-robin when more than one of them is
    /// deployed; everything else runs spatially in parallel. Per-tenant tick
    /// budgets come from the deficit-round-robin fairness layer
    /// ([`DeficitRoundRobin`]), and tenants execute sequentially or on the
    /// work-stealing worker pool per [`Hypervisor::set_sched_policy`] — with
    /// bit-identical results either way. Returns per-app statistics for the
    /// round, in stable tenant order.
    ///
    /// A tenant whose engine errors mid-round does not abort the round for
    /// everyone else: the error is surfaced in its [`RoundStats::error`], and
    /// the tenant is quarantined (it idles in subsequent rounds until
    /// [`Hypervisor::clear_quarantine`]).
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` is kept for API stability.
    pub fn run_round(&mut self, dt: f64) -> Result<Vec<RoundStats>, HvError> {
        let dt_ns = (dt * 1e9) as u64;
        // Which io-bound apps are deployed and still running? (A quarantined
        // tenant must not occupy a time slice it cannot use — that would
        // idle every healthy io-bound tenant on its turns.)
        let io_apps: Vec<AppId> = self
            .apps
            .values()
            .filter(|s| {
                s.io_bound
                    && s.engine.is_some()
                    && s.runtime().finished().is_none()
                    && !self.quarantined.contains_key(&s.id)
            })
            .map(|s| s.id)
            .collect();
        let io_pick = if io_apps.len() >= 2 {
            let pick = io_apps[self.io_cursor % io_apps.len()];
            self.io_cursor = (self.io_cursor + 1) % io_apps.len();
            Some(pick)
        } else {
            None
        };

        // Plan phase, in tenant order: decide who runs and grant DRR tick
        // budgets. Deterministic and sequential, so the parallel and
        // sequential execution paths see the exact same schedule.
        let mut runnable: Vec<(AppId, u64)> = Vec::new();
        let mut granted_ticks = 0u64;
        for slot in self.apps.values() {
            if self.quarantined.contains_key(&slot.id) || slot.runtime().finished().is_some() {
                continue;
            }
            // Runnable *and* descheduled tenants accrue quantum: a tenant
            // descheduled by temporal multiplexing carries its allowance
            // forward (bounded) instead of losing it.
            let budget = self.drr.grant(slot.id.0, self.round_tick_cap);
            granted_ticks += budget;
            let descheduled = io_pick.is_some()
                && slot.io_bound
                && slot.engine.is_some()
                && Some(slot.id) != io_pick;
            if !descheduled {
                runnable.push((slot.id, budget));
            }
        }

        // Execution phase: run every scheduled tenant's round job.
        let outcomes: Vec<(AppId, RoundJobResult, u64)> = match self.sched {
            SchedPolicy::Sequential => runnable
                .iter()
                .map(|&(id, budget)| {
                    let slot = self.apps.get_mut(&id).expect("planned app exists");
                    let start = std::time::Instant::now();
                    let result = run_round_job(slot.runtime_mut(), dt_ns, budget);
                    (id, result, start.elapsed().as_nanos() as u64)
                })
                .collect(),
            SchedPolicy::Parallel { .. } => {
                let workers = self.sched.workers();
                let pool = self.pool.get_or_insert_with(|| WorkerPool::new(workers));
                // Ship each tenant's runtime into its job (the execution
                // stack is Send end-to-end); join in submission order and
                // reinstall below, so completion order never leaks into
                // results.
                let jobs: Vec<_> = runnable
                    .iter()
                    .map(|&(id, budget)| {
                        let slot = self.apps.get_mut(&id).expect("planned app exists");
                        let mut runtime = slot.runtime.take().expect("runtime resident in slot");
                        move || {
                            let result = run_round_job(&mut runtime, dt_ns, budget);
                            (runtime, result)
                        }
                    })
                    .collect();
                let joined = pool.run_batch(jobs);
                // Reinstall every surviving runtime *before* re-raising a
                // panic, so one tenant's engine panic (a bug, not the
                // Result-carried error path) cannot destroy its siblings'
                // state. The panicking tenant's runtime was consumed by the
                // unwind; its slot is evicted (fabric/hull resources
                // released) rather than left poisoned.
                let mut panicked: Vec<(AppId, Box<dyn std::any::Any + Send>)> = Vec::new();
                let outcomes: Vec<(AppId, RoundJobResult, u64)> = runnable
                    .iter()
                    .zip(joined)
                    .filter_map(|(&(id, _), (outcome, busy_ns))| match outcome {
                        Ok((runtime, result)) => {
                            let slot = self.apps.get_mut(&id).expect("planned app exists");
                            slot.runtime = Some(runtime);
                            Some((id, result, busy_ns))
                        }
                        Err(payload) => {
                            panicked.push((id, payload));
                            None
                        }
                    })
                    .collect();
                if !panicked.is_empty() {
                    for (id, _) in &panicked {
                        self.evict_after_panic(*id);
                    }
                    let (_, payload) = panicked.swap_remove(0);
                    std::panic::resume_unwind(payload);
                }
                outcomes
            }
        };

        // Join phase, in stable tenant order: charge DRR, quarantine failed
        // tenants, idle everyone who did not run, and assemble stats.
        self.last_round_host_ns.clear();
        let mut by_app: BTreeMap<AppId, (RoundJobResult, u64)> = outcomes
            .into_iter()
            .map(|(id, result, busy)| (id, (result, busy)))
            .collect();
        let mut stats = Vec::new();
        let mut round_ticks = 0u64;
        let mut round_tasks = 0u64;
        let mut charged_ticks = 0u64;
        let mut quarantine_events: Vec<(u64, String)> = Vec::new();
        for slot in self.apps.values_mut() {
            match by_app.remove(&slot.id) {
                Some((job, busy_ns)) => {
                    self.drr.charge(slot.id.0, job.report.ticks);
                    charged_ticks += job.report.ticks;
                    round_ticks += job.report.ticks;
                    round_tasks += job.report.tasks_handled;
                    // A failed tenant's postmortem is its flight-recorder dump
                    // at the moment of the error — it travels on the round
                    // stats *and* the quarantine entry.
                    let postmortem = if let Some(error) = &job.error {
                        let dump = slot.runtime().flight_dump();
                        self.quarantined.insert(slot.id, dump.clone());
                        quarantine_events.push((slot.id.0, error.to_string()));
                        if dump.is_empty() {
                            None
                        } else {
                            Some(dump)
                        }
                    } else {
                        None
                    };
                    self.last_round_host_ns.push((slot.id.0, busy_ns));
                    stats.push(RoundStats {
                        app: slot.id.0,
                        ran: job.report.ticks > 0,
                        ticks: job.report.ticks,
                        tasks: job.report.tasks_handled,
                        events: job.events,
                        error: job.error.map(|e| e.to_string()),
                        postmortem,
                    });
                }
                None => {
                    slot.runtime_mut().idle_for_ns(dt_ns);
                    stats.push(RoundStats::idle(slot.id));
                }
            }
        }
        self.clock.advance_ns(dt_ns);
        self.rounds += 1;
        self.last_round_ticks = round_ticks;
        if synergy_telemetry::enabled() {
            let planned = runnable.len() as u64;
            let joined = stats.len() as u64;
            let rounds = self.rounds;
            let banked: u64 = self.drr.entries().iter().map(|(_, d)| *d).sum();
            let t = self.telem.get_mut().unwrap_or_else(|e| e.into_inner());
            let r = &mut t.registry;
            r.counter_add(Namespace::Det, "hv_rounds_total", &[], 1);
            r.counter_add(Namespace::Det, "hv_round_ticks_total", &[], round_ticks);
            r.counter_add(Namespace::Det, "hv_round_tasks_total", &[], round_tasks);
            // Phase costs in virtual units: plan touches every runnable
            // tenant, dispatch executes ticks, join assembles one stat per
            // tenant.
            r.counter_add(
                Namespace::Det,
                "hv_phase_cost_total",
                &[("phase", "plan")],
                planned,
            );
            r.counter_add(
                Namespace::Det,
                "hv_phase_cost_total",
                &[("phase", "dispatch")],
                round_ticks,
            );
            r.counter_add(
                Namespace::Det,
                "hv_phase_cost_total",
                &[("phase", "join")],
                joined,
            );
            r.counter_add(
                Namespace::Det,
                "hv_drr_granted_ticks_total",
                &[],
                granted_ticks,
            );
            r.counter_add(
                Namespace::Det,
                "hv_drr_charged_ticks_total",
                &[],
                charged_ticks,
            );
            r.gauge_set(Namespace::Det, "hv_drr_banked_ticks", &[], banked as i64);
            if !quarantine_events.is_empty() {
                r.counter_add(
                    Namespace::Det,
                    "hv_quarantines_total",
                    &[],
                    quarantine_events.len() as u64,
                );
            }
            r.observe(
                Namespace::Det,
                "hv_round_latency_ticks",
                &[],
                POW2_BUCKETS,
                round_ticks,
            );
            // Host-side job costs are wall time — non-deterministic by
            // nature, so they live in the quarantined namespace (the
            // metrics-registry extension of `last_round_host_costs`).
            for (app, ns) in &self.last_round_host_ns {
                r.counter_add(
                    Namespace::NonDet,
                    "hv_host_round_ns_total",
                    &[("app", &app.to_string())],
                    *ns,
                );
            }
            t.recorder.record(
                rounds,
                "run_round",
                format!(
                    "tenants={} ticks={} quarantined={}",
                    planned,
                    round_ticks,
                    quarantine_events.len()
                ),
            );
            for (app, error) in &quarantine_events {
                t.recorder
                    .record(rounds, "quarantine", format!("app={}: {}", app, error));
            }
        }
        Ok(stats)
    }

    /// Telemetry from the parallel worker pool (`None` until the first
    /// parallel round spawns it).
    pub fn pool_stats(&self) -> Option<crate::sched::PoolStats> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// A point-in-time snapshot of this node's full metrics registry:
    /// hypervisor-level scheduler/placement metrics, occupancy gauges sampled
    /// now, and every tenant's runtime registry merged in under a
    /// `tenant=<id>:<name>` label.
    ///
    /// The deterministic namespace of the snapshot is **bit-identical**
    /// between [`SchedPolicy::Sequential`] and [`SchedPolicy::Parallel`] for
    /// the same fleet and rounds (compare with
    /// [`synergy_telemetry::Registry::det_text`]); host-time data — per-job
    /// wall time, worker-pool steal/park counts — is confined to the
    /// non-deterministic namespace, extending the
    /// [`Hypervisor::last_round_host_costs`] split to the whole registry.
    pub fn metrics(&self) -> Registry {
        let mut out = self.telem_lock().registry.clone();
        // Occupancy is a property of "now", not of any one event: sample it
        // at snapshot time rather than trying to keep gauges in step with
        // every deploy/undeploy.
        let u = self.fabric.utilization();
        out.gauge_set(Namespace::Det, "hv_fabric_luts", &[], u.luts as i64);
        out.gauge_set(Namespace::Det, "hv_fabric_ffs", &[], u.ffs as i64);
        out.gauge_set(
            Namespace::Det,
            "hv_fabric_bram_bits",
            &[],
            u.bram_bits as i64,
        );
        out.gauge_set(
            Namespace::Det,
            "hv_fabric_lut_permille",
            &[],
            (u.lut_fraction * 1000.0) as i64,
        );
        out.gauge_set(
            Namespace::Det,
            "hv_hull_active_morphlets",
            &[],
            self.hull.active().len() as i64,
        );
        out.gauge_set(
            Namespace::Det,
            "hv_hull_resident_luts",
            &[],
            self.hull.resident_luts() as i64,
        );
        out.gauge_set(Namespace::Det, "hv_tenants", &[], self.apps.len() as i64);
        out.gauge_set(
            Namespace::Det,
            "hv_quarantined",
            &[],
            self.quarantined.len() as i64,
        );
        for slot in self.apps.values() {
            let label = format!("{}:{}", slot.id.0, slot.runtime().name());
            out.merge_labeled(&slot.runtime().metrics(), "tenant", &label);
        }
        if let Some(ps) = self.pool_stats() {
            out.gauge_set(
                Namespace::NonDet,
                "hv_pool_jobs_executed",
                &[],
                ps.executed as i64,
            );
            out.gauge_set(Namespace::NonDet, "hv_pool_steals", &[], ps.steals as i64);
            out.gauge_set(Namespace::NonDet, "hv_pool_parks", &[], ps.parks as i64);
        }
        out
    }

    /// The hypervisor's own flight-recorder dump (scheduling rounds, deploys,
    /// quarantines, errors), oldest event first.
    pub fn flight_dump(&self) -> String {
        self.telem_lock().recorder.dump()
    }

    /// Removes every trace of a tenant whose round job panicked (its runtime
    /// was consumed by the unwind): the engine-table entry, the hull
    /// morphlet, and its fabric region, with the global clock re-propagated
    /// — the resource-release half of [`Hypervisor::undeploy`], minus the
    /// impossible software migration. Best-effort by design: this runs on
    /// the way to re-raising the panic.
    fn evict_after_panic(&mut self, id: AppId) {
        let Some(slot) = self.apps.remove(&id) else {
            return;
        };
        self.drr.forget(id.0);
        self.quarantined.remove(&id);
        if let Some(engine) = slot.engine {
            if let Some(entry) = self.engines.remove(&engine) {
                let _ = self.hull.retire(entry.morphlet);
            }
            let _ = self.fabric.unload(&format!("engine_{}", engine.0));
            let global = self.fabric.global_clock_hz();
            for slot in self.apps.values_mut() {
                if slot.engine.is_some() {
                    slot.runtime_mut().set_clock_hz(global);
                }
            }
        }
    }

    /// Serializes the whole fleet — every tenant's durable checkpoint plus
    /// the hypervisor's scheduler state (DRR deficits, temporal-multiplexing
    /// cursor, quarantine set, id counters, engine policy/tier knobs, and
    /// the simulated clock) — into one `synergy-snapshot` fleet frame.
    ///
    /// Call between scheduling rounds, when every tenant is quiesced at a
    /// tick boundary. The round-scheduling policy is deliberately *not*
    /// captured: a restored fleet runs under whatever [`SchedPolicy`] the
    /// restoring hypervisor has (rounds are bit-identical either way).
    ///
    /// ## Fleet payload layout (wire-format version 1)
    ///
    /// | field | encoding |
    /// |-------|----------|
    /// | source device name | string (diagnostics only) |
    /// | engine policy | `u8`: 0 interpreter, 1 compiled, 2 auto |
    /// | tier knob | `u8`: 0 unset, 1 stack, 2 regalloc |
    /// | round tick cap, io cursor, handshakes, next app, next engine, clock ns | 6 × `u64` |
    /// | quarantined | `u32` n × `u64` app id |
    /// | DRR deficits | `u32` n × (`u64` app, `u64` deficit) |
    /// | tenants | `u32` n × (`u64` id, `u64` domain, `bool` io-bound, `bool` deployed (+ `u64` engine id), runtime-checkpoint blob) |
    ///
    /// Each tenant blob is byte-for-byte a [`Runtime::save_checkpoint`]
    /// frame — the same bytes an on-disk single-tenant checkpoint (or
    /// `Cluster::live_migrate`) uses.
    pub fn checkpoint_fleet(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.device.name);
        w.put_u8(match self.policy {
            EnginePolicy::Interpreter => 0,
            EnginePolicy::Compiled => 1,
            EnginePolicy::Auto => 2,
        });
        w.put_u8(match self.tier {
            None => 0,
            Some(CompiledTier::Stack) => 1,
            Some(CompiledTier::RegAlloc) => 2,
        });
        w.put_u64(self.round_tick_cap);
        w.put_u64(self.io_cursor as u64);
        w.put_u64(self.handshakes);
        w.put_u64(self.next_app);
        w.put_u64(self.next_engine);
        w.put_u64(self.clock.now_ns());
        w.put_u32(self.quarantined.len() as u32);
        for id in self.quarantined.keys() {
            w.put_u64(id.0);
        }
        let drr = self.drr.entries();
        w.put_u32(drr.len() as u32);
        for (app, deficit) in drr {
            w.put_u64(app);
            w.put_u64(deficit);
        }
        w.put_u32(self.apps.len() as u32);
        for slot in self.apps.values() {
            w.put_u64(slot.id.0);
            w.put_u64(slot.domain.0);
            w.put_bool(slot.io_bound);
            match slot.engine {
                None => w.put_bool(false),
                Some(engine) => {
                    w.put_bool(true);
                    w.put_u64(engine.0);
                }
            }
            w.put_blob(&slot.runtime().save_checkpoint());
        }
        w.into_frame(KIND_FLEET)
    }

    /// Restores a fleet checkpoint into this (empty) hypervisor: every
    /// tenant is rebuilt from its embedded runtime checkpoint, tenants that
    /// were deployed are re-admitted through synthesis, the AmorphOS hull,
    /// and fabric placement — re-validating capacity on *this* device — and
    /// the scheduler state (DRR, quarantine, io cursor, clocks) is restored
    /// so subsequent rounds are bit-identical to the uninterrupted fleet.
    ///
    /// The restoring hypervisor keeps its own [`SchedPolicy`]: a fleet
    /// checkpointed under a sequential scheduler restarts cleanly into a
    /// parallel one and vice versa.
    ///
    /// Returns the restored application ids in tenant order.
    ///
    /// # Errors
    ///
    /// * [`HvError::Restore`] if this hypervisor already has tenants.
    /// * [`HvError::Checkpoint`] for undecodable or unrebuildable bytes
    ///   (truncation, corruption, unknown version — always typed).
    /// * [`HvError::RestoreCapacity`] when a tenant deployed at capture time
    ///   no longer fits this device's fabric — the checkpoint is *not*
    ///   silently degraded to software execution.
    pub fn restore_fleet(&mut self, bytes: &[u8]) -> Result<Vec<AppId>, HvError> {
        match self.restore_fleet_inner(bytes) {
            Ok(ids) => Ok(ids),
            Err(e) => Err(self.noted(e)),
        }
    }

    fn restore_fleet_inner(&mut self, bytes: &[u8]) -> Result<Vec<AppId>, HvError> {
        if !self.apps.is_empty() {
            return Err(HvError::Restore(format!(
                "hypervisor already has {} connected tenant(s)",
                self.apps.len()
            )));
        }
        let payload = decode_frame_of(bytes, KIND_FLEET)?;
        let mut r = Reader::new(payload);
        let _source_device = r.get_str().map_err(HvError::from)?;
        let policy = match r.get_u8()? {
            0 => EnginePolicy::Interpreter,
            1 => EnginePolicy::Compiled,
            2 => EnginePolicy::Auto,
            tag => {
                return Err(SnapshotError::Malformed(format!("unknown policy tag {}", tag)).into())
            }
        };
        let tier = match r.get_u8()? {
            0 => None,
            1 => Some(CompiledTier::Stack),
            2 => Some(CompiledTier::RegAlloc),
            tag => {
                return Err(SnapshotError::Malformed(format!("unknown tier tag {}", tag)).into())
            }
        };
        let round_tick_cap = r.get_u64()?;
        let io_cursor = r.get_u64()? as usize;
        let handshakes = r.get_u64()?;
        let next_app = r.get_u64()?;
        let next_engine = r.get_u64()?;
        let clock_ns = r.get_u64()?;
        let n_quarantined = r.get_count(8)?;
        // The wire carries ids only; postmortems are observability and start
        // empty after a restore.
        let mut quarantined = BTreeMap::new();
        for _ in 0..n_quarantined {
            quarantined.insert(AppId(r.get_u64()?), String::new());
        }
        let n_drr = r.get_count(16)?;
        let mut drr = Vec::with_capacity(n_drr);
        for _ in 0..n_drr {
            drr.push((r.get_u64()?, r.get_u64()?));
        }
        struct TenantRecord {
            id: AppId,
            domain: DomainId,
            io_bound: bool,
            engine: Option<EngineId>,
            runtime: Runtime,
        }
        let n_apps = r.get_count(19)?;
        let mut tenants = Vec::with_capacity(n_apps);
        for _ in 0..n_apps {
            let id = AppId(r.get_u64()?);
            let domain = DomainId(r.get_u64()?);
            let io_bound = r.get_bool()?;
            let engine = if r.get_bool()? {
                Some(EngineId(r.get_u64()?))
            } else {
                None
            };
            let blob = r.get_blob()?;
            let runtime = Runtime::restore_checkpoint(blob)?;
            tenants.push(TenantRecord {
                id,
                domain,
                io_bound,
                engine,
                runtime,
            });
        }
        r.finish().map_err(HvError::from)?;

        // Planning pass: re-run hardware admission (transform + synthesis +
        // capacity) for every deployed tenant against *this* device before
        // mutating any hypervisor state, so a failed restore leaves the
        // hypervisor untouched and retryable elsewhere. Resources are summed
        // cumulatively: tenants that fit individually but not collectively
        // are rejected here too (the fabric is empty — `apps` is — so the
        // cumulative sum is exactly what `Fabric::admits` would see).
        //
        // The capacity bug this guards against: a fleet checkpointed on a
        // large device must not silently restore its hardware tenants into
        // software on a smaller one.
        let mut plans: Vec<Option<(synergy_transform::Transformed, CompileOutcome)>> =
            Vec::with_capacity(tenants.len());
        let (mut luts, mut ffs, mut bram_bits) = (0u64, 0u64, 0u64);
        for record in &tenants {
            if record.engine.is_none() {
                plans.push(None);
                continue;
            }
            let transformed = transform(record.runtime.design(), Default::default())?;
            let synth_options = SynthOptions::synergy(
                &self.device,
                transformed.state.captured_bits() as u64,
                transformed.state.vars.len() as u64,
            );
            let outcome = self.cache.compile(
                &transformed.source,
                &transformed.elab,
                &self.device,
                synth_options,
            );
            luts += outcome.bitstream.report.luts;
            ffs += outcome.bitstream.report.ffs;
            bram_bits += outcome.bitstream.report.bram_bits;
            if luts > self.device.lut_capacity
                || ffs > self.device.ff_capacity
                || bram_bits > self.device.bram_bits
            {
                return Err(HvError::RestoreCapacity {
                    app: record.id.0,
                    device: self.device.name.clone(),
                    detail: format!(
                        "needs {} LUTs / {} FFs / {} BRAM bits ({} / {} / {} cumulative); \
                         device offers {} / {} / {}",
                        outcome.bitstream.report.luts,
                        outcome.bitstream.report.ffs,
                        outcome.bitstream.report.bram_bits,
                        luts,
                        ffs,
                        bram_bits,
                        self.device.lut_capacity,
                        self.device.ff_capacity,
                        self.device.bram_bits
                    ),
                });
            }
            plans.push(Some((transformed, outcome)));
        }

        // Apply: scheduler state first, then tenants, loading each planned
        // hardware admission onto the hull + fabric.
        self.policy = policy;
        self.tier = tier;
        self.round_tick_cap = round_tick_cap;
        self.io_cursor = io_cursor;
        self.handshakes = handshakes;
        self.next_app = next_app;
        self.next_engine = next_engine;
        self.clock = SimClock::new();
        self.clock.advance_ns(clock_ns);
        self.quarantined = quarantined;
        self.drr.restore_entries(drr);

        let mut ids = Vec::with_capacity(tenants.len());
        for (record, plan) in tenants.into_iter().zip(plans) {
            let TenantRecord {
                id,
                domain,
                io_bound,
                engine,
                mut runtime,
            } = record;
            if let (Some(engine_id), Some((transformed, outcome))) = (engine, plan) {
                let morphlet = self.hull.register(
                    domain,
                    runtime.name().to_string(),
                    outcome.bitstream.report,
                    if transformed.state.uses_yield {
                        Quiescence::ApplicationManaged
                    } else {
                        Quiescence::Transparent
                    },
                );
                self.fabric
                    .load(
                        &format!("engine_{}", engine_id.0),
                        outcome.bitstream.clone(),
                    )
                    .map_err(HvError::from)?;
                // Re-seat the tenant's engine on *this* device without
                // advancing simulated time (restore is not a simulated
                // event; the checkpoint already carries the timeline) —
                // unless the checkpoint was taken on the same device type,
                // in which case the engine `restore_checkpoint` built is
                // already correct.
                if runtime.mode() != ExecMode::Hardware(self.device.name.clone()) {
                    runtime
                        .rehome_hardware(&self.device, &self.cache)
                        .map_err(HvError::Compile)?;
                }
                self.engines.insert(
                    engine_id,
                    EngineEntry {
                        id: engine_id,
                        app: id,
                        module_name: transformed.module.name.clone(),
                        source: transformed.source.clone(),
                        morphlet,
                    },
                );
            }
            self.apps.insert(
                id,
                AppSlot {
                    id,
                    runtime: Some(runtime),
                    domain,
                    io_bound,
                    engine,
                },
            );
            ids.push(id);
        }

        // Propagate the (re-established) global clock to hardware tenants.
        let global = self.fabric.global_clock_hz();
        for slot in self.apps.values_mut() {
            if slot.engine.is_some() {
                slot.runtime_mut().set_clock_hz(global);
            }
        }
        Ok(ids)
    }
}

/// Upgrades a software-resident runtime per the engine policy. Uncompilable
/// designs keep the interpreter; internal lowering failures surface so a
/// codegen regression cannot silently degrade the fleet.
fn apply_software_policy(policy: EnginePolicy, runtime: &mut Runtime) -> Result<(), HvError> {
    if policy != EnginePolicy::Interpreter && runtime.mode() == ExecMode::Software {
        apply_compiled_migration(runtime)?;
    }
    Ok(())
}

/// Attempts the compiled-engine migration. Returns `Ok(false)` when the design
/// is outside the compilable envelope (keep the current engine), `Ok(true)` on
/// success, and an error for internal lowering failures.
fn apply_compiled_migration(runtime: &mut Runtime) -> Result<bool, HvError> {
    match runtime.migrate_to_compiled() {
        Ok(_) => Ok(true),
        Err(VlogError::Unsupported(_)) => Ok(false),
        Err(e) => Err(HvError::Compile(e)),
    }
}

/// Everything one tenant's round job produced. Errors are carried as data —
/// a hostile or broken tenant must not abort the other tenants' round.
struct RoundJobResult {
    report: RunReport,
    events: Vec<RuntimeEvent>,
    error: Option<VlogError>,
}

/// Runs a runtime until roughly `dt_ns` of its simulated time has elapsed or
/// its DRR tick budget is exhausted (whichever comes first), then idles it to
/// the end of the round so every tenant's simulated clock stays aligned.
///
/// This is the body of a scheduling-round job: it owns no hypervisor state,
/// so it runs identically on the calling thread (sequential policy) and on a
/// pool worker (parallel policy).
fn run_round_job(runtime: &mut Runtime, dt_ns: u64, tick_budget: u64) -> RoundJobResult {
    // The per-tenant "run_round" span: one flight-recorder event per round
    // this tenant executes, shared verbatim by the sequential and parallel
    // paths (both funnel through this function), so recorder contents stay
    // policy-independent.
    if synergy_telemetry::enabled() {
        runtime.record_event(
            "run_round",
            format!(
                "tenant={} dt_ns={} budget={}",
                runtime.name(),
                dt_ns,
                tick_budget
            ),
        );
    }
    let mut total = RunReport::default();
    let mut events = Vec::new();
    let mut error = None;
    // Probe with a small batch to estimate per-tick cost, then run the rest.
    let mut remaining = dt_ns;
    let mut batch = 16u64.min(tick_budget.max(1));
    while remaining > 0 && runtime.finished().is_none() && total.ticks < tick_budget {
        let report = match runtime.run_ticks(batch) {
            Ok((report, mut batch_events)) => {
                events.append(&mut batch_events);
                report
            }
            Err(e) => {
                error = Some(e);
                break;
            }
        };
        total.ticks += report.ticks;
        total.native_cycles += report.native_cycles;
        total.abi_requests += report.abi_requests;
        total.tasks_handled += report.tasks_handled;
        total.elapsed_ns += report.elapsed_ns;
        if report.ticks == 0 || report.elapsed_ns == 0 {
            break;
        }
        if report.elapsed_ns >= remaining {
            break;
        }
        remaining -= report.elapsed_ns;
        let per_tick = (report.elapsed_ns / report.ticks).max(1);
        // Adaptive refinement: size the next hardware batch to fill the remaining
        // quantum without overshooting too far (§6.2).
        batch = (remaining / per_tick)
            .clamp(1, 8192)
            .min(tick_budget - total.ticks);
    }
    if total.elapsed_ns < dt_ns {
        runtime.idle_for_ns(dt_ns - total.elapsed_ns);
    }
    RoundJobResult {
        report: total,
        events,
        error,
    }
}

impl fmt::Debug for Hypervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hypervisor")
            .field("device", &self.device.name)
            .field("apps", &self.apps.len())
            .field("engines", &self.engines.len())
            .field("global_clock_hz", &self.fabric.global_clock_hz())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
        module Counter(input wire clock, output wire [31:0] out);
            reg [31:0] count = 0;
            always @(posedge clock) count <= count + 1;
            assign out = count;
        endmodule
    "#;

    const STREAMER: &str = r#"
        module Stream(input wire clock, output wire [31:0] out);
            integer fd = $fopen("stream.bin");
            reg [31:0] r = 0;
            reg [31:0] reads = 0;
            always @(posedge clock) begin
                $fread(fd, r);
                if (!$feof(fd)) reads <= reads + 1;
            end
            assign out = reads;
        endmodule
    "#;

    fn counter_runtime(name: &str) -> Runtime {
        Runtime::new(name, COUNTER, "Counter", "clock").unwrap()
    }

    fn streamer_runtime(name: &str, items: u64) -> Runtime {
        let mut rt = Runtime::new(name, STREAMER, "Stream", "clock").unwrap();
        rt.add_file("stream.bin", (0..items).collect());
        // Run a couple of software ticks so $fopen executes before migration.
        rt.run_ticks(2).unwrap();
        rt
    }

    use synergy_runtime::ExecMode;

    #[test]
    fn connect_and_deploy_single_app() {
        let mut hv = Hypervisor::new(Device::f1());
        let app = hv.connect(counter_runtime("counter"), DomainId(1), false);
        let outcome = hv.deploy(app).unwrap();
        assert!(outcome.latency_ns > 0);
        assert!(!outcome.cache_hit);
        assert_eq!(hv.app(app).unwrap().mode(), ExecMode::Hardware("f1".into()));
        assert!(hv.monolithic_source().contains("Counter__synergy"));
    }

    #[test]
    fn spatial_multiplexing_coalesces_programs() {
        let mut hv = Hypervisor::new(Device::f1());
        let a = hv.connect(counter_runtime("a"), DomainId(1), false);
        let b = hv.connect(counter_runtime("b"), DomainId(2), false);
        hv.deploy(a).unwrap();
        hv.deploy(b).unwrap();
        // Both engines are in the engine table and the combined program.
        let mono = hv.monolithic_source();
        assert_eq!(mono.matches("module Counter__synergy").count(), 2);
        // Both make progress in the same round.
        let stats = hv.run_round(0.0002).unwrap();
        assert!(stats.iter().all(|s| s.ran));
        assert!(hv.app(a).unwrap().get_bits("count").unwrap().to_u64() > 0);
        assert!(hv.app(b).unwrap().get_bits("count").unwrap().to_u64() > 0);
    }

    #[test]
    fn second_deploy_triggers_handshake() {
        let mut hv = Hypervisor::new(Device::f1());
        let a = hv.connect(counter_runtime("a"), DomainId(1), false);
        let b = hv.connect(counter_runtime("b"), DomainId(2), false);
        hv.deploy(a).unwrap();
        assert_eq!(hv.handshakes(), 0, "no residents to quiesce yet");
        hv.deploy(b).unwrap();
        assert_eq!(
            hv.handshakes(),
            1,
            "resident instance a must reach a safe state"
        );
    }

    #[test]
    fn deploying_same_app_twice_is_idempotent() {
        let mut hv = Hypervisor::new(Device::f1());
        let a = hv.connect(counter_runtime("a"), DomainId(1), false);
        let first = hv.deploy(a).unwrap();
        let second = hv.deploy(a).unwrap();
        assert_eq!(first.engine, second.engine);
        assert_eq!(second.latency_ns, 0);
    }

    #[test]
    fn undeploy_returns_app_to_software_and_frees_fabric() {
        let mut hv = Hypervisor::new(Device::f1());
        let a = hv.connect(counter_runtime("a"), DomainId(1), false);
        hv.deploy(a).unwrap();
        hv.run_round(0.0002).unwrap();
        let before = hv.app(a).unwrap().get_bits("count").unwrap().to_u64();
        hv.undeploy(a).unwrap();
        assert_eq!(hv.app(a).unwrap().mode(), ExecMode::Software);
        // State survives the move back to software.
        assert_eq!(
            hv.app(a).unwrap().get_bits("count").unwrap().to_u64(),
            before
        );
        assert!(hv.monolithic_source().is_empty());
        assert!(matches!(hv.undeploy(a), Err(HvError::NotDeployed(_))));
    }

    #[test]
    fn temporal_multiplexing_deschedules_contending_streams() {
        let mut hv = Hypervisor::new(Device::de10());
        let a = hv.connect(streamer_runtime("regex", 1_000_000), DomainId(1), true);
        let b = hv.connect(streamer_runtime("nw", 1_000_000), DomainId(2), true);
        hv.deploy(a).unwrap();
        hv.deploy(b).unwrap();
        // With two IO-bound apps deployed, each round only one of them runs.
        let r1 = hv.run_round(0.005).unwrap();
        let ran1: Vec<u64> = r1.iter().filter(|s| s.ran).map(|s| s.app).collect();
        let r2 = hv.run_round(0.005).unwrap();
        let ran2: Vec<u64> = r2.iter().filter(|s| s.ran).map(|s| s.app).collect();
        assert_eq!(ran1.len(), 1);
        assert_eq!(ran2.len(), 1);
        assert_ne!(ran1[0], ran2[0], "round-robin alternates the IO path");
    }

    #[test]
    fn single_stream_is_not_descheduled() {
        let mut hv = Hypervisor::new(Device::de10());
        let a = hv.connect(streamer_runtime("regex", 100_000), DomainId(1), true);
        hv.deploy(a).unwrap();
        let stats = hv.run_round(0.005).unwrap();
        assert!(stats[0].ran);
    }

    #[test]
    fn disconnect_returns_the_runtime() {
        let mut hv = Hypervisor::new(Device::f1());
        let a = hv.connect(counter_runtime("a"), DomainId(1), false);
        hv.deploy(a).unwrap();
        let rt = hv.disconnect(a).unwrap();
        assert_eq!(rt.name(), "a");
        assert!(hv.apps().is_empty());
        assert!(matches!(hv.app(a), Err(HvError::UnknownApp(_))));
    }

    #[test]
    fn shared_cache_makes_second_hypervisor_deploy_fast() {
        let cache = BitstreamCache::new();
        let mut hv1 = Hypervisor::with_cache(Device::f1(), cache.clone());
        let a = hv1.connect(counter_runtime("a"), DomainId(1), false);
        let first = hv1.deploy(a).unwrap();

        let mut hv2 = Hypervisor::with_cache(Device::f1(), cache);
        let b = hv2.connect(counter_runtime("b"), DomainId(1), false);
        let second = hv2.deploy(b).unwrap();
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert!(second.latency_ns < first.latency_ns);
    }

    #[test]
    fn engine_policy_upgrades_software_residents() {
        let mut hv = Hypervisor::new(Device::f1());
        hv.set_engine_policy(EnginePolicy::Auto);
        // Connect upgrades the interpreter to the compiled engine...
        let a = hv.connect(counter_runtime("a"), DomainId(1), false);
        assert_eq!(hv.app(a).unwrap().mode(), ExecMode::Compiled);
        // ...deploy moves it on to hardware...
        hv.deploy(a).unwrap();
        assert_eq!(hv.app(a).unwrap().mode(), ExecMode::Hardware("f1".into()));
        hv.run_round(0.0002).unwrap();
        let before = hv.app(a).unwrap().get_bits("count").unwrap().to_u64();
        assert!(before > 0);
        // ...and undeploy lands back on the compiled engine, state intact.
        hv.undeploy(a).unwrap();
        assert_eq!(hv.app(a).unwrap().mode(), ExecMode::Compiled);
        assert_eq!(
            hv.app(a).unwrap().get_bits("count").unwrap().to_u64(),
            before
        );
    }

    #[test]
    fn compiled_tier_knob_applies_to_current_and_future_tenants() {
        use synergy_runtime::CompiledTier;
        let mut hv = Hypervisor::new(Device::f1());
        hv.set_engine_policy(EnginePolicy::Auto);
        let a = hv.connect(counter_runtime("a"), DomainId(1), false);
        assert_eq!(
            hv.app(a).unwrap().compiled_tier(),
            Some(CompiledTier::RegAlloc)
        );
        // Knob flips the already-connected tenant...
        hv.set_compiled_tier(CompiledTier::Stack);
        assert_eq!(
            hv.app(a).unwrap().compiled_tier(),
            Some(CompiledTier::Stack)
        );
        // ...and future connects pick it up too.
        let b = hv.connect(counter_runtime("b"), DomainId(1), false);
        assert_eq!(
            hv.app(b).unwrap().compiled_tier(),
            Some(CompiledTier::Stack)
        );
        hv.set_compiled_tier(CompiledTier::RegAlloc);
        assert_eq!(
            hv.app(b).unwrap().compiled_tier(),
            Some(CompiledTier::RegAlloc)
        );
    }

    #[test]
    fn engine_policy_upgrades_already_connected_apps() {
        let mut hv = Hypervisor::new(Device::f1());
        let a = hv.connect(counter_runtime("a"), DomainId(1), false);
        assert_eq!(hv.app(a).unwrap().mode(), ExecMode::Software);
        // Setting the policy after connect upgrades software residents too.
        hv.set_engine_policy(EnginePolicy::Auto);
        assert_eq!(hv.app(a).unwrap().mode(), ExecMode::Compiled);
    }

    #[test]
    fn engine_policy_falls_back_for_streaming_designs_that_compile() {
        // Streaming programs (file IO) are compilable too; the compiled
        // engine services their traps through the same SystemEnv.
        let mut hv = Hypervisor::new(Device::de10());
        hv.set_engine_policy(EnginePolicy::Auto);
        let a = hv.connect(streamer_runtime("s", 10_000), DomainId(1), true);
        assert_eq!(hv.app(a).unwrap().mode(), ExecMode::Compiled);
        hv.run_round(0.001).unwrap();
        assert!(hv.app(a).unwrap().get_bits("reads").unwrap().to_u64() > 0);
    }

    #[test]
    fn mixed_engine_tenants_progress_fairly_in_shared_rounds() {
        // One tenant compiles (Auto → compiled engine); the other has a
        // multiply-driven net (the agreeing-drivers flavour the interpreter
        // settles but the lowering rejects), stays on the interpreter
        // fallback, and must still get its fair share of every scheduling
        // round with stable per-app stats.
        let mut hv = Hypervisor::new(Device::f1());
        hv.set_engine_policy(EnginePolicy::Auto);
        let fast = hv.connect(counter_runtime("fast"), DomainId(1), false);
        let dual_src = r#"module Dual(input wire clock, output wire [31:0] out);
                              reg [31:0] count = 0;
                              wire [31:0] o;
                              assign o = count + 1;
                              assign o = count + 1;
                              always @(posedge clock) count <= count + 1;
                              assign out = o;
                          endmodule"#;
        let slow = hv.connect(
            Runtime::new("dual", dual_src, "Dual", "clock").unwrap(),
            DomainId(2),
            false,
        );
        assert_eq!(hv.app(fast).unwrap().mode(), ExecMode::Compiled);
        assert_eq!(
            hv.app(slow).unwrap().mode(),
            ExecMode::Software,
            "uncompilable tenant must keep the interpreter under Auto"
        );

        let mut fast_ticks = 0;
        let mut slow_ticks = 0;
        for _ in 0..3 {
            let stats = hv.run_round(0.0005).unwrap();
            assert_eq!(stats.len(), 2, "every tenant reports each round");
            assert_eq!(stats[0].app, fast.0);
            assert_eq!(stats[1].app, slow.0);
            for s in &stats {
                assert!(s.ran, "software-resident tenants are never descheduled");
                assert!(s.ticks > 0, "both tenants make progress every round");
                assert_eq!(s.tasks, 0);
            }
            fast_ticks += stats[0].ticks;
            slow_ticks += stats[1].ticks;
        }
        assert_eq!(
            hv.app(fast).unwrap().get_bits("count").unwrap().to_u64(),
            fast_ticks
        );
        assert_eq!(
            hv.app(slow).unwrap().get_bits("count").unwrap().to_u64(),
            slow_ticks
        );
        // The engine ladder is visible in shared virtual time: the compiled
        // tenant's modelled clock runs faster than the interpreter's.
        assert!(
            fast_ticks > slow_ticks,
            "compiled tenant should out-tick the interpreter tenant ({} vs {})",
            fast_ticks,
            slow_ticks
        );
    }

    use synergy_workloads::HOSTILE_DESIGN;

    fn hostile_runtime(name: &str) -> Runtime {
        Runtime::new(name, HOSTILE_DESIGN, "Hostile", "clock").unwrap()
    }

    #[test]
    fn parallel_rounds_are_bit_identical_to_sequential() {
        let build = || {
            let mut hv = Hypervisor::new(Device::f1());
            hv.set_engine_policy(EnginePolicy::Auto);
            // Mixed engines: compiled counter, interpreter-bound dual driver,
            // and a compiled streamer.
            hv.connect(counter_runtime("a"), DomainId(1), false);
            let dual = r#"module Dual(input wire clock, output wire [31:0] out);
                              reg [31:0] count = 0;
                              wire [31:0] o;
                              assign o = count + 1;
                              assign o = count + 1;
                              always @(posedge clock) count <= count + 1;
                              assign out = o;
                          endmodule"#;
            hv.connect(
                Runtime::new("dual", dual, "Dual", "clock").unwrap(),
                DomainId(2),
                false,
            );
            hv.connect(streamer_runtime("s", 50_000), DomainId(3), true);
            hv
        };

        let mut seq = build();
        seq.set_sched_policy(SchedPolicy::Sequential);
        let mut par = build();
        par.set_sched_policy(SchedPolicy::Parallel { workers: 4 });
        assert_eq!(par.sched_policy(), SchedPolicy::Parallel { workers: 4 });

        for _ in 0..4 {
            let s = seq.run_round(0.0004).unwrap();
            let p = par.run_round(0.0004).unwrap();
            assert_eq!(s, p, "stats (incl. events and errors) must match");
        }
        for app in seq.apps() {
            assert_eq!(
                seq.app(app).unwrap().peek_state(),
                par.app(app).unwrap().peek_state(),
                "tenant {} state must be bit-identical",
                app.0
            );
            assert_eq!(
                seq.app(app).unwrap().now_ns(),
                par.app(app).unwrap().now_ns(),
            );
        }
        let pool = par.pool_stats().expect("parallel rounds spawn the pool");
        assert_eq!(pool.executed, 4 * 3, "every tenant ran on the pool");
        assert!(
            seq.pool_stats().is_none(),
            "sequential path never spawns it"
        );
    }

    #[test]
    fn erring_tenant_is_quarantined_and_the_round_continues() {
        let mut hv = Hypervisor::new(Device::f1());
        let good = hv.connect(counter_runtime("good"), DomainId(1), false);
        let bad = hv.connect(hostile_runtime("bad"), DomainId(2), false);

        // The round completes despite the hostile tenant...
        let stats = hv.run_round(0.0002).unwrap();
        assert_eq!(stats.len(), 2);
        assert!(stats[0].ran && stats[0].error.is_none());
        let err = stats[1].error.as_ref().expect("hostile tenant errored");
        assert!(err.contains("did not converge"), "error surfaced: {}", err);
        assert!(stats[1].ticks == 0 && !stats[1].ran);
        let good_before = hv.app(good).unwrap().get_bits("count").unwrap().to_u64();
        assert!(good_before > 0, "the good tenant made progress");
        assert_eq!(hv.quarantined(), vec![bad]);

        // ...and the quarantined tenant idles (no error spam) afterwards.
        let stats = hv.run_round(0.0002).unwrap();
        assert!(stats[0].ran);
        assert!(!stats[1].ran && stats[1].error.is_none());
        assert!(hv.app(good).unwrap().get_bits("count").unwrap().to_u64() > good_before);
        // Virtual time still advances for the quarantined tenant (two full
        // rounds of idling; running tenants may overshoot dt slightly).
        assert_eq!(hv.app(bad).unwrap().now_ns(), 2 * 200_000);

        // Quarantine clears explicitly; the tenant is scheduled (and errors)
        // again.
        hv.clear_quarantine(bad).unwrap();
        assert!(hv.quarantined().is_empty());
        let stats = hv.run_round(0.0002).unwrap();
        assert!(stats[1].error.is_some());
        assert!(matches!(
            hv.clear_quarantine(AppId(99)),
            Err(HvError::UnknownApp(99))
        ));
        // Disconnect drops the quarantine entry.
        hv.disconnect(bad).unwrap();
        assert!(hv.quarantined().is_empty());
    }

    // Parallel-vs-sequential quarantine equivalence lives in
    // tests/hv_parallel.rs (hostile_tenants_quarantine_identically_under_
    // parallelism), which exercises it with a larger mixed fleet.

    #[test]
    fn hostile_tenant_postmortem_names_the_failing_site() {
        synergy_telemetry::set_enabled(true);
        let mut hv = Hypervisor::new(Device::f1());
        let bad = hv.connect(hostile_runtime("bad"), DomainId(1), false);
        let stats = hv.run_round(0.0002).unwrap();
        assert!(stats[0].error.is_some());
        // The flight-recorder postmortem rides on the round stats and the
        // quarantine entry, and names the non-converging nb target (`f` in
        // HOSTILE_DESIGN) — even though the error message itself stays
        // engine-identical and generic.
        let postmortem = stats[0].postmortem.as_deref().expect("postmortem dump");
        assert!(
            postmortem.contains("non-convergent non-blocking targets: f"),
            "postmortem names the failing site: {}",
            postmortem
        );
        assert!(postmortem.contains("engine_error"));
        assert!(postmortem.contains("run_round"), "span context retained");
        assert_eq!(hv.quarantine_report(bad), Some(postmortem));
        assert_eq!(hv.quarantine_report(AppId(99)), None);
        // The hypervisor's own recorder logged the quarantine decision.
        assert!(hv.flight_dump().contains("quarantine"));
        // The same failure is visible on the compiled tiers through the
        // shared fault channel (exercised directly in synergy-codegen); here
        // the hostile design is interpreter-resident because `always @(f)`
        // is outside the compilable envelope.
        let metrics = hv.metrics();
        assert_eq!(
            metrics.counter_value(
                synergy_telemetry::Namespace::Det,
                "hv_quarantines_total",
                &[]
            ),
            1
        );
    }

    #[test]
    fn quarantined_stream_frees_its_temporal_multiplexing_slice() {
        // Two io-bound *deployed* tenants; one errors and is quarantined.
        // The healthy stream must then run every round — the quarantined
        // tenant must not keep occupying io time slices (which would idle
        // the healthy stream on every other round).
        let mut hv = Hypervisor::new(Device::de10());
        let good = hv.connect(streamer_runtime("good", 1_000_000), DomainId(1), true);
        let bad = hv.connect(hostile_runtime("bad"), DomainId(2), true);
        hv.deploy(good).unwrap();
        // The hostile tenant errors on its first software round (settle cap)
        // and lands in quarantine...
        let stats = hv.run_round(0.001).unwrap();
        assert!(stats[1].error.is_some(), "hostile tenant errored");
        assert_eq!(hv.quarantined(), vec![bad]);
        // ...and is then deployed anyway (deployment does not tick), putting
        // a quarantined tenant on the shared IO path.
        hv.deploy(bad).unwrap();
        for _ in 0..3 {
            let stats = hv.run_round(0.001).unwrap();
            assert!(
                stats[0].ran,
                "healthy stream must run every round once the co-tenant is quarantined"
            );
            assert!(!stats[1].ran);
        }
        assert!(hv.app(good).unwrap().get_bits("reads").unwrap().to_u64() > 0);
    }

    #[test]
    fn round_stats_carry_runtime_events() {
        let src = r#"module M(input wire clock, input wire do_save);
                         reg [31:0] n = 0;
                         always @(posedge clock) begin
                             if (do_save) $save("ckpt");
                             n <= n + 1;
                         end
                     endmodule"#;
        let mut hv = Hypervisor::new(Device::f1());
        let a = hv.connect(
            Runtime::new("saver", src, "M", "clock").unwrap(),
            DomainId(1),
            false,
        );
        let stats = hv.run_round(0.0002).unwrap();
        assert!(stats[0].events.is_empty());
        hv.app_mut(a)
            .unwrap()
            .set("do_save", synergy_vlog::Bits::from_u64(1, 1))
            .unwrap();
        let stats = hv.run_round(0.0002).unwrap();
        assert!(
            stats[0]
                .events
                .iter()
                .any(|e| matches!(e, synergy_runtime::RuntimeEvent::Saved(t) if t == "ckpt")),
            "the $save event surfaces in the round stats"
        );
        assert!(hv.app(a).unwrap().checkpoints().contains_key("ckpt"));
    }

    #[test]
    fn descheduled_stream_bursts_with_its_carried_deficit() {
        let mut hv = Hypervisor::new(Device::de10());
        hv.set_round_tick_cap(50);
        let a = hv.connect(streamer_runtime("a", 1_000_000), DomainId(1), true);
        let b = hv.connect(streamer_runtime("b", 1_000_000), DomainId(2), true);
        hv.deploy(a).unwrap();
        hv.deploy(b).unwrap();
        // Round 1: one stream runs, capped at one quantum (50 ticks); the
        // other is descheduled and carries its allowance forward.
        let r1 = hv.run_round(0.1).unwrap();
        let (ran1, idle1) = if r1[0].ran { (0, 1) } else { (1, 0) };
        assert_eq!(r1[ran1].ticks, 50, "first round is capped at one quantum");
        assert_eq!(r1[idle1].ticks, 0);
        // Round 2: the previously descheduled stream wakes with two quanta.
        let r2 = hv.run_round(0.1).unwrap();
        assert!(r2[idle1].ran, "round-robin alternates");
        assert_eq!(
            r2[idle1].ticks, 100,
            "carried deficit doubles the waking stream's budget"
        );
    }

    #[test]
    fn unknown_app_operations_error() {
        let mut hv = Hypervisor::new(Device::f1());
        assert!(matches!(hv.deploy(AppId(99)), Err(HvError::UnknownApp(99))));
        assert!(matches!(hv.app(AppId(99)), Err(HvError::UnknownApp(99))));
        assert!(matches!(
            hv.disconnect(AppId(99)),
            Err(HvError::UnknownApp(99))
        ));
    }

    /// Builds a mixed fleet (hardware counter, compiled counter, deployed
    /// stream, quarantined hostile tenant) with some scheduler history.
    fn mixed_fleet() -> Hypervisor {
        let mut hv = Hypervisor::new(Device::f1());
        hv.set_engine_policy(EnginePolicy::Auto);
        hv.set_round_tick_cap(200);
        let hw = hv.connect(counter_runtime("hw"), DomainId(1), false);
        hv.deploy(hw).unwrap();
        hv.connect(counter_runtime("sw"), DomainId(2), false);
        let stream = hv.connect(streamer_runtime("stream", 100_000), DomainId(3), true);
        hv.deploy(stream).unwrap();
        hv.connect(hostile_runtime("bad"), DomainId(4), false);
        for _ in 0..3 {
            hv.run_round(0.0003).unwrap();
        }
        hv
    }

    #[test]
    fn fleet_checkpoint_restores_bit_identically_under_any_sched_policy() {
        let mut original = mixed_fleet();
        let bytes = original.checkpoint_fleet();

        // Restore into a fresh hypervisor running the *parallel* scheduler:
        // the checkpoint deliberately does not pin a SchedPolicy.
        let mut restored = Hypervisor::new(Device::f1());
        restored.set_sched_policy(SchedPolicy::Parallel { workers: 4 });
        let ids = restored.restore_fleet(&bytes).unwrap();
        assert_eq!(ids, original.apps());
        assert_eq!(restored.quarantined(), original.quarantined());
        assert_eq!(restored.handshakes(), original.handshakes());
        assert_eq!(restored.global_clock_hz(), original.global_clock_hz());

        for app in original.apps() {
            assert_eq!(
                restored.app(app).unwrap().peek_state(),
                original.app(app).unwrap().peek_state(),
                "tenant {} state must survive the wire",
                app.0
            );
            assert_eq!(
                restored.app(app).unwrap().mode(),
                original.app(app).unwrap().mode(),
                "tenant {} engine placement must survive the wire",
                app.0
            );
            assert_eq!(
                restored.app(app).unwrap().now_ns(),
                original.app(app).unwrap().now_ns(),
            );
        }

        // Onward rounds are bit-identical: DRR deficits, the io cursor, and
        // quarantine all resumed exactly where the checkpoint left them.
        for _ in 0..3 {
            let a = original.run_round(0.0003).unwrap();
            let b = restored.run_round(0.0003).unwrap();
            assert_eq!(a, b, "round stats diverged after restore");
        }
        for app in original.apps() {
            assert_eq!(
                restored.app(app).unwrap().peek_state(),
                original.app(app).unwrap().peek_state(),
            );
        }

        // New connects after restore get fresh ids (the id counter is part
        // of the checkpoint).
        let next = restored.connect(counter_runtime("late"), DomainId(9), false);
        assert!(!original.apps().contains(&next));
    }

    #[test]
    fn fleet_restore_rejects_non_empty_hypervisors_and_bad_bytes() {
        let original = mixed_fleet();
        let bytes = original.checkpoint_fleet();

        // Occupied target.
        let mut occupied = Hypervisor::new(Device::f1());
        occupied.connect(counter_runtime("resident"), DomainId(1), false);
        assert!(matches!(
            occupied.restore_fleet(&bytes),
            Err(HvError::Restore(_))
        ));

        // Truncated, corrupted, and wrong-kind bytes are typed errors.
        let mut fresh = Hypervisor::new(Device::f1());
        assert!(matches!(
            fresh.restore_fleet(&bytes[..bytes.len() / 2]),
            Err(HvError::Checkpoint(_))
        ));
        let mut corrupt = bytes.clone();
        corrupt[60] ^= 0x40;
        assert!(matches!(
            fresh.restore_fleet(&corrupt),
            Err(HvError::Checkpoint(_))
        ));
        let tenant_frame = original.app(AppId(1)).unwrap().save_checkpoint();
        assert!(matches!(
            fresh.restore_fleet(&tenant_frame),
            Err(HvError::Checkpoint(_))
        ));
        // The failed attempts left the hypervisor usable.
        assert!(fresh.restore_fleet(&bytes).is_ok());
    }

    #[test]
    fn fleet_restore_revalidates_device_capacity() {
        // A fleet checkpointed with a hardware tenant on the (huge) f1 must
        // not silently restore onto a device it no longer fits: the restore
        // returns a typed capacity error instead of degrading to software.
        let mut original = Hypervisor::new(Device::f1());
        // A software co-tenant records first in the fleet: a capacity
        // failure on the *later* hardware tenant must not leave it behind.
        original.connect(counter_runtime("sw"), DomainId(1), false);
        let app = original.connect(counter_runtime("big"), DomainId(2), false);
        original.deploy(app).unwrap();
        original.run_round(0.0002).unwrap();
        let bytes = original.checkpoint_fleet();

        let tiny = Device {
            name: "tiny".into(),
            lut_capacity: 10,
            ff_capacity: 10,
            bram_bits: 10,
            ..Device::f1()
        };
        let mut target = Hypervisor::new(tiny);
        match target.restore_fleet(&bytes) {
            Err(HvError::RestoreCapacity {
                app: failed,
                device,
                detail,
            }) => {
                assert_eq!(failed, app.0);
                assert_eq!(device, "tiny");
                assert!(detail.contains("LUT"), "detail is diagnostic: {}", detail);
            }
            other => panic!("expected RestoreCapacity, got {:?}", other.map(|_| ())),
        }
        // The failed restore left the target completely untouched (no
        // half-restored tenants or scheduler state), so the same checkpoint
        // can be retried — and fails the same way, not with
        // HvError::Restore("already has tenants").
        assert!(
            target.apps().is_empty(),
            "no tenant may survive a failed restore"
        );
        assert!(target.quarantined().is_empty());
        assert!(matches!(
            target.restore_fleet(&bytes),
            Err(HvError::RestoreCapacity { .. })
        ));

        // The same checkpoint restores fine onto a device with capacity.
        let mut ok = Hypervisor::new(Device::f1());
        ok.restore_fleet(&bytes).unwrap();
        assert_eq!(
            ok.app(app).unwrap().mode(),
            ExecMode::Hardware("f1".into()),
            "hardware residency is re-established, not silently dropped"
        );
    }
}
