//! # synergy-hv
//!
//! The SYNERGY hypervisor layer (§4 of the paper): program coalescing, the engine
//! table, the state-safe compilation handshake, spatial and temporal multiplexing,
//! parallel round scheduling across host cores, and cross-device workload
//! migration over a cluster of heterogeneous FPGAs.
#![warn(missing_docs)]

mod cluster;
mod control;
mod hypervisor;
pub mod sched;

pub use cluster::{Cluster, NodeId};
pub use control::{
    ControlConfig, ControlEvent, ControlPlane, FaultEvent, FaultKind, FaultPlan, RecoveryReport,
    TenantInfo, TenantSpec,
};
pub use hypervisor::{
    AppId, DeployOutcome, EngineEntry, EngineId, HvError, Hypervisor, RoundStats,
};
pub use sched::{DeficitRoundRobin, PoolStats, SchedPolicy, WorkerPool};
