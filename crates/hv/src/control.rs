//! The cluster control plane: load-aware placement, background rebalancing,
//! periodic fleet checkpoints, seeded fault injection, and crash recovery.
//!
//! The paper's cluster evaluation (§6.1, Figures 9–10) suspends tenants on one
//! node and resumes them on another; [`ControlPlane`] is the loop that *drives*
//! those primitives as a serving system. It owns a [`Cluster`] and advances it
//! in discrete control rounds ([`ControlPlane::step`]):
//!
//! 1. **fault injection** — the armed [`FaultPlan`] (seeded, deterministic)
//!    kills nodes, arms migration failures, and corrupts checkpoint bytes;
//! 2. **crash recovery** — coordinated rollback of the whole fleet to the
//!    newest restorable checkpoint in the ring, relocation of the dead node's
//!    tenants onto survivors, and deterministic replay of the admission /
//!    departure journal plus the missing scheduling rounds;
//! 3. **one scheduling round** on every node;
//! 4. **periodic fleet checkpoints** into a bounded ring;
//! 5. **rebalancing** — when a node's load exceeds the high watermark, victims
//!    are [`Cluster::live_migrate`]d to nodes below the low watermark, with a
//!    virtual-time backoff per tenant on failure.
//!
//! ## Determinism contract
//!
//! Every control decision keys off deterministic inputs only: tenant counts,
//! fabric occupancy, virtual round/tick counters, and the seeded fault plan —
//! never host time, host-ns telemetry, or map iteration over unordered
//! containers. Two control planes driven identically are bit-identical in
//! every decision regardless of [`SchedPolicy`](crate::SchedPolicy).
//!
//! ## Recovery invariants
//!
//! * With the [`ControlConfig::round_tick_cap`] budget binding (the default
//!   `round_dt` is generous), a compute-bound tenant executes exactly its DRR
//!   grant per round on *any* node, hardware or software engine — so tenant
//!   register state depends only on rounds lived, not on placement. This is
//!   what makes rollback-and-replay converge: a recovered fleet reaches
//!   register states bit-identical to a fleet that never crashed.
//! * Tenants are identified by **name** across crashes (application ids are
//!   per-node and change on relocation).
//! * A tenant is never silently lost: a failed migration rolls back to the
//!   source node ([`Cluster::live_migrate`]), recovery relocates every tenant
//!   of a dead node (quarantined ones stay quarantined, with a postmortem
//!   noting the crash), and only [`HvError::RecoveryExhausted`] — after the
//!   bounded retry budget, with the journal-backed genesis replay as the
//!   final fallback — can leave the fleet degraded, and even then the loss
//!   ledger names every tenant involved.

use crate::cluster::{Cluster, NodeId};
use crate::hypervisor::{AppId, HvError, Hypervisor};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use synergy_amorphos::DomainId;
use synergy_fpga::Device;
use synergy_runtime::{Runtime, StateSnapshot};

/// Knobs governing the control loop. All figures are virtual (rounds, ticks,
/// permille of capacity) — nothing here depends on host time.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Simulated seconds handed to every node's scheduling round. Must be
    /// generous enough that [`ControlConfig::round_tick_cap`] is the binding
    /// budget (the placement-independence invariant above).
    pub round_dt: f64,
    /// Per-tenant DRR tick budget per round (forwarded to every node).
    pub round_tick_cap: u64,
    /// Software tenant capacity per node (forwarded to every node); `None`
    /// is unlimited, which disables software-load-based rebalancing.
    pub software_capacity: Option<usize>,
    /// Rounds between periodic fleet checkpoints.
    pub checkpoint_interval: u64,
    /// Checkpoints retained in the ring (rollback candidates).
    pub checkpoint_history: usize,
    /// A node whose load permille exceeds this sheds tenants.
    pub high_watermark: u32,
    /// Only nodes below this load permille receive shed tenants.
    pub low_watermark: u32,
    /// Migration budget per control round.
    pub max_migrations_per_round: usize,
    /// Rounds a tenant sits out of rebalancing after a failed migration.
    pub backoff_rounds: u64,
    /// Restore attempts (ring entries, then genesis replay) before recovery
    /// reports [`HvError::RecoveryExhausted`].
    pub max_recovery_attempts: u32,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            round_dt: 0.001,
            round_tick_cap: 256,
            software_capacity: None,
            checkpoint_interval: 4,
            checkpoint_history: 2,
            high_watermark: 800,
            low_watermark: 600,
            max_migrations_per_round: 2,
            backoff_rounds: 4,
            max_recovery_attempts: 4,
        }
    }
}

/// Everything needed to (re)build a tenant — admissions are journaled as
/// specs so crash recovery can replay them deterministically.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Unique tenant name — the identity that survives crashes and
    /// migrations (application ids are per-node).
    pub name: String,
    /// Verilog source of the tenant's program.
    pub source: String,
    /// Top module name.
    pub top: String,
    /// Clock input port name.
    pub clock: String,
    /// Protection domain for the AmorphOS hull.
    pub domain: u64,
    /// Whether the tenant contends on the shared IO path. Io-bound tenants
    /// are temporally multiplexed per node, which makes their executed ticks
    /// placement-dependent — keep serving tenants compute-bound when the
    /// bit-identical recovery contract matters.
    pub io_bound: bool,
}

/// One deterministic fault to inject at a control round boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash the node: its hypervisor (tenants, fabric state, scheduler) is
    /// dropped on the floor, as a power loss would.
    KillNode(usize),
    /// Arm the next [`Cluster::live_migrate`] to fail after the wire
    /// crossing, exercising the rollback-to-source path.
    FailMigration,
    /// Flip a byte in the newest retained fleet checkpoint, exercising the
    /// fall-back-to-older-checkpoint path of recovery.
    CorruptCheckpoint,
}

/// A [`FaultKind`] scheduled for a specific control round.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Control round (completed-round count) at whose boundary the fault
    /// fires.
    pub round: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// A deterministic, seeded schedule of faults. The same seed always yields
/// the same plan, so chaos runs are reproducible bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// The xorshift* generator used across the repo's seeded sweeps — no
/// external crates, stable across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Schedules `kind` at `round`, keeping the plan sorted by round.
    pub fn push(&mut self, round: u64, kind: FaultKind) {
        self.events.push(FaultEvent { round, kind });
        self.events.sort_by_key(|e| e.round);
    }

    /// A deterministic plan for a `rounds`-long run over `nodes` nodes:
    /// a seeded mix of node kills, migration failures, and checkpoint
    /// corruption, spread across the middle of the run (faults in round 0
    /// would precede the first checkpoint and state, which is legal but
    /// uninteresting).
    pub fn seeded(seed: u64, rounds: u64, nodes: usize) -> Self {
        let mut rng = Rng::new(seed);
        let mut plan = FaultPlan::default();
        let span = rounds.max(4);
        let faults = 1 + rng.below(3); // 1..=3 faults per plan
        for _ in 0..faults {
            let round = 2 + rng.below(span.saturating_sub(2).max(1));
            let kind = match rng.below(4) {
                0 => FaultKind::FailMigration,
                1 => FaultKind::CorruptCheckpoint,
                _ => FaultKind::KillNode(rng.below(nodes.max(1) as u64) as usize),
            };
            plan.push(round, kind);
        }
        plan
    }

    /// The scheduled faults, sorted by round.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// What happened during one crash-recovery pass.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Control round at which the crash was detected.
    pub round: u64,
    /// Restore attempts consumed (ring entries tried, plus genesis).
    pub attempts: u32,
    /// Round of the checkpoint the fleet rolled back to; `None` when every
    /// retained checkpoint was unrestorable and recovery replayed the full
    /// journal from genesis.
    pub restored_from_round: Option<u64>,
    /// Scheduling rounds re-executed during journal replay.
    pub replayed_rounds: u64,
    /// Tenants alive after recovery.
    pub recovered_tenants: usize,
    /// Tenants relocated off dead nodes onto survivors.
    pub relocated_tenants: usize,
}

/// One entry of the control plane's decision log — observability for tests,
/// benchmarks, and postmortems. Deterministic content only.
#[derive(Debug, Clone)]
pub struct ControlEvent {
    /// Control round the event belongs to.
    pub round: u64,
    /// Machine-readable tag (`admit`, `kill_node`, `recovered`, ...).
    pub tag: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// A tenant as the control plane sees it.
#[derive(Debug, Clone)]
pub struct TenantInfo {
    /// The tenant's durable identity.
    pub name: String,
    /// Node currently hosting it.
    pub node: NodeId,
    /// Its application id on that node (changes across migrations).
    pub app: AppId,
    /// Whether the node has it quarantined.
    pub quarantined: bool,
    /// Whether it currently occupies fabric (vs. software engine).
    pub deployed: bool,
}

/// An admission or departure, journaled for crash replay.
#[derive(Debug, Clone)]
enum JournalOp {
    Admit(TenantSpec),
    Depart(String),
}

#[derive(Debug, Clone)]
struct JournalEntry {
    round: u64,
    op: JournalOp,
}

/// One retained fleet checkpoint: every node's fleet frame, captured at the
/// same round boundary.
struct FleetSnapshot {
    round: u64,
    frames: Vec<Vec<u8>>,
}

/// The cluster control plane. See the module docs for the loop structure and
/// invariants.
pub struct ControlPlane {
    cluster: Cluster,
    cfg: ControlConfig,
    /// Completed scheduling rounds.
    round: u64,
    /// Full admission/departure history from genesis — the final fallback
    /// when every retained checkpoint is unrestorable.
    journal: Vec<JournalEntry>,
    ring: VecDeque<FleetSnapshot>,
    plan: FaultPlan,
    plan_cursor: usize,
    /// Nodes killed by a fault and awaiting recovery.
    crashed: BTreeSet<usize>,
    /// Tenant name → first round it may be picked for rebalancing again.
    backoff: BTreeMap<String, u64>,
    events: Vec<ControlEvent>,
    recoveries: Vec<RecoveryReport>,
    /// Tenants recovery could not rebuild (only non-empty after
    /// [`HvError::RecoveryExhausted`]) — named, never silently dropped.
    lost: Vec<String>,
    migrations: u64,
    migration_failures: u64,
    migration_downtime_ns: u64,
}

impl ControlPlane {
    /// Creates a control plane over an empty cluster with the given knobs.
    pub fn new(cfg: ControlConfig) -> Self {
        let mut cluster = Cluster::new();
        cluster.set_round_tick_cap(cfg.round_tick_cap);
        cluster.set_tenant_capacity(cfg.software_capacity);
        ControlPlane {
            cluster,
            cfg,
            round: 0,
            journal: Vec::new(),
            ring: VecDeque::new(),
            plan: FaultPlan::none(),
            plan_cursor: 0,
            crashed: BTreeSet::new(),
            backoff: BTreeMap::new(),
            events: Vec::new(),
            recoveries: Vec::new(),
            lost: Vec::new(),
            migrations: 0,
            migration_failures: 0,
            migration_downtime_ns: 0,
        }
    }

    /// Adds a node before serving starts. Nodes are fixed for the lifetime of
    /// the plane (a killed node is reset and rejoins empty — it models a
    /// replacement machine at the same slot).
    pub fn add_node(&mut self, device: Device) -> NodeId {
        self.cluster.add_node(device)
    }

    /// Arms a fault plan. Faults fire at the scheduled round boundaries of
    /// subsequent [`ControlPlane::step`] calls.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.plan_cursor = 0;
    }

    /// Sets the round-scheduling policy on every node. Control decisions and
    /// tenant states are bit-identical across policies — the chaos
    /// differential suite pins this.
    pub fn set_sched_policy(&mut self, sched: crate::sched::SchedPolicy) {
        self.cluster.set_sched_policy(sched);
    }

    /// Sets the software-engine selection policy on every node.
    pub fn set_engine_policy(&mut self, policy: synergy_runtime::EnginePolicy) {
        self.cluster.set_engine_policy(policy);
    }

    /// Read access to the underlying cluster (tests and benchmarks).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Completed scheduling rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The decision log.
    pub fn events(&self) -> &[ControlEvent] {
        &self.events
    }

    /// Every crash-recovery pass performed so far.
    pub fn recoveries(&self) -> &[RecoveryReport] {
        &self.recoveries
    }

    /// Tenants recovery could not rebuild (empty unless a step returned
    /// [`HvError::RecoveryExhausted`]).
    pub fn lost_tenants(&self) -> &[String] {
        &self.lost
    }

    /// Successful live migrations driven by rebalancing.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Failed (rolled-back) migrations, injected or organic.
    pub fn migration_failures(&self) -> u64 {
        self.migration_failures
    }

    /// Total simulated downtime of rebalancing migrations: the virtual
    /// latency of re-admission on the target node, summed over successful
    /// migrations (deterministic nanoseconds, not host time).
    pub fn migration_downtime_ns(&self) -> u64 {
        self.migration_downtime_ns
    }

    fn log(&mut self, tag: &'static str, detail: String) {
        self.events.push(ControlEvent {
            round: self.round,
            tag,
            detail,
        });
    }

    /// Deterministic load score for a node, in permille: the software side
    /// (tenants vs. capacity) and the fabric side (LUT occupancy) each map
    /// to 0..=1000, and the node's load is the max of the two.
    fn load_permille(&self, node: &Hypervisor) -> u32 {
        let soft = match node.tenant_capacity() {
            Some(cap) if cap > 0 => ((node.tenant_count() * 1000) / cap) as u32,
            _ => 0,
        };
        let hard = (node.fabric_utilization().lut_fraction * 1000.0) as u32;
        soft.max(hard)
    }

    /// Nodes ordered best-first for admission: lowest load, then fewest
    /// recent round ticks, then lowest index — all deterministic.
    fn placement_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.cluster.len()).collect();
        order.sort_by_key(|&i| {
            let node = self.cluster.node(NodeId(i));
            (
                self.load_permille(node),
                node.last_round_ticks(),
                node.tenant_count(),
                i,
            )
        });
        order
    }

    /// Places a tenant built from `spec` on the best-scored node that admits
    /// it, delegating down the order on any capacity-shaped rejection. The
    /// tenant is then offered to the fabric; if no fabric slot fits it stays
    /// software-resident (the paper's synthesis-latency-hiding shape).
    fn place(&mut self, spec: &TenantSpec) -> Result<(NodeId, AppId), HvError> {
        let runtime = Runtime::new(spec.name.clone(), &spec.source, &spec.top, &spec.clock)?;
        let mut runtime = Some(runtime);
        let mut last_err = HvError::SoftwareCapacity {
            tenants: 0,
            capacity: 0,
        };
        for idx in self.placement_order() {
            let rt = runtime.take().expect("runtime present");
            let node = self.cluster.node_mut(NodeId(idx));
            match node.try_connect(rt, DomainId(spec.domain), spec.io_bound) {
                Ok(app) => {
                    // Fabric is best-effort at admission: a capacity-shaped
                    // rejection leaves the tenant on the software engine.
                    match node.deploy(app) {
                        Ok(_) => self.log(
                            "admit",
                            format!("tenant={} node={} app={} fabric", spec.name, idx, app.0),
                        ),
                        Err(e) => self.log(
                            "admit",
                            format!(
                                "tenant={} node={} app={} software ({})",
                                spec.name, idx, app.0, e
                            ),
                        ),
                    }
                    return Ok((NodeId(idx), app));
                }
                Err(rejected) => {
                    let (e, rt) = *rejected;
                    last_err = e;
                    runtime = Some(rt);
                }
            }
        }
        Err(last_err)
    }

    /// Admits a new tenant: places it on the best-scored node (lowest load,
    /// delegating down the order on capacity-shaped rejections) and journals
    /// the admission for crash replay.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::Compile`] for an unparseable spec and
    /// [`HvError::SoftwareCapacity`] when every node is full.
    pub fn admit(&mut self, spec: TenantSpec) -> Result<(NodeId, AppId), HvError> {
        let placed = self.place(&spec)?;
        self.journal.push(JournalEntry {
            round: self.round,
            op: JournalOp::Admit(spec),
        });
        Ok(placed)
    }

    /// Finds a tenant by name. Deterministic scan: node order, then
    /// application-id order.
    pub fn find_tenant(&self, name: &str) -> Option<(NodeId, AppId)> {
        for id in self.cluster.node_ids() {
            let node = self.cluster.node(id);
            for app in node.apps() {
                if node.app(app).map(|r| r.name() == name).unwrap_or(false) {
                    return Some((id, app));
                }
            }
        }
        None
    }

    /// Every tenant in the fleet, in deterministic (node, app) order.
    pub fn tenants(&self) -> Vec<TenantInfo> {
        let mut out = Vec::new();
        for id in self.cluster.node_ids() {
            let node = self.cluster.node(id);
            for app in node.apps() {
                let Ok(rt) = node.app(app) else { continue };
                let deployed = node
                    .slot_meta(app)
                    .map(|(_, _, deployed)| deployed)
                    .unwrap_or(false);
                out.push(TenantInfo {
                    name: rt.name().to_string(),
                    node: id,
                    app,
                    quarantined: node.quarantine_report(app).is_some(),
                    deployed,
                });
            }
        }
        out
    }

    /// The register state of the named tenant, or `None` if it is not in the
    /// fleet. The chaos differential compares these across fleets.
    pub fn tenant_state(&self, name: &str) -> Option<StateSnapshot> {
        let (node, app) = self.find_tenant(name)?;
        self.cluster
            .node(node)
            .app(app)
            .ok()
            .map(|r| r.peek_state())
    }

    fn remove_tenant(&mut self, name: &str) -> Result<(), HvError> {
        let (node, app) = self
            .find_tenant(name)
            .ok_or_else(|| HvError::Restore(format!("unknown tenant '{}'", name)))?;
        drop(self.cluster.node_mut(node).disconnect(app)?);
        Ok(())
    }

    /// Removes a tenant from the fleet and journals the departure.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::Restore`] if no tenant has that name.
    pub fn depart(&mut self, name: &str) -> Result<(), HvError> {
        self.remove_tenant(name)?;
        self.journal.push(JournalEntry {
            round: self.round,
            op: JournalOp::Depart(name.to_string()),
        });
        self.log("depart", format!("tenant={}", name));
        Ok(())
    }

    /// Advances the fleet by one control round: faults, recovery, one
    /// scheduling round everywhere, periodic checkpoint, rebalancing.
    ///
    /// # Errors
    ///
    /// Individual tenant failures quarantine, and node crashes recover —
    /// neither surfaces here. An error means the fleet itself degraded:
    /// [`HvError::RecoveryExhausted`] when no retained checkpoint nor the
    /// genesis replay could rebuild the fleet (the loss ledger names the
    /// casualties), or a scheduling-round error bubbled up from a node.
    pub fn step(&mut self) -> Result<(), HvError> {
        self.apply_faults();
        if !self.crashed.is_empty() {
            self.recover()?;
        }
        for id in self.cluster.node_ids() {
            self.cluster.node_mut(id).run_round(self.cfg.round_dt)?;
        }
        self.round += 1;
        if self.cfg.checkpoint_interval > 0
            && self.round.is_multiple_of(self.cfg.checkpoint_interval)
        {
            self.capture_checkpoint();
        }
        self.rebalance();
        Ok(())
    }

    /// Runs `rounds` control rounds (no churn — callers drive admissions and
    /// departures between steps).
    ///
    /// # Errors
    ///
    /// Propagates the first [`ControlPlane::step`] error.
    pub fn run(&mut self, rounds: u64) -> Result<(), HvError> {
        for _ in 0..rounds {
            self.step()?;
        }
        Ok(())
    }

    fn apply_faults(&mut self) {
        while self.plan_cursor < self.plan.events.len()
            && self.plan.events[self.plan_cursor].round <= self.round
        {
            let event = self.plan.events[self.plan_cursor].clone();
            self.plan_cursor += 1;
            match event.kind {
                FaultKind::KillNode(idx) => {
                    if idx < self.cluster.len() && self.cluster.reset_node(NodeId(idx)).is_ok() {
                        self.crashed.insert(idx);
                        self.log("kill_node", format!("node={}", idx));
                    }
                }
                FaultKind::FailMigration => {
                    self.cluster.inject_migration_failures(1);
                    self.log("fail_migration", "armed".to_string());
                }
                FaultKind::CorruptCheckpoint => {
                    // Flip a byte in the middle of the first node's frame:
                    // past the magic/version header, inside the payload the
                    // CRC covers.
                    let hit = self.ring.back_mut().and_then(|snap| {
                        snap.frames.first_mut().map(|frame| {
                            let at = frame.len() / 2;
                            frame[at] ^= 0xFF;
                            (snap.round, at)
                        })
                    });
                    match hit {
                        Some((round, at)) => {
                            self.log("corrupt_checkpoint", format!("round={} byte={}", round, at))
                        }
                        None => {
                            self.log("corrupt_checkpoint", "no checkpoint retained".to_string())
                        }
                    }
                }
            }
        }
    }

    fn capture_checkpoint(&mut self) {
        let frames: Vec<Vec<u8>> = self
            .cluster
            .node_ids()
            .iter()
            .map(|&id| self.cluster.node(id).checkpoint_fleet())
            .collect();
        let bytes: usize = frames.iter().map(Vec::len).sum();
        self.ring.push_back(FleetSnapshot {
            round: self.round,
            frames,
        });
        while self.ring.len() > self.cfg.checkpoint_history.max(1) {
            self.ring.pop_front();
        }
        self.log(
            "checkpoint",
            format!("round={} bytes={}", self.round, bytes),
        );
    }

    /// Coordinated crash recovery: rollback → relocate → replay. Tries ring
    /// checkpoints newest-first, then a genesis replay of the full journal;
    /// each candidate costs one attempt against
    /// [`ControlConfig::max_recovery_attempts`].
    fn recover(&mut self) -> Result<(), HvError> {
        let dead: Vec<usize> = std::mem::take(&mut self.crashed).into_iter().collect();
        let target = self.round;
        let mut attempts = 0u32;
        let mut last_err: Option<HvError> = None;

        // Candidate rollback points: ring entries newest-first, then `None`
        // (genesis: empty fleet + full journal replay).
        let mut candidates: Vec<Option<usize>> = (0..self.ring.len()).rev().map(Some).collect();
        candidates.push(None);

        for candidate in candidates {
            if attempts >= self.cfg.max_recovery_attempts {
                break;
            }
            attempts += 1;
            match self.try_recover_from(candidate, &dead, target) {
                Ok(mut report) => {
                    report.attempts = attempts;
                    self.log(
                        "recovered",
                        format!(
                            "dead={:?} from={:?} replayed={} tenants={}",
                            dead,
                            report.restored_from_round,
                            report.replayed_rounds,
                            report.recovered_tenants
                        ),
                    );
                    self.recoveries.push(report);
                    return Ok(());
                }
                Err(e) => {
                    self.log(
                        "recovery_attempt_failed",
                        format!("candidate={:?} error={}", candidate, e),
                    );
                    last_err = Some(e);
                }
            }
        }

        // Exhausted: the fleet keeps serving whatever survived the last
        // attempt, and every tenant the journal says should exist but does
        // not is recorded by name — degradation, not silent loss.
        let present: BTreeSet<String> = self.tenants().into_iter().map(|t| t.name).collect();
        for name in self.expected_tenants(target) {
            if !present.contains(&name) {
                self.lost.push(name);
            }
        }
        let detail = last_err
            .map(|e| e.to_string())
            .unwrap_or_else(|| "no rollback candidates".to_string());
        self.log(
            "recovery_exhausted",
            format!("attempts={} lost={:?}", attempts, self.lost),
        );
        Err(HvError::RecoveryExhausted { attempts, detail })
    }

    /// Tenant names the journal implies should be alive after `target`
    /// completed rounds.
    fn expected_tenants(&self, target: u64) -> Vec<String> {
        let mut alive: BTreeSet<String> = BTreeSet::new();
        for entry in &self.journal {
            if entry.round > target {
                break;
            }
            match &entry.op {
                JournalOp::Admit(spec) => {
                    alive.insert(spec.name.clone());
                }
                JournalOp::Depart(name) => {
                    alive.remove(name);
                }
            }
        }
        alive.into_iter().collect()
    }

    /// One recovery attempt from `candidate` (a ring index, or `None` for
    /// genesis). On error the fleet is left partially rolled back; the next
    /// attempt resets everything again before restoring.
    fn try_recover_from(
        &mut self,
        candidate: Option<usize>,
        dead: &[usize],
        target: u64,
    ) -> Result<RecoveryReport, HvError> {
        // Rollback: every node starts from scratch — recovery is a
        // fleet-wide coordinated restore, not a per-node patch.
        for id in self.cluster.node_ids() {
            self.cluster.reset_node(id)?;
        }

        let mut relocated = 0usize;
        let snap_round = match candidate {
            Some(idx) => {
                let round = self.ring[idx].round;
                // Survivors first (restore requires an empty node), then the
                // dead nodes' tenants drain into them.
                for i in 0..self.cluster.len() {
                    if dead.contains(&i) {
                        continue;
                    }
                    let frame = self.ring[idx].frames[i].clone();
                    self.cluster.node_mut(NodeId(i)).restore_fleet(&frame)?;
                    // Quarantine postmortems are observability and are not
                    // on the wire; note the gap rather than leaving the
                    // report empty.
                    let node = self.cluster.node_mut(NodeId(i));
                    for app in node.quarantined() {
                        node.force_quarantine(
                            app,
                            format!(
                                "postmortem lost in crash recovery \
                                 (restored from fleet checkpoint at round {})",
                                round
                            ),
                        )?;
                    }
                }
                for &i in dead {
                    // Restore-on-another-node: the dead node's frame is
                    // rebuilt off to the side and its tenants relocate.
                    let frame = self.ring[idx].frames[i].clone();
                    relocated += self.relocate_frame(&frame, i, dead)?;
                }
                Some(round)
            }
            None => None,
        };

        // Replay: journal operations and scheduling rounds from the rollback
        // point to the crash round, in the original order. Tenant state
        // depends only on rounds lived, so replayed placement decisions are
        // free to differ from the original run.
        let from = snap_round.unwrap_or(0);
        let mut cursor = 0usize;
        let journal = std::mem::take(&mut self.journal);
        let replay = (|| -> Result<(), HvError> {
            for r in from..=target {
                while cursor < journal.len() && journal[cursor].round < r {
                    cursor += 1;
                }
                while cursor < journal.len() && journal[cursor].round == r {
                    match &journal[cursor].op {
                        JournalOp::Admit(spec) => {
                            // Ops tagged `< from` are inside the checkpoint
                            // (skipped by the cursor); a name that somehow
                            // already exists (depart + re-admit in one
                            // round) is left alone.
                            if self.find_tenant(&spec.name).is_none() {
                                self.place(spec)?;
                            }
                            cursor += 1;
                        }
                        JournalOp::Depart(name) => {
                            if self.find_tenant(name).is_some() {
                                self.remove_tenant(name)?;
                            }
                            cursor += 1;
                        }
                    }
                }
                if r == target {
                    break;
                }
                for id in self.cluster.node_ids() {
                    self.cluster.node_mut(id).run_round(self.cfg.round_dt)?;
                }
            }
            Ok(())
        })();
        self.journal = journal;
        replay?;

        Ok(RecoveryReport {
            round: target,
            attempts: 0, // filled by the caller
            restored_from_round: snap_round,
            replayed_rounds: target - from,
            recovered_tenants: self.tenants().len(),
            relocated_tenants: relocated,
        })
    }

    /// Rebuilds a dead node's fleet frame in a scratch hypervisor and drains
    /// every tenant onto surviving nodes. Quarantined tenants stay
    /// quarantined, with a postmortem naming the crash.
    fn relocate_frame(
        &mut self,
        frame: &[u8],
        dead_idx: usize,
        dead: &[usize],
    ) -> Result<usize, HvError> {
        let device = self.cluster.node(NodeId(dead_idx)).device().clone();
        let mut scratch = Hypervisor::with_cache(device, self.cluster.cache().clone());
        let apps = scratch.restore_fleet(frame)?;
        let mut moved = 0usize;
        for app in apps {
            let (domain, io_bound, was_deployed) = scratch.slot_meta(app)?;
            let quarantined = scratch.quarantine_report(app).is_some();
            let runtime = scratch.disconnect(app)?;
            let name = runtime.name().to_string();
            // Deterministic survivor choice: fewest tenants, lowest index.
            let survivor = self
                .cluster
                .node_ids()
                .into_iter()
                .filter(|id| !dead.contains(&id.0))
                .min_by_key(|&id| (self.cluster.node(id).tenant_count(), id.0))
                // Every node died at once: node 0 doubles as the survivor.
                .unwrap_or(NodeId(0));
            let target = self.cluster.node_mut(survivor);
            let new_id = target.connect(runtime, domain, io_bound);
            if was_deployed {
                // Best-effort: no fabric room on the survivor leaves the
                // tenant on its software engine, which is still bit-exact.
                let _ = target.deploy(new_id);
            }
            if quarantined {
                target.force_quarantine(
                    new_id,
                    format!(
                        "postmortem lost when node {} crashed; \
                         restored from fleet checkpoint",
                        dead_idx
                    ),
                )?;
            }
            self.log(
                "relocate",
                format!(
                    "tenant={} from_node={} to_node={}",
                    name, dead_idx, survivor.0
                ),
            );
            moved += 1;
        }
        Ok(moved)
    }

    /// Sheds load from nodes above the high watermark onto nodes below the
    /// low watermark via live migration, bounded per round, with per-tenant
    /// backoff after failures.
    fn rebalance(&mut self) {
        self.backoff.retain(|_, until| *until > self.round);
        let mut budget = self.cfg.max_migrations_per_round;
        for idx in 0..self.cluster.len() {
            if budget == 0 {
                break;
            }
            loop {
                if budget == 0 {
                    break;
                }
                let load = self.load_permille(self.cluster.node(NodeId(idx)));
                if load <= self.cfg.high_watermark {
                    break;
                }
                let Some(target) = self
                    .cluster
                    .node_ids()
                    .into_iter()
                    .filter(|&id| {
                        id.0 != idx
                            && self.load_permille(self.cluster.node(id)) < self.cfg.low_watermark
                    })
                    .min_by_key(|&id| (self.load_permille(self.cluster.node(id)), id.0))
                else {
                    break;
                };
                // Victim: the newest non-quarantined tenant not in backoff
                // (highest app id — deterministic, and biased towards tenants
                // with the least accumulated placement history).
                let node = self.cluster.node(NodeId(idx));
                let victim = node
                    .apps()
                    .into_iter()
                    .rev()
                    .filter(|&app| node.quarantine_report(app).is_none())
                    .find(|&app| {
                        node.app(app)
                            .map(|r| !self.backoff.contains_key(r.name()))
                            .unwrap_or(false)
                    });
                let Some(victim) = victim else { break };
                let Ok((domain, io_bound, _)) = node.slot_meta(victim) else {
                    break;
                };
                let name = node
                    .app(victim)
                    .map(|r| r.name().to_string())
                    .unwrap_or_default();
                match self
                    .cluster
                    .live_migrate(NodeId(idx), victim, target, domain, io_bound)
                {
                    Ok((new_id, outcome)) => {
                        self.migrations += 1;
                        self.migration_downtime_ns += outcome.latency_ns;
                        budget -= 1;
                        self.log(
                            "rebalance",
                            format!(
                                "tenant={} from={} to={} app={}",
                                name, idx, target.0, new_id.0
                            ),
                        );
                    }
                    Err(e) => {
                        self.migration_failures += 1;
                        self.backoff
                            .insert(name.clone(), self.round + self.cfg.backoff_rounds);
                        self.log(
                            "rebalance_failed",
                            format!("tenant={} from={} to={} error={}", name, idx, target.0, e),
                        );
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
        module Counter(input wire clock, output wire [31:0] out);
            reg [31:0] count = 0;
            always @(posedge clock) count <= count + 1;
            assign out = count;
        endmodule
    "#;

    fn spec(name: &str, domain: u64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            source: COUNTER.to_string(),
            top: "Counter".to_string(),
            clock: "clock".to_string(),
            domain,
            io_bound: false,
        }
    }

    fn plane(nodes: usize, capacity: usize) -> ControlPlane {
        let mut cp = ControlPlane::new(ControlConfig {
            software_capacity: Some(capacity),
            checkpoint_interval: 2,
            ..ControlConfig::default()
        });
        for _ in 0..nodes {
            cp.add_node(Device::de10());
        }
        cp
    }

    /// Tenant register states keyed by name — what the chaos differential
    /// compares (`StateSnapshot::time` is placement-dependent ns; the
    /// register values are not).
    fn states(cp: &ControlPlane) -> BTreeMap<String, BTreeMap<String, synergy_interp::Value>> {
        cp.tenants()
            .into_iter()
            .map(|t| {
                let snap = cp.tenant_state(&t.name).expect("tenant state");
                (t.name, snap.values)
            })
            .collect()
    }

    #[test]
    fn admission_spreads_tenants_across_nodes() {
        let mut cp = plane(2, 8);
        for i in 0..4 {
            cp.admit(spec(&format!("t{}", i), i + 1)).unwrap();
        }
        assert_eq!(cp.cluster().node(NodeId(0)).tenant_count(), 2);
        assert_eq!(cp.cluster().node(NodeId(1)).tenant_count(), 2);
    }

    #[test]
    fn admission_rejects_only_when_every_node_is_full() {
        let mut cp = plane(2, 1);
        cp.admit(spec("a", 1)).unwrap();
        cp.admit(spec("b", 2)).unwrap();
        let err = cp.admit(spec("c", 3)).unwrap_err();
        assert!(matches!(err, HvError::SoftwareCapacity { .. }), "got {err}");
        assert_eq!(cp.tenants().len(), 2);
    }

    #[test]
    fn crash_recovery_converges_to_the_never_crashed_fleet() {
        let drive = |plan: FaultPlan| {
            let mut cp = plane(2, 8);
            cp.set_fault_plan(plan);
            for i in 0..4 {
                cp.admit(spec(&format!("t{}", i), i + 1)).unwrap();
            }
            cp.run(3).unwrap();
            cp.admit(spec("late", 9)).unwrap();
            cp.depart("t1").unwrap();
            cp.run(5).unwrap();
            cp
        };

        let reference = drive(FaultPlan::none());
        let mut plan = FaultPlan::none();
        plan.push(5, FaultKind::KillNode(0));
        let chaos = drive(plan);

        assert_eq!(chaos.recoveries().len(), 1);
        assert!(chaos.lost_tenants().is_empty());
        let report = &chaos.recoveries()[0];
        assert_eq!(report.restored_from_round, Some(4));
        assert!(report.relocated_tenants > 0);
        assert_eq!(states(&reference), states(&chaos));
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_the_older_one() {
        let drive = |plan: FaultPlan| {
            let mut cp = plane(2, 8);
            cp.set_fault_plan(plan);
            for i in 0..3 {
                cp.admit(spec(&format!("t{}", i), i + 1)).unwrap();
            }
            cp.run(7).unwrap();
            cp
        };

        let reference = drive(FaultPlan::none());
        let mut plan = FaultPlan::none();
        // Checkpoints land after rounds 2, 4, 6 (interval 2, history 2).
        plan.push(5, FaultKind::CorruptCheckpoint); // corrupts the round-4 entry
        plan.push(5, FaultKind::KillNode(1));
        let chaos = drive(plan);

        let report = &chaos.recoveries()[0];
        assert!(
            report.attempts >= 2,
            "first attempt must fail on the corrupt frame"
        );
        assert_eq!(report.restored_from_round, Some(2));
        assert!(chaos.lost_tenants().is_empty());
        assert_eq!(states(&reference), states(&chaos));
    }

    #[test]
    fn every_checkpoint_corrupt_recovers_through_genesis_replay() {
        let drive = |plan: FaultPlan| {
            let mut cp = plane(2, 8);
            cp.set_fault_plan(plan);
            for i in 0..3 {
                cp.admit(spec(&format!("t{}", i), i + 1)).unwrap();
            }
            cp.run(4).unwrap();
            cp
        };

        let reference = drive(FaultPlan::none());
        let mut plan = FaultPlan::none();
        // One retained checkpoint (round 2) by round 3; corrupt it, then
        // kill a node: only the journal can rebuild the fleet.
        plan.push(3, FaultKind::CorruptCheckpoint);
        plan.push(3, FaultKind::KillNode(0));
        let chaos = drive(plan);

        let report = &chaos.recoveries()[0];
        assert_eq!(report.restored_from_round, None, "genesis replay");
        assert!(chaos.lost_tenants().is_empty());
        assert_eq!(states(&reference), states(&chaos));
    }

    #[test]
    fn injected_migration_failure_backs_off_and_retries_later() {
        let mut cp = ControlPlane::new(ControlConfig {
            software_capacity: Some(4),
            high_watermark: 700,
            low_watermark: 500,
            backoff_rounds: 2,
            ..ControlConfig::default()
        });
        cp.add_node(Device::de10());
        cp.add_node(Device::de10());
        // Overload node 0 past the high watermark (3/4 = 750‰) while node 1
        // stays empty, then arm a migration fault: the first rebalance
        // attempt fails (tenant rolled back), a later round succeeds.
        for i in 0..3 {
            let (node, _) = cp.admit(spec(&format!("t{}", i), i + 1)).unwrap();
            // Admission alternates nodes; drag everyone onto node 0 for the
            // overload setup via the journal-transparent primitive.
            if node != NodeId(0) {
                let (_, app) = cp.find_tenant(&format!("t{}", i)).unwrap();
                cp.cluster
                    .live_migrate(node, app, NodeId(0), DomainId(i + 1), false)
                    .unwrap();
            }
        }
        let mut plan = FaultPlan::none();
        plan.push(0, FaultKind::FailMigration);
        cp.set_fault_plan(plan);
        cp.run(6).unwrap();
        assert_eq!(cp.migration_failures(), 1);
        assert!(cp.migrations() >= 1, "rebalance succeeds after backoff");
        assert_eq!(cp.tenants().len(), 3, "no tenant lost on the way");
        assert!(
            cp.cluster().node(NodeId(0)).tenant_count() <= 2,
            "node 0 shed load"
        );
    }

    #[test]
    fn seeded_fault_plans_are_reproducible() {
        for seed in 0..32 {
            let a = FaultPlan::seeded(seed, 20, 4);
            let b = FaultPlan::seeded(seed, 20, 4);
            assert_eq!(a.events().len(), b.events().len());
            for (x, y) in a.events().iter().zip(b.events()) {
                assert_eq!(x.round, y.round);
                assert_eq!(x.kind, y.kind);
            }
            assert!(!a.events().is_empty());
            assert!(a.events().windows(2).all(|w| w[0].round <= w[1].round));
        }
    }
}
