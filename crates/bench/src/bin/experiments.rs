//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin experiments -- all
//! cargo run --release -p synergy-bench --bin experiments -- fig9 fig12 quiescence
//! ```
//!
//! Each experiment prints the same rows/series the paper reports; see
//! `EXPERIMENTS.md` for the paper-vs-measured comparison.

use synergy_bench::{
    execution_overheads, fig10_migration, fig11_temporal, fig12_spatial, fig13_14_15_overheads,
    fig9_suspend_resume, overheads_tables, quiescence_study, table1, Scale,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    let mut wanted: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = vec![
            "table1",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13-15",
            "quiescence",
            "overheads",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    for exp in wanted {
        match exp.as_str() {
            "table1" => println!("{}", table1()),
            "fig9" => println!("{}", fig9_suspend_resume(scale).to_table()),
            "fig10" => println!("{}", fig10_migration(scale).to_table()),
            "fig11" => println!("{}", fig11_temporal(scale).to_table()),
            "fig12" => println!("{}", fig12_spatial(scale).to_table()),
            "fig13-15" | "fig13" | "fig14" | "fig15" => {
                println!("{}", overheads_tables(&fig13_14_15_overheads()))
            }
            "quiescence" => {
                println!("== Section 6.3: quiescence ==");
                println!(
                    "{:<10}{:>16}{:>14}{:>14}",
                    "bench", "volatile state", "LUT saving", "FF saving"
                );
                for row in quiescence_study() {
                    println!(
                        "{:<10}{:>15.0}%{:>13.1}%{:>13.1}%",
                        row.benchmark,
                        row.volatile_fraction * 100.0,
                        row.lut_saving * 100.0,
                        row.ff_saving * 100.0
                    );
                }
                println!();
            }
            "overheads" => {
                println!("== Section 6.4: execution overhead ==");
                println!(
                    "{:<10}{:>20}{:>16}{:>12}",
                    "bench", "Synergy virt. Hz", "native Hz", "slowdown"
                );
                for row in execution_overheads(scale) {
                    println!(
                        "{:<10}{:>20.0}{:>16.0}{:>11.1}x",
                        row.benchmark, row.synergy_virtual_hz, row.native_hz, row.slowdown
                    );
                }
                println!();
            }
            other => eprintln!("unknown experiment '{}'", other),
        }
    }
}
