//! Regenerates `BENCH_hv_scaling.json`: the many-tenant hypervisor scaling
//! sweep (1/2/4/8 workers × 8–64 tenants, mixed Table-1 + fuzz fleets).
//!
//! ```text
//! cargo run --release -p synergy-bench --bin hv_scaling              # print + write repo-root JSON
//! cargo run --release -p synergy-bench --bin hv_scaling -- out.json  # write elsewhere
//! cargo run --release -p synergy-bench --bin hv_scaling -- --smoke   # tiny sweep, no file
//! ```

use synergy_bench::{model_speedup, run_scaling_sweep, scaling_json, scaling_table};

/// Days-from-epoch to `YYYY-MM-DD` (proleptic Gregorian; no external crates
/// in the offline container).
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{:04}-{:02}-{:02}", y, m, d)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hv_scaling.json").into()
        });

    let (workers, tenants, rounds): (&[usize], &[usize], usize) = if smoke {
        (&[0, 2, 8], &[8], 2)
    } else {
        (&[0, 1, 2, 4, 8], &[8, 16, 32, 64], 3)
    };
    let measurements = run_scaling_sweep(workers, tenants, rounds);
    print!("{}", scaling_table(&measurements));
    if let Some(headline) = model_speedup(&measurements, 8, 32) {
        println!(
            "\nmodel speedup, 8 workers / 32-tenant mixed fleet: {:.2}x",
            headline
        );
    }
    if smoke {
        return;
    }
    let json = scaling_json(&measurements, &today());
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, json).expect("write BENCH_hv_scaling.json");
    println!("wrote {}", out_path);
}
