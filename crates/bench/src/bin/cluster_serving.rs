//! Regenerates `BENCH_cluster_serving.json`: the tenant-churn cluster-serving
//! benchmark (1,200 tenants over 8 heterogeneous nodes with seeded faults),
//! plus the smoke-scale gate section the `regress` binary re-measures.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin cluster_serving              # print + write repo-root JSON
//! cargo run --release -p synergy-bench --bin cluster_serving -- out.json  # write elsewhere
//! cargo run --release -p synergy-bench --bin cluster_serving -- --smoke   # gate-scale only, no file
//! ```

use synergy_bench::{run_serving, serving_json, serving_table, ServingConfig};

/// Days-from-epoch to `YYYY-MM-DD` (proleptic Gregorian; no external crates
/// in the offline container).
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{:04}-{:02}-{:02}", y, m, d)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_cluster_serving.json"
            )
            .into()
        });

    let gate = run_serving(&ServingConfig::gate());
    println!("--- gate scale ---");
    print!("{}", serving_table(&gate));
    if smoke {
        return;
    }

    let full = run_serving(&ServingConfig::full());
    println!("\n--- full scale ---");
    print!("{}", serving_table(&full));

    let json = serving_json(&full, &gate, &today());
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, json).expect("write BENCH_cluster_serving.json");
    println!("wrote {}", out_path);
}
