//! `fleetstat` — a `top(1)`-style snapshot of fleet telemetry.
//!
//! Builds a representative two-node cluster from the Table-1 workloads,
//! runs it for a few rounds with telemetry enabled, and prints a summary of
//! the merged [`synergy::Cluster::metrics`] registry (plus the process-global
//! registry, which holds cross-cutting counters like CRC failures). With
//! `--out DIR` it also writes the full snapshot in both exporter formats:
//!
//! * `DIR/fleet_metrics.txt` — Prometheus text exposition;
//! * `DIR/fleet_metrics.json` — the jsonish snapshot.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin fleetstat -- \
//!     [--tenants N] [--rounds N] [--policy seq|par] [--out DIR]
//! ```
//!
//! The run is deterministic: every `Det`-namespace line is bit-identical
//! across invocations and across `--policy seq` / `--policy par` (the
//! determinism contract the differential suites pin). `NonDet` lines carry
//! host-time samples and vary run to run.

use synergy::telemetry::{self, MetricValue, Namespace, Registry};
use synergy::workloads;
use synergy::{Cluster, Device, DomainId, NodeId, Runtime, SchedPolicy};

/// Per-round simulated time; generous so the tick cap binds, as in the
/// scaling benchmark.
const ROUND_DT: f64 = 1.0;

struct Opts {
    tenants: usize,
    rounds: usize,
    policy: SchedPolicy,
    out: Option<String>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        tenants: 6,
        rounds: 4,
        policy: SchedPolicy::Sequential,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{} needs a value", flag)))
        };
        match arg.as_str() {
            "--tenants" => {
                opts.tenants = value("--tenants")
                    .parse()
                    .unwrap_or_else(|_| die("--tenants needs an integer"));
            }
            "--rounds" => {
                opts.rounds = value("--rounds")
                    .parse()
                    .unwrap_or_else(|_| die("--rounds needs an integer"));
            }
            "--policy" => {
                opts.policy = match value("--policy").as_str() {
                    "seq" => SchedPolicy::Sequential,
                    "par" => SchedPolicy::Parallel { workers: 4 },
                    other => die(&format!("unknown policy '{}' (want seq|par)", other)),
                };
            }
            "--out" => opts.out = Some(value("--out")),
            "--help" | "-h" => {
                println!("fleetstat [--tenants N] [--rounds N] [--policy seq|par] [--out DIR]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument '{}'", other)),
        }
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("fleetstat: {}", msg);
    std::process::exit(2);
}

/// Builds a two-node cluster with `tenants` Table-1 workloads round-robined
/// across the nodes, every tenant deployed.
fn build_cluster(tenants: usize, policy: SchedPolicy) -> Cluster {
    let mut cluster = Cluster::new();
    let a = cluster.add_node(Device::f1());
    let b = cluster.add_node(Device::f1());
    cluster.set_engine_policy(synergy::EnginePolicy::Auto);
    cluster.set_sched_policy(policy);
    let benches = workloads::all();
    for i in 0..tenants {
        let bench = &benches[i % benches.len()];
        let mut rt = Runtime::new(
            format!("{}_{}", bench.name, i),
            &bench.source,
            &bench.top,
            &bench.clock,
        )
        .unwrap_or_else(|e| {
            die(&format!(
                "workload {} failed to elaborate: {}",
                bench.name, e
            ))
        });
        if let Some(path) = &bench.input_path {
            rt.add_file(path.clone(), workloads::input_data(&bench.name, 1 << 14));
        }
        let node = if i % 2 == 0 { a } else { b };
        let id = cluster
            .node_mut(node)
            .connect(rt, DomainId(i as u64 + 1), false);
        cluster
            .node_mut(node)
            .deploy(id)
            .unwrap_or_else(|e| die(&format!("deploy of tenant {} failed: {}", i, e)));
    }
    cluster
}

/// Sums a counter across all label sets (tenant/node labels make each
/// instance a distinct key).
fn counter_sum(reg: &Registry, ns: Namespace, name: &str) -> u64 {
    reg.iter(ns)
        .filter(|(k, _)| k.name == name)
        .map(|(_, v)| match v {
            MetricValue::Counter(c) => *c,
            _ => 0,
        })
        .sum()
}

fn main() {
    let opts = parse_opts();
    telemetry::set_enabled(true);

    let mut cluster = build_cluster(opts.tenants, opts.policy);
    for _ in 0..opts.rounds {
        for idx in 0..cluster.len() {
            cluster
                .node_mut(NodeId(idx))
                .run_round(ROUND_DT)
                .unwrap_or_else(|e| die(&format!("round failed on node {}: {}", idx, e)));
        }
    }

    // The cluster registry plus the process-global one (cross-cutting
    // counters such as checkpoint_crc_failures_total live there because no
    // single tenant owns them).
    let mut registry = cluster.metrics();
    registry.merge(&telemetry::global_snapshot());

    println!(
        "fleet: {} nodes, {} tenants, {} rounds/node, policy {:?}",
        cluster.len(),
        opts.tenants,
        opts.rounds,
        opts.policy
    );
    println!(
        "rounds {}   ticks {}   tasks {}   events {}",
        counter_sum(&registry, Namespace::Det, "hv_rounds_total"),
        counter_sum(&registry, Namespace::Det, "hv_round_ticks_total"),
        counter_sum(&registry, Namespace::Det, "hv_round_tasks_total"),
        counter_sum(&registry, Namespace::Det, "runtime_events_total"),
    );
    println!(
        "quarantines {}   engine errors {}   fallbacks {}   crc failures {}",
        counter_sum(&registry, Namespace::Det, "hv_quarantines_total"),
        counter_sum(&registry, Namespace::Det, "runtime_engine_errors_total"),
        counter_sum(&registry, Namespace::Det, "runtime_engine_fallbacks_total"),
        counter_sum(&registry, Namespace::Det, "checkpoint_crc_failures_total"),
    );
    for idx in 0..cluster.len() {
        let node_label = idx.to_string();
        if let Some(MetricValue::Histogram(h)) = registry
            .iter(Namespace::Det)
            .find(|(k, _)| {
                k.name == "hv_round_latency_ticks"
                    && k.labels
                        .iter()
                        .any(|(lk, lv)| *lk == "node" && *lv == node_label)
            })
            .map(|(_, v)| v)
        {
            println!(
                "node {}: round latency ticks p50 {}  p99 {}  (n={})",
                idx,
                h.quantile(0.50),
                h.quantile(0.99),
                h.count()
            );
        }
    }
    let det_lines = registry.iter(Namespace::Det).count();
    let nondet_lines = registry.iter(Namespace::NonDet).count();
    println!("metrics: {} det, {} nondet", det_lines, nondet_lines);

    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(&format!("cannot create {}: {}", dir, e)));
        let txt = format!("{}/fleet_metrics.txt", dir);
        let json = format!("{}/fleet_metrics.json", dir);
        std::fs::write(&txt, registry.to_prometheus())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {}", txt, e)));
        std::fs::write(&json, registry.to_jsonish())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {}", json, e)));
        println!("wrote {} and {}", txt, json);
    }
}
