//! CI performance-regression gate: re-measures the committed performance
//! envelopes at smoke scale and fails (exit 1) if any metric drops more than
//! 25% below its `BENCH_*.json` baseline. Prints the comparison table either
//! way.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin regress
//! SYNERGY_REGRESS_HANDICAP=2.0 cargo run --release -p synergy-bench --bin regress  # must fail
//! ```

use synergy_bench::{checks_table, run_checks, TOLERANCE};

fn read_baseline(name: &str) -> String {
    let path = format!("{}/../../{}", env!("CARGO_MANIFEST_DIR"), name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {}: {}", path, e))
}

fn main() {
    let interp_vs_compiled = read_baseline("BENCH_interp_vs_compiled.json");
    let hv_scaling = read_baseline("BENCH_hv_scaling.json");
    let telemetry = read_baseline("BENCH_telemetry.json");
    let cluster_serving = read_baseline("BENCH_cluster_serving.json");
    let checks = run_checks(
        &interp_vs_compiled,
        &hv_scaling,
        &telemetry,
        &cluster_serving,
    );
    print!("{}", checks_table(&checks));
    let regressions: Vec<_> = checks.iter().filter(|c| c.regressed()).collect();
    if regressions.is_empty() {
        println!(
            "\nperf gate: OK ({} metrics within {:.0}% of baseline)",
            checks.len(),
            TOLERANCE * 100.0
        );
    } else {
        println!(
            "\nperf gate: FAILED — {} metric(s) regressed more than {:.0}% below baseline:",
            regressions.len(),
            TOLERANCE * 100.0
        );
        for c in &regressions {
            println!(
                "  {} fell to {:.2} (baseline {:.2}, ratio {:.2})",
                c.name,
                c.measured,
                c.baseline,
                c.ratio()
            );
        }
        std::process::exit(1);
    }
}
