//! Per-pass optimizer statistics for the Table-1 workloads.
//!
//! Compiles each workload, runs the full `synergy-opt` pipeline, and prints
//! one table per workload: rewrites per pass, op counts before/after, and
//! whether the pass manager reverted anything. CI uploads the output as a
//! workflow artifact so a PR that changes pass behaviour shows up as a
//! diff in rewrite counts, not just a perf-gate ratio.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin passstats                  # stdout
//! cargo run --release -p synergy-bench --bin passstats -- artifacts/passstats.txt
//! ```

use std::fmt::Write as _;

use synergy::workloads;

fn main() {
    let out_path = std::env::args().nth(1);
    let mut out = String::new();
    for b in &workloads::all() {
        let design = synergy::vlog::compile(&b.source, &b.top)
            .unwrap_or_else(|e| panic!("{}: elaborate: {}", b.name, e));
        let mut prog = synergy::codegen::compile(&design)
            .unwrap_or_else(|e| panic!("{}: lower: {}", b.name, e));
        let report = synergy::opt::optimize_with_passes(&mut prog, &synergy::opt::PASS_NAMES);
        let before = report.passes.first().map(|p| p.ops_before).unwrap_or(0);
        let after = report.passes.last().map(|p| p.ops_after).unwrap_or(0);
        writeln!(
            out,
            "== {}: {} ops -> {} ops ({} rewrites{})",
            b.name,
            before,
            after,
            report.total_rewrites(),
            if report.any_reverted() {
                ", REVERTS PRESENT"
            } else {
                ""
            }
        )
        .unwrap();
        writeln!(
            out,
            "{:<12} {:>9} {:>9} {:>9}  rev",
            "pass", "rewrites", "before", "after"
        )
        .unwrap();
        for p in &report.passes {
            writeln!(
                out,
                "{:<12} {:>9} {:>9} {:>9}  {}",
                p.name,
                p.rewrites,
                p.ops_before,
                p.ops_after,
                if p.reverted { "YES" } else { "-" }
            )
            .unwrap();
        }
        writeln!(out).unwrap();
        // A revert on a Table-1 workload means a pass produced a structurally
        // invalid program on real code — the artifact stays useful, but CI
        // should go red.
        assert!(
            !report.any_reverted(),
            "{}: an optimization pass reverted",
            b.name
        );
    }
    print!("{}", out);
    if let Some(path) = out_path {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
        std::fs::write(&path, &out).expect("write passstats output");
        eprintln!("wrote {}", path);
    }
}
