//! The CI performance-regression gate.
//!
//! Re-measures the two committed performance envelopes at smoke scale and
//! compares them against the checked-in `BENCH_*.json` baselines:
//!
//! * `BENCH_interp_vs_compiled.json` — per workload, the default compiled
//!   engine's (optimized regalloc tier) speedup over the interpreter
//!   (PR 1/2's tentpole win), the regalloc tier's `regalloc_over_stack`
//!   ratio over the stack-bytecode tier (PR 4's tentpole win), and the
//!   netlist optimizer's `opt_over_o0` ratio on the regalloc tier (PR 8's
//!   tentpole win);
//! * `BENCH_hv_scaling.json` — the parallel scheduler's model speedup for
//!   the 8-worker / 32-tenant mixed fleet (PR 3's tentpole win);
//! * `BENCH_telemetry.json` — the telemetry subsystem's overhead budget:
//!   enabling metrics + the flight recorder may not slow the regalloc-tier
//!   hot loop by more than `allowed_overhead` (a hard bound, zero
//!   tolerance — see [`run_checks`]);
//! * `BENCH_cluster_serving.json` — the deterministic cluster-serving gate:
//!   the smoke-scale tenant-churn run (seeded churn + seeded fault plan)
//!   must reproduce the committed p99 round latency **exactly** and lose
//!   zero tenants (PR 9's tentpole win; zero tolerance, both directions).
//!
//! Only *ratios* are compared — absolute ticks/sec vary wildly across CI
//! runners, but the compiled/interpreted and parallel/sequential ratios are
//! machine-stable. A metric that drops more than its tolerance (usually
//! [`TOLERANCE`]) below its baseline fails the gate (exit code 1); the
//! comparison table prints either way.
//!
//! `SYNERGY_REGRESS_HANDICAP=<factor>` divides every measured ratio — the
//! knob used to verify the gate actually fails on an artificially slowed
//! build.

use crate::jsonish::{num_field, objects_in_array, str_field};
use crate::scaling;
use std::time::Instant;

/// Allowed fractional drop below baseline before the gate fails.
pub const TOLERANCE: f64 = 0.25;

/// One gate check: a measured ratio against its committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Metric name (e.g. `interp_vs_compiled/nw`).
    pub name: String,
    /// Baseline value from the committed JSON.
    pub baseline: f64,
    /// Freshly measured value.
    pub measured: f64,
    /// Allowed fractional drop below baseline for *this* check (most checks
    /// use [`TOLERANCE`]; hard budgets like the telemetry overhead use 0.0).
    pub tolerance: f64,
}

impl Check {
    /// measured / baseline.
    pub fn ratio(&self) -> f64 {
        self.measured / self.baseline.max(1e-9)
    }

    /// `true` if the metric regressed beyond the check's tolerance.
    pub fn regressed(&self) -> bool {
        self.ratio() < 1.0 - self.tolerance
    }
}

/// Artificial slowdown factor for gate verification (defaults to 1.0).
fn handicap() -> f64 {
    std::env::var("SYNERGY_REGRESS_HANDICAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|f: &f64| *f > 0.0)
        .unwrap_or(1.0)
}

/// Which execution engine a measurement times.
#[derive(Clone, Copy)]
enum Measured {
    Interpreter,
    /// A compiled tier; `opt` selects whether the netlist optimization
    /// pipeline (synergy-opt, the default at runtime) runs first.
    Compiled(synergy::codegen::Tier, OptState),
}

/// Whether the measured program went through the optimizer.
#[derive(Clone, Copy)]
enum OptState {
    O0,
    Optimized,
}

/// Times one workload on one engine: best of `reps` timings of `ticks`
/// ticks each (to shave runner noise), with construction and lowering kept
/// *outside* the timed region so the measurement is steady-state. Returns
/// nanoseconds **per tick**, so callers may pick per-engine tick counts
/// (interpreter samples are expensive; compiled samples need to be long
/// enough that a 50µs timed region's noise doesn't flap a 25% gate).
fn measure_ticks_ns(
    bench: &synergy::Benchmark,
    engine: Measured,
    ticks: usize,
    reps: usize,
) -> f64 {
    let design = synergy::vlog::compile(&bench.source, &bench.top).expect("workload compiles");
    let input = bench.input_path.as_ref().map(|p| {
        (
            p.clone(),
            synergy::workloads::input_data(&bench.name, 4 * ticks),
        )
    });
    let base_sim = match engine {
        Measured::Interpreter => None,
        Measured::Compiled(tier, opt) => {
            let mut prog = synergy::codegen::compile(&design).expect("lowers");
            if matches!(opt, OptState::Optimized) {
                let report =
                    synergy::opt::optimize_with_passes(&mut prog, &synergy::opt::PASS_NAMES);
                assert!(
                    !report.any_reverted(),
                    "optimizer pass reverted on {}",
                    bench.name
                );
            }
            Some(synergy::codegen::CompiledSim::with_tier(prog, tier).expect("translates"))
        }
    };
    (0..reps)
        .map(|_| {
            let mut env = synergy::interp::BufferEnv::new();
            if let Some((path, data)) = &input {
                env.add_file(path.clone(), data.clone());
            }
            match &base_sim {
                Some(base) => {
                    let mut sim = base.clone();
                    let start = Instant::now();
                    for _ in 0..ticks {
                        sim.tick(&bench.clock, &mut env).expect("ticks");
                    }
                    start.elapsed().as_nanos() as u64
                }
                None => {
                    let mut interp = synergy::interp::Interpreter::new(design.clone());
                    let start = Instant::now();
                    for _ in 0..ticks {
                        interp.tick(&bench.clock, &mut env).expect("ticks");
                    }
                    start.elapsed().as_nanos() as u64
                }
            }
        })
        .min()
        .expect("at least one rep") as f64
        / ticks.max(1) as f64
}

/// Measures the optimizer's speedup on the regalloc tier as a *paired*
/// interleaved ratio: O0 and optimized reps alternate within one process
/// and the ratio of minimums is returned. A ratio centred near 1.0 with a
/// 25% gate needs far less measurement noise than the big interp-vs-compiled
/// ratios tolerate, and interleaving cancels frequency scaling and runner
/// contention that separate 200-tick samples would inherit.
fn measure_opt_ratio(bench: &synergy::Benchmark, ticks: usize, reps: usize) -> f64 {
    let design = synergy::vlog::compile(&bench.source, &bench.top).expect("workload compiles");
    let prog = synergy::codegen::compile(&design).expect("lowers");
    let mut oprog = prog.clone();
    let report = synergy::opt::optimize_with_passes(&mut oprog, &synergy::opt::PASS_NAMES);
    assert!(
        !report.any_reverted(),
        "optimizer pass reverted on {}",
        bench.name
    );
    let o0 = synergy::codegen::CompiledSim::with_tier(prog, synergy::codegen::Tier::RegAlloc)
        .expect("translates");
    let o1 = synergy::codegen::CompiledSim::with_tier(oprog, synergy::codegen::Tier::RegAlloc)
        .expect("translates");
    let time_one = |base: &synergy::codegen::CompiledSim| {
        let mut env = synergy::interp::BufferEnv::new();
        if let Some(p) = &bench.input_path {
            env.add_file(
                p.clone(),
                synergy::workloads::input_data(&bench.name, 4 * ticks),
            );
        }
        let mut sim = base.clone();
        let start = Instant::now();
        for _ in 0..ticks {
            sim.tick(&bench.clock, &mut env).expect("ticks");
        }
        start.elapsed().as_nanos() as u64
    };
    let (mut best0, mut best1) = (u64::MAX, u64::MAX);
    for _ in 0..reps {
        best0 = best0.min(time_one(&o0));
        best1 = best1.min(time_one(&o1));
    }
    best0 as f64 / best1.max(1) as f64
}

/// Measures the fractional slowdown of enabling telemetry on the regalloc
/// compiled tier: `calls` [`synergy::Runtime::run_ticks`]`(batch)` calls
/// timed with telemetry on vs off, as the median of `reps` paired ratios.
///
/// `batch` mirrors the hypervisor's call shape: `run_round` hands each
/// tenant one `run_ticks(tick_budget)` call per round, so the per-call
/// `note_run` epilogue (counter deltas, histogram observe) amortises over a
/// round's budget, never over a single tick. Each rep times an off/on pair
/// back-to-back (alternating order) and contributes one on/off ratio; the
/// median of the paired ratios cancels frequency scaling, thermal drift,
/// and contention spikes that a ratio-of-minimums would inherit from
/// whichever phase a spike happened to land on.
fn measure_telemetry_overhead(
    bench: &synergy::Benchmark,
    calls: u64,
    batch: u64,
    reps: usize,
) -> f64 {
    let one_run = |on: bool| {
        let mut rt = synergy::Runtime::with_policy(
            bench.name.clone(),
            &bench.source,
            &bench.top,
            &bench.clock,
            synergy::EnginePolicy::Compiled,
        )
        .expect("workload compiles");
        rt.set_compiled_tier(synergy::CompiledTier::RegAlloc)
            .expect("workload lowers to the regalloc tier");
        if let Some(path) = &bench.input_path {
            rt.add_file(
                path.clone(),
                synergy::workloads::input_data(&bench.name, 8 * (calls * batch) as usize),
            );
        }
        synergy::telemetry::set_enabled(on);
        let start = Instant::now();
        for _ in 0..calls {
            rt.run_ticks(batch).expect("ticks");
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        synergy::telemetry::set_enabled(false);
        elapsed
    };
    let mut ratios: Vec<f64> = (0..reps)
        .map(|rep| {
            let (off, on) = if rep % 2 == 0 {
                let off = one_run(false);
                let on = one_run(true);
                (off, on)
            } else {
                let on = one_run(true);
                let off = one_run(false);
                (off, on)
            };
            on as f64 / off.max(1) as f64
        })
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    ratios[ratios.len() / 2]
}

/// Runs every gate check against the committed baselines.
///
/// `interp_vs_compiled` / `hv_scaling` / `telemetry` are the baseline JSON
/// texts (the caller reads the files so the bin controls paths and error
/// reporting).
///
/// The telemetry check inverts the usual direction: `baseline` is the
/// *measured* overhead of enabling telemetry (clamped to ≥ 1.0) and
/// `measured` is the committed `allowed_overhead` budget, so the gate fails
/// — with zero tolerance — exactly when the measured overhead exceeds the
/// budget. The handicap divides the budget, which verifiably forces a
/// failure.
///
/// The cluster-serving checks exploit that the serving benchmark is fully
/// virtual and therefore bit-deterministic: the gate re-runs the committed
/// `gate` config and demands **exact equality** (zero tolerance, both
/// directions) on the p99 round latency, plus `survival == 1.0` (no tenant
/// lost to the seeded fault plan). Any drift in scheduling, placement,
/// checkpointing, or crash recovery fails the gate. The handicap divides
/// each measured side, which verifiably forces a failure.
pub fn run_checks(
    interp_vs_compiled: &str,
    hv_scaling: &str,
    telemetry: &str,
    cluster_serving: &str,
) -> Vec<Check> {
    let handicap = handicap();
    let mut checks = Vec::new();

    for obj in objects_in_array(interp_vs_compiled, "results") {
        let workload = str_field(obj, "workload").expect("baseline row names a workload");
        let baseline = num_field(obj, "speedup").expect("baseline row has a speedup");
        let bench = synergy::workloads::by_name(&workload)
            .unwrap_or_else(|| panic!("baseline names unknown workload '{}'", workload));
        let interp_ns = measure_ticks_ns(&bench, Measured::Interpreter, 200, 3);
        let stack_ns = measure_ticks_ns(
            &bench,
            Measured::Compiled(synergy::codegen::Tier::Stack, OptState::O0),
            2000,
            4,
        );
        let regalloc_ns = measure_ticks_ns(
            &bench,
            Measured::Compiled(synergy::codegen::Tier::RegAlloc, OptState::O0),
            4000,
            4,
        );
        let opt_ns = measure_ticks_ns(
            &bench,
            Measured::Compiled(synergy::codegen::Tier::RegAlloc, OptState::Optimized),
            4000,
            4,
        );
        // The headline speedup is the *default* compiled engine (optimized
        // regalloc tier) over the interpreter.
        checks.push(Check {
            name: format!("interp_vs_compiled/{}", workload),
            baseline,
            measured: interp_ns / opt_ns.max(1e-9) / handicap,
            tolerance: TOLERANCE,
        });
        // The regalloc tier must also hold its ratio over the stack tier
        // (PR 4's tentpole win; both at O0 so the ratio isolates the tier).
        let baseline_tiers =
            num_field(obj, "regalloc_over_stack").expect("baseline row has regalloc_over_stack");
        checks.push(Check {
            name: format!("compiled_vs_regalloc/{}", workload),
            baseline: baseline_tiers,
            measured: stack_ns / regalloc_ns.max(1e-9) / handicap,
            tolerance: TOLERANCE,
        });
        // The optimizer must never pessimize the regalloc tier (PR 8's
        // tentpole): measured optimized-over-O0 as a paired interleaved
        // ratio, baseline from the committed honest measurement. With the
        // shared TOLERANCE this fails closed when the pipeline makes any
        // workload ~25% slower than its committed ratio.
        let baseline_opt = num_field(obj, "opt_over_o0").expect("baseline row has opt_over_o0");
        checks.push(Check {
            name: format!("opt_over_o0/{}", workload),
            baseline: baseline_opt,
            measured: measure_opt_ratio(&bench, 4000, 4) / handicap,
            tolerance: TOLERANCE,
        });
    }

    let baseline_scaling = num_field(hv_scaling, "model_speedup_8_workers_32_tenants")
        .expect("hv_scaling baseline has the 8-worker/32-tenant summary");
    let ms = scaling::run_scaling_model(&[0, 8], &[32], 3);
    let measured = scaling::model_speedup(&ms, 8, 32).expect("sweep covers 8w/32t") / handicap;
    checks.push(Check {
        name: "hv_scaling/model_speedup_8w_32t".into(),
        baseline: baseline_scaling,
        measured,
        tolerance: TOLERANCE,
    });

    let allowed =
        num_field(telemetry, "allowed_overhead").expect("telemetry baseline has allowed_overhead");
    let bench = synergy::workloads::by_name("nw").expect("nw workload exists");
    // 64-tick batches: the smallest round budget the hypervisor plausibly
    // hands out (round_tick_cap is 512 by default), i.e. the *most*
    // epilogue-heavy realistic shape.
    let overhead = measure_telemetry_overhead(&bench, 100, 64, 7);
    checks.push(Check {
        name: "telemetry/regalloc_overhead_budget".into(),
        baseline: overhead.max(1.0),
        measured: allowed / handicap,
        tolerance: 0.0,
    });

    let committed_p99 = num_field(cluster_serving, "gate_p99_round_ticks")
        .expect("cluster_serving baseline has gate_p99_round_ticks");
    let committed_survival = num_field(cluster_serving, "gate_survival")
        .expect("cluster_serving baseline has gate_survival");
    let fresh = crate::serving::run_serving(&crate::serving::ServingConfig::gate());
    // Exact-equality pin, both directions: the floor check fails when the
    // fresh p99 falls below the committed value, the ceiling check fails
    // when it rises above it. Together they demand bit-identical behaviour.
    checks.push(Check {
        name: "cluster_serving/p99_floor".into(),
        baseline: committed_p99,
        measured: fresh.p99_round_ticks as f64 / handicap,
        tolerance: 0.0,
    });
    checks.push(Check {
        name: "cluster_serving/p99_ceiling".into(),
        baseline: fresh.p99_round_ticks as f64,
        measured: committed_p99 / handicap,
        tolerance: 0.0,
    });
    // Zero tenant loss under the seeded fault plan, and the committed
    // artifact must claim the same.
    checks.push(Check {
        name: "cluster_serving/survival".into(),
        baseline: committed_survival.max(1.0),
        measured: fresh.survival / handicap,
        tolerance: 0.0,
    });

    checks
}

/// Renders the comparison table.
pub fn checks_table(checks: &[Check]) -> String {
    let mut out = String::from(
        "metric                                baseline   measured   measured/baseline   status\n",
    );
    for c in checks {
        out.push_str(&format!(
            "{:<36}  {:>8.2}   {:>8.2}   {:>17.2}   {}\n",
            c.name,
            c.baseline,
            c.measured,
            c.ratio(),
            if c.regressed() {
                "REGRESSED"
            } else if c.ratio() > 1.0 + TOLERANCE {
                "improved"
            } else {
                "ok"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_threshold_is_25_percent() {
        let ok = Check {
            name: "m".into(),
            baseline: 10.0,
            measured: 7.6,
            tolerance: TOLERANCE,
        };
        assert!(!ok.regressed());
        let bad = Check {
            name: "m".into(),
            baseline: 10.0,
            measured: 7.4,
            tolerance: TOLERANCE,
        };
        assert!(bad.regressed());
        let table = checks_table(&[ok, bad]);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("ok"));
    }

    #[test]
    fn hard_budget_checks_fail_on_any_overrun() {
        // The telemetry overhead check: baseline is the measured overhead,
        // measured is the budget, tolerance is zero — the slightest overrun
        // regresses.
        let within = Check {
            name: "telemetry/regalloc_overhead_budget".into(),
            baseline: 1.01,
            measured: 1.03,
            tolerance: 0.0,
        };
        assert!(!within.regressed());
        let overrun = Check {
            name: "telemetry/regalloc_overhead_budget".into(),
            baseline: 1.05,
            measured: 1.03,
            tolerance: 0.0,
        };
        assert!(overrun.regressed());
    }

    #[test]
    fn summary_speedup_parses_from_the_scaling_schema() {
        let json = scaling::scaling_json(
            &[
                scaling::ScalingMeasurement {
                    workers: 0,
                    tenants: 32,
                    rounds: 2,
                    total_ticks: 100,
                    wall_ns: 8_000,
                    model_ns: 8_000,
                },
                scaling::ScalingMeasurement {
                    workers: 8,
                    tenants: 32,
                    rounds: 2,
                    total_ticks: 100,
                    wall_ns: 8_000,
                    model_ns: 1_000,
                },
            ],
            "2026-01-01",
        );
        let v = num_field(&json, "model_speedup_8_workers_32_tenants");
        assert_eq!(v, Some(8.0));
    }
}
