//! The CI performance-regression gate.
//!
//! Re-measures the two committed performance envelopes at smoke scale and
//! compares them against the checked-in `BENCH_*.json` baselines:
//!
//! * `BENCH_interp_vs_compiled.json` — per workload, the default compiled
//!   engine's (regalloc tier) speedup over the interpreter (PR 1/2's
//!   tentpole win) *and* the regalloc tier's `regalloc_over_stack` ratio
//!   over the stack-bytecode tier (PR 4's tentpole win);
//! * `BENCH_hv_scaling.json` — the parallel scheduler's model speedup for
//!   the 8-worker / 32-tenant mixed fleet (PR 3's tentpole win).
//!
//! Only *ratios* are compared — absolute ticks/sec vary wildly across CI
//! runners, but the compiled/interpreted and parallel/sequential ratios are
//! machine-stable. A metric that drops more than [`TOLERANCE`] below its
//! baseline fails the gate (exit code 1); the comparison table prints either
//! way.
//!
//! `SYNERGY_REGRESS_HANDICAP=<factor>` divides every measured ratio — the
//! knob used to verify the gate actually fails on an artificially slowed
//! build.

use crate::jsonish::{num_field, objects_in_array, str_field};
use crate::scaling;
use std::time::Instant;

/// Allowed fractional drop below baseline before the gate fails.
pub const TOLERANCE: f64 = 0.25;

/// One gate check: a measured ratio against its committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Metric name (e.g. `interp_vs_compiled/nw`).
    pub name: String,
    /// Baseline value from the committed JSON.
    pub baseline: f64,
    /// Freshly measured value.
    pub measured: f64,
}

impl Check {
    /// measured / baseline.
    pub fn ratio(&self) -> f64 {
        self.measured / self.baseline.max(1e-9)
    }

    /// `true` if the metric regressed beyond the tolerance.
    pub fn regressed(&self) -> bool {
        self.ratio() < 1.0 - TOLERANCE
    }
}

/// Artificial slowdown factor for gate verification (defaults to 1.0).
fn handicap() -> f64 {
    std::env::var("SYNERGY_REGRESS_HANDICAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|f: &f64| *f > 0.0)
        .unwrap_or(1.0)
}

/// Which execution engine a measurement times.
#[derive(Clone, Copy)]
enum Measured {
    Interpreter,
    Compiled(synergy::codegen::Tier),
}

/// Times one workload on one engine: best of `reps` timings of `ticks`
/// ticks each (to shave runner noise), with construction and lowering kept
/// *outside* the timed region so the measurement is steady-state ticks/sec.
fn measure_ticks_ns(
    bench: &synergy::Benchmark,
    engine: Measured,
    ticks: usize,
    reps: usize,
) -> u64 {
    let design = synergy::vlog::compile(&bench.source, &bench.top).expect("workload compiles");
    let input = bench.input_path.as_ref().map(|p| {
        (
            p.clone(),
            synergy::workloads::input_data(&bench.name, 4 * ticks),
        )
    });
    let base_sim = match engine {
        Measured::Interpreter => None,
        Measured::Compiled(tier) => {
            let prog = synergy::codegen::compile(&design).expect("lowers");
            Some(synergy::codegen::CompiledSim::with_tier(prog, tier).expect("translates"))
        }
    };
    (0..reps)
        .map(|_| {
            let mut env = synergy::interp::BufferEnv::new();
            if let Some((path, data)) = &input {
                env.add_file(path.clone(), data.clone());
            }
            match &base_sim {
                Some(base) => {
                    let mut sim = base.clone();
                    let start = Instant::now();
                    for _ in 0..ticks {
                        sim.tick(&bench.clock, &mut env).expect("ticks");
                    }
                    start.elapsed().as_nanos() as u64
                }
                None => {
                    let mut interp = synergy::interp::Interpreter::new(design.clone());
                    let start = Instant::now();
                    for _ in 0..ticks {
                        interp.tick(&bench.clock, &mut env).expect("ticks");
                    }
                    start.elapsed().as_nanos() as u64
                }
            }
        })
        .min()
        .expect("at least one rep")
}

/// Runs every gate check against the committed baselines.
///
/// `interp_vs_compiled` / `hv_scaling` are the baseline JSON texts (the
/// caller reads the files so the bin controls paths and error reporting).
pub fn run_checks(interp_vs_compiled: &str, hv_scaling: &str) -> Vec<Check> {
    let handicap = handicap();
    let mut checks = Vec::new();

    for obj in objects_in_array(interp_vs_compiled, "results") {
        let workload = str_field(obj, "workload").expect("baseline row names a workload");
        let baseline = num_field(obj, "speedup").expect("baseline row has a speedup");
        let bench = synergy::workloads::by_name(&workload)
            .unwrap_or_else(|| panic!("baseline names unknown workload '{}'", workload));
        let interp_ns = measure_ticks_ns(&bench, Measured::Interpreter, 200, 3);
        let stack_ns = measure_ticks_ns(
            &bench,
            Measured::Compiled(synergy::codegen::Tier::Stack),
            200,
            3,
        );
        let regalloc_ns = measure_ticks_ns(
            &bench,
            Measured::Compiled(synergy::codegen::Tier::RegAlloc),
            200,
            3,
        );
        // The headline speedup is the *default* compiled engine (regalloc
        // tier) over the interpreter.
        checks.push(Check {
            name: format!("interp_vs_compiled/{}", workload),
            baseline,
            measured: interp_ns as f64 / regalloc_ns.max(1) as f64 / handicap,
        });
        // The regalloc tier must also hold its ratio over the stack tier
        // (this PR's tentpole win).
        let baseline_tiers =
            num_field(obj, "regalloc_over_stack").expect("baseline row has regalloc_over_stack");
        checks.push(Check {
            name: format!("compiled_vs_regalloc/{}", workload),
            baseline: baseline_tiers,
            measured: stack_ns as f64 / regalloc_ns.max(1) as f64 / handicap,
        });
    }

    let baseline_scaling = num_field(hv_scaling, "model_speedup_8_workers_32_tenants")
        .expect("hv_scaling baseline has the 8-worker/32-tenant summary");
    let ms = scaling::run_scaling_model(&[0, 8], &[32], 3);
    let measured = scaling::model_speedup(&ms, 8, 32).expect("sweep covers 8w/32t") / handicap;
    checks.push(Check {
        name: "hv_scaling/model_speedup_8w_32t".into(),
        baseline: baseline_scaling,
        measured,
    });

    checks
}

/// Renders the comparison table.
pub fn checks_table(checks: &[Check]) -> String {
    let mut out = String::from(
        "metric                                baseline   measured   measured/baseline   status\n",
    );
    for c in checks {
        out.push_str(&format!(
            "{:<36}  {:>8.2}   {:>8.2}   {:>17.2}   {}\n",
            c.name,
            c.baseline,
            c.measured,
            c.ratio(),
            if c.regressed() {
                "REGRESSED"
            } else if c.ratio() > 1.0 + TOLERANCE {
                "improved"
            } else {
                "ok"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_threshold_is_25_percent() {
        let ok = Check {
            name: "m".into(),
            baseline: 10.0,
            measured: 7.6,
        };
        assert!(!ok.regressed());
        let bad = Check {
            name: "m".into(),
            baseline: 10.0,
            measured: 7.4,
        };
        assert!(bad.regressed());
        let table = checks_table(&[ok, bad]);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("ok"));
    }

    #[test]
    fn summary_speedup_parses_from_the_scaling_schema() {
        let json = scaling::scaling_json(
            &[
                scaling::ScalingMeasurement {
                    workers: 0,
                    tenants: 32,
                    rounds: 2,
                    total_ticks: 100,
                    wall_ns: 8_000,
                    model_ns: 8_000,
                },
                scaling::ScalingMeasurement {
                    workers: 8,
                    tenants: 32,
                    rounds: 2,
                    total_ticks: 100,
                    wall_ns: 8_000,
                    model_ns: 1_000,
                },
            ],
            "2026-01-01",
        );
        let v = num_field(&json, "model_speedup_8_workers_32_tenants");
        assert_eq!(v, Some(8.0));
    }
}
