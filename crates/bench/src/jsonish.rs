//! Minimal JSON field extraction for the committed `BENCH_*.json` baselines.
//!
//! The build container is offline, the vendored `serde` is derive-annotation
//! only, and the baseline files are emitted by this workspace itself — so a
//! tiny scanner over that known shape (flat objects, no escaped strings)
//! beats hand-rolling a full parser. The regression gate reads baselines
//! through these helpers; `scaling_json` and the gate's own smoke
//! measurements emit the same shape, keeping write and read symmetric.

/// Returns the top-level `{...}` object spans of the array stored under
/// `"key": [ ... ]`.
pub fn objects_in_array<'a>(text: &'a str, key: &str) -> Vec<&'a str> {
    let needle = format!("\"{}\"", key);
    let Some(key_at) = text.find(&needle) else {
        return Vec::new();
    };
    let Some(open_rel) = text[key_at..].find('[') else {
        return Vec::new();
    };
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = None;
    for (i, b) in text[key_at + open_rel..].bytes().enumerate() {
        let pos = key_at + open_rel + i;
        match b {
            b'{' => {
                if depth == 0 {
                    obj_start = Some(pos);
                }
                depth += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(start) = obj_start.take() {
                        objects.push(&text[start..=pos]);
                    }
                }
            }
            b']' if depth == 0 => break,
            _ => {}
        }
    }
    objects
}

/// Extracts a numeric field from an object span.
pub fn num_field(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{}\"", key);
    let at = obj.find(&needle)?;
    let rest = obj[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field from an object span (no escape handling — the
/// baseline emitters never escape).
pub fn str_field(obj: &str, key: &str) -> Option<String> {
    let needle = format!("\"{}\"", key);
    let at = obj.find(&needle)?;
    let rest = obj[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "benchmark": "interp_vs_compiled",
      "results": [
        { "workload": "adpcm", "speedup": 14.58 },
        { "workload": "nw", "interp_ticks_per_sec": 3192, "speedup": 12.78 }
      ],
      "summary": { "x": 1 }
    }"#;

    #[test]
    fn extracts_objects_and_fields() {
        let objs = objects_in_array(SAMPLE, "results");
        assert_eq!(objs.len(), 2);
        assert_eq!(str_field(objs[0], "workload").as_deref(), Some("adpcm"));
        assert_eq!(num_field(objs[0], "speedup"), Some(14.58));
        assert_eq!(num_field(objs[1], "interp_ticks_per_sec"), Some(3192.0));
        assert_eq!(str_field(objs[1], "workload").as_deref(), Some("nw"));
        assert_eq!(num_field(objs[0], "missing"), None);
        assert!(objects_in_array(SAMPLE, "nonesuch").is_empty());
    }

    #[test]
    fn round_trips_the_scaling_emitter() {
        let ms = vec![
            crate::scaling::ScalingMeasurement {
                workers: 0,
                tenants: 8,
                rounds: 2,
                total_ticks: 1000,
                wall_ns: 5_000_000,
                model_ns: 5_000_000,
            },
            crate::scaling::ScalingMeasurement {
                workers: 4,
                tenants: 8,
                rounds: 2,
                total_ticks: 1000,
                wall_ns: 5_000_000,
                model_ns: 1_500_000,
            },
        ];
        let json = crate::scaling::scaling_json(&ms, "2026-01-01");
        let objs = objects_in_array(&json, "results");
        assert_eq!(objs.len(), 2);
        assert_eq!(num_field(objs[1], "workers"), Some(4.0));
        let speedup = num_field(objs[1], "model_speedup").unwrap();
        assert!((speedup - 10.0 / 3.0).abs() < 0.01);
    }
}
