//! The tenant-churn cluster-serving benchmark behind
//! `BENCH_cluster_serving.json`.
//!
//! Drives a [`ControlPlane`] the way a production
//! fleet is driven: tenants arrive and depart every round over 4–16 simulated
//! nodes, the rebalancer sheds load across the watermarks, periodic fleet
//! checkpoints land in the ring, and (optionally) a seeded
//! [`FaultPlan`] kills nodes mid-run so crash recovery is
//! part of the measured serving loop.
//!
//! Every reported figure is **virtual** — round latencies in simulated ticks,
//! migration downtime in simulated nanoseconds, recovery cost in replayed
//! rounds — so the benchmark is bit-deterministic for a `(config, seed)`
//! pair on any machine. That is what lets the `regress` gate compare the
//! committed gate numbers with **zero tolerance**: any drift in scheduling,
//! placement, checkpointing, or recovery behaviour trips CI.

use synergy::{ControlConfig, ControlPlane, Device, FaultKind, FaultPlan, TenantSpec};

/// The tenant program: a tiny counter, cheap enough that thousand-tenant
/// fleets run in seconds but stateful enough that lost ticks are visible.
const TENANT_SOURCE: &str = r#"
    module Worker(input wire clock, output wire [31:0] out);
        reg [31:0] acc = 0;
        always @(posedge clock) acc <= acc + 3;
        assign out = acc;
    endmodule
"#;

/// One serving-sweep configuration. Everything that shapes behaviour is in
/// here, so the gate can re-run the committed config exactly.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Simulated nodes (4–16 in the committed artifact).
    pub nodes: usize,
    /// Total tenants admitted over the run.
    pub tenants: usize,
    /// Control rounds driven.
    pub rounds: u64,
    /// Seed for the churn schedule (arrivals/departures per round).
    pub churn_seed: u64,
    /// Seed for the fault plan; `None` runs fault-free.
    pub fault_seed: Option<u64>,
}

impl ServingConfig {
    /// The committed full-scale artifact: 1,200 tenants over 8 nodes.
    pub fn full() -> Self {
        ServingConfig {
            nodes: 8,
            tenants: 1200,
            rounds: 48,
            churn_seed: 7,
            fault_seed: Some(11),
        }
    }

    /// The smoke-scale config the `regress` gate re-runs on every CI build.
    pub fn gate() -> Self {
        ServingConfig {
            nodes: 4,
            tenants: 48,
            rounds: 16,
            churn_seed: 7,
            fault_seed: Some(11),
        }
    }
}

/// What one serving run measured. All figures deterministic except
/// `wall_ms`, which is informational only and never gated.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// The configuration that produced the numbers.
    pub config: ServingConfig,
    /// Tenants admitted over the run.
    pub admitted: usize,
    /// Tenants departed by the churn schedule.
    pub departed: usize,
    /// Median per-round latency: the fleet's critical path in virtual ticks
    /// (max over nodes of the round's executed ticks).
    pub p50_round_ticks: u64,
    /// 99th-percentile per-round latency in virtual ticks.
    pub p99_round_ticks: u64,
    /// Rebalancing migrations performed.
    pub migrations: u64,
    /// Migrations that failed and rolled back (injected or organic).
    pub migration_failures: u64,
    /// Mean virtual downtime per successful migration, in simulated ns.
    pub mean_migration_downtime_ns: u64,
    /// Crash recoveries performed.
    pub recoveries: usize,
    /// Scheduling rounds re-executed across all recoveries (the virtual
    /// recovery cost; multiply by the round tick cap for per-tenant ticks).
    pub recovery_replayed_rounds: u64,
    /// Tenants alive at the end.
    pub survivors: usize,
    /// Tenants the journal says should be alive at the end.
    pub expected_alive: usize,
    /// `survivors / expected_alive` — 1.0 means zero tenant loss.
    pub survival: f64,
    /// Host wall-clock for the run (informational, non-deterministic).
    pub wall_ms: u64,
}

/// xorshift* churn RNG (same shape as the repo's fuzz sweeps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn spec(index: usize) -> TenantSpec {
    TenantSpec {
        name: format!("tenant-{:05}", index),
        source: TENANT_SOURCE.to_string(),
        top: "Worker".to_string(),
        clock: "clock".to_string(),
        domain: index as u64 + 1,
        io_bound: false,
    }
}

/// Runs one serving sweep: seeded churn + optional seeded faults over a
/// control plane, collecting the virtual serving metrics.
pub fn run_serving(config: &ServingConfig) -> ServingReport {
    let start = std::time::Instant::now();
    let nodes = config.nodes.max(1);
    // Capacity sized so the peak fleet fits with ~2x headroom — admission
    // control is exercised by load scoring, not by turning tenants away.
    let capacity = (config.tenants * 2 / nodes).max(4);
    // Watermarks sit just above the fleet's steady-state load (~330‰ with
    // 2x capacity headroom): an even fleet is left alone, but the skew a
    // node kill leaves behind — packed survivors, an empty revived node —
    // trips the rebalancer, so the run measures self-healing migrations.
    // The band is wider than one tenant's worth of load (1000/capacity) so
    // steady-state churn cannot make the rebalancer thrash.
    let mut cp = ControlPlane::new(ControlConfig {
        software_capacity: Some(capacity),
        checkpoint_interval: 4,
        high_watermark: 350,
        low_watermark: 200,
        ..ControlConfig::default()
    });
    cp.set_engine_policy(synergy::EnginePolicy::Auto);
    for i in 0..nodes {
        // Heterogeneous fleet, as in the paper's cluster: every fourth node
        // is a big F1 instance, the rest are DE10s.
        cp.add_node(if i % 4 == 3 {
            Device::f1()
        } else {
            Device::de10()
        });
    }
    if let Some(seed) = config.fault_seed {
        let mut plan = FaultPlan::seeded(seed, config.rounds, nodes);
        // The seeded mix alone may roll no node kill, and a serving run must
        // always measure the recovery path — so pin one seed-derived kill on
        // top of it. The kill lands at 3/4 of the run, off the checkpoint
        // cadence (forcing journal replay) and after arrivals have drained,
        // so the revived node comes back genuinely empty and the following
        // rounds measure the rebalancer re-packing it. A checkpoint
        // corruption and an armed migration failure ride along to keep the
        // fallback and backoff paths in the measured run.
        plan.push(config.rounds / 3, FaultKind::CorruptCheckpoint);
        let kill_round = config.rounds * 3 / 4 + 1;
        plan.push(kill_round, FaultKind::KillNode(seed as usize % nodes));
        plan.push(kill_round + 2, FaultKind::FailMigration);
        cp.set_fault_plan(plan);
    }

    let mut rng = Rng::new(config.churn_seed);
    let mut admitted = 0usize;
    let mut departed = 0usize;
    let mut alive: Vec<String> = Vec::new();
    let mut round_ticks: Vec<u64> = Vec::new();
    // Arrivals finish by two-thirds of the run (departures run throughout):
    // the tail third serves a stable fleet, which is where the pinned kill
    // lands and the post-recovery rebalancing is measured.
    let arrival_span = (config.rounds as usize * 2 / 3).max(1);
    let arrivals_per_round = config.tenants.div_ceil(arrival_span).max(1);

    for round in 0..config.rounds {
        // Arrivals: front-loaded evenly; departures: a seeded third of the
        // arrival rate once the fleet has warmed up, oldest-biased.
        while admitted < config.tenants && admitted < arrivals_per_round * (round as usize + 1) {
            let s = spec(admitted);
            alive.push(s.name.clone());
            cp.admit(s)
                .expect("admission (capacity is sized with headroom)");
            admitted += 1;
        }
        if round > 2 && !alive.is_empty() {
            for _ in 0..arrivals_per_round.div_ceil(3) {
                if alive.len() <= 1 {
                    break;
                }
                let pick = (rng.below(alive.len() as u64 / 2 + 1)) as usize;
                let name = alive.remove(pick);
                cp.depart(&name).expect("departing a live tenant");
                departed += 1;
            }
        }
        cp.step().expect("control round");
        let worst = cp
            .cluster()
            .node_ids()
            .into_iter()
            .map(|id| cp.cluster().node(id).last_round_ticks())
            .max()
            .unwrap_or(0);
        round_ticks.push(worst);
    }

    round_ticks.sort_unstable();
    let pct = |p: f64| -> u64 {
        if round_ticks.is_empty() {
            return 0;
        }
        let idx = ((round_ticks.len() as f64 - 1.0) * p).round() as usize;
        round_ticks[idx]
    };
    let survivors = cp.tenants().len();
    let expected_alive = alive.len();
    let recovery_replayed_rounds = cp
        .recoveries()
        .iter()
        .map(|r| r.replayed_rounds)
        .sum::<u64>();
    ServingReport {
        config: config.clone(),
        admitted,
        departed,
        p50_round_ticks: pct(0.50),
        p99_round_ticks: pct(0.99),
        migrations: cp.migrations(),
        migration_failures: cp.migration_failures(),
        mean_migration_downtime_ns: cp
            .migration_downtime_ns()
            .checked_div(cp.migrations())
            .unwrap_or(0),
        recoveries: cp.recoveries().len(),
        recovery_replayed_rounds,
        survivors,
        expected_alive,
        survival: if expected_alive == 0 {
            1.0
        } else {
            survivors as f64 / expected_alive as f64
        },
        wall_ms: start.elapsed().as_millis() as u64,
    }
}

fn report_fields(r: &ServingReport, prefix: &str, out: &mut String) {
    let p = prefix;
    out.push_str(&format!("    \"{}nodes\": {},\n", p, r.config.nodes));
    out.push_str(&format!("    \"{}tenants\": {},\n", p, r.config.tenants));
    out.push_str(&format!("    \"{}rounds\": {},\n", p, r.config.rounds));
    out.push_str(&format!(
        "    \"{}churn_seed\": {},\n",
        p, r.config.churn_seed
    ));
    out.push_str(&format!(
        "    \"{}fault_seed\": {},\n",
        p,
        r.config.fault_seed.map_or(-1, |s| s as i64)
    ));
    out.push_str(&format!("    \"{}admitted\": {},\n", p, r.admitted));
    out.push_str(&format!("    \"{}departed\": {},\n", p, r.departed));
    out.push_str(&format!(
        "    \"{}p50_round_ticks\": {},\n",
        p, r.p50_round_ticks
    ));
    out.push_str(&format!(
        "    \"{}p99_round_ticks\": {},\n",
        p, r.p99_round_ticks
    ));
    out.push_str(&format!("    \"{}migrations\": {},\n", p, r.migrations));
    out.push_str(&format!(
        "    \"{}migration_failures\": {},\n",
        p, r.migration_failures
    ));
    out.push_str(&format!(
        "    \"{}mean_migration_downtime_ns\": {},\n",
        p, r.mean_migration_downtime_ns
    ));
    out.push_str(&format!("    \"{}recoveries\": {},\n", p, r.recoveries));
    out.push_str(&format!(
        "    \"{}recovery_replayed_rounds\": {},\n",
        p, r.recovery_replayed_rounds
    ));
    out.push_str(&format!("    \"{}survivors\": {},\n", p, r.survivors));
    out.push_str(&format!(
        "    \"{}expected_alive\": {},\n",
        p, r.expected_alive
    ));
    out.push_str(&format!("    \"{}survival\": {:.4},\n", p, r.survival));
    out.push_str(&format!("    \"{}wall_ms\": {}", p, r.wall_ms));
}

/// Emits `BENCH_cluster_serving.json`: the full-scale artifact plus the
/// smoke-scale gate section the `regress` binary re-measures. Gate fields
/// carry a `gate_` prefix so the flat jsonish reader is unambiguous.
pub fn serving_json(full: &ServingReport, gate: &ServingReport, date: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"cluster_serving\",\n");
    out.push_str(&format!("  \"date\": \"{}\",\n", date));
    out.push_str(
        "  \"note\": \"virtual (deterministic) serving metrics: round latency in simulated \
         ticks, downtime in simulated ns; wall_ms is informational only\",\n",
    );
    out.push_str("  \"full\": {\n");
    report_fields(full, "", &mut out);
    out.push_str("\n  },\n");
    out.push_str("  \"gate\": {\n");
    report_fields(gate, "gate_", &mut out);
    out.push_str("\n  }\n}\n");
    out
}

/// Renders the human-readable summary table.
pub fn serving_table(r: &ServingReport) -> String {
    format!(
        "cluster serving: {} nodes, {} tenants over {} rounds (churn seed {}, fault seed {:?})\n\
         \x20 churn        : {} admitted, {} departed, {} alive at end\n\
         \x20 round latency: p50 {} ticks, p99 {} ticks\n\
         \x20 rebalancing  : {} migrations ({} failed), mean downtime {} virtual ns\n\
         \x20 recovery     : {} recoveries, {} rounds replayed\n\
         \x20 survival     : {}/{} tenants ({:.2}%)\n\
         \x20 wall clock   : {} ms\n",
        r.config.nodes,
        r.config.tenants,
        r.config.rounds,
        r.config.churn_seed,
        r.config.fault_seed,
        r.admitted,
        r.departed,
        r.survivors,
        r.p50_round_ticks,
        r.p99_round_ticks,
        r.migrations,
        r.migration_failures,
        r.mean_migration_downtime_ns,
        r.recoveries,
        r.recovery_replayed_rounds,
        r.survivors,
        r.expected_alive,
        r.survival * 100.0,
        r.wall_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_serving_run_is_deterministic_and_lossless() {
        let cfg = ServingConfig {
            nodes: 2,
            tenants: 8,
            rounds: 6,
            churn_seed: 3,
            fault_seed: Some(5),
        };
        let a = run_serving(&cfg);
        let b = run_serving(&cfg);
        assert_eq!(a.survival, 1.0, "no tenant may be lost");
        assert_eq!(a.p50_round_ticks, b.p50_round_ticks);
        assert_eq!(a.p99_round_ticks, b.p99_round_ticks);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.survivors, b.survivors);
        assert_eq!(a.recoveries, b.recoveries);
        assert!(a.admitted == 8);
    }

    #[test]
    fn serving_json_round_trips_through_jsonish() {
        let cfg = ServingConfig {
            nodes: 2,
            tenants: 6,
            rounds: 4,
            churn_seed: 1,
            fault_seed: None,
        };
        let r = run_serving(&cfg);
        let json = serving_json(&r, &r, "2026-01-01");
        assert_eq!(
            crate::jsonish::num_field(&json, "gate_p99_round_ticks"),
            Some(r.p99_round_ticks as f64)
        );
        assert_eq!(
            crate::jsonish::num_field(&json, "gate_survival"),
            Some((r.survival * 10000.0).round() / 10000.0)
        );
        assert_eq!(
            crate::jsonish::num_field(&json, "gate_nodes"),
            Some(r.config.nodes as f64)
        );
    }
}
