//! # synergy-bench
//!
//! Experiment harnesses and benchmark targets for the SYNERGY reproduction. Every
//! table and figure of the paper's evaluation has a corresponding function in
//! [`experiments`]; the `experiments` binary prints the rows/series, and the
//! Criterion benches under `benches/` time the same harnesses at smoke scale.
#![warn(missing_docs)]

pub mod experiments;
pub mod jsonish;
pub mod regress;
pub mod scaling;
pub mod serving;

pub use experiments::{
    execution_overheads, fig10_migration, fig11_temporal, fig12_spatial, fig13_14_15_overheads,
    fig9_suspend_resume, overheads_tables, quiescence_study, table1, Condition,
    ExecutionOverheadRow, Figure, OverheadRow, Point, QuiescenceRow, Scale, Series,
};
pub use regress::{checks_table, run_checks, Check, TOLERANCE};
pub use scaling::{
    model_speedup, run_scaling_sweep, scaling_json, scaling_table, ScalingMeasurement,
};
pub use serving::{run_serving, serving_json, serving_table, ServingConfig, ServingReport};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shape_holds() {
        let fig = fig9_suspend_resume(Scale::Smoke);
        let de10 = fig.series("de10").unwrap();
        let f1 = fig.series("f1").unwrap();
        // Hardware on F1 is faster than DE10, which is faster than the software
        // start of the DE10 curve.
        assert!(f1.peak() > de10.peak());
        assert!(de10.peak() > 1e6, "DE10 should reach millions of hashes/s");
        assert!(
            de10.points[0].rate < de10.peak() / 10.0,
            "software start is slow"
        );
        // The save introduces a visible dip on the DE10 curve.
        assert!(de10.trough() < de10.peak() / 2.0);
    }

    #[test]
    fn fig10_shape_holds() {
        let fig = fig10_migration(Scale::Smoke);
        let de10 = fig.series("de10").unwrap();
        let f1 = fig.series("f1").unwrap();
        assert!(f1.peak() > de10.peak());
        assert!(de10.trough() < de10.peak() / 2.0, "migration dip visible");
    }

    #[test]
    fn fig11_regex_throughput_halves_under_contention() {
        let fig = fig11_temporal(Scale::Smoke);
        let regex = fig.series("regex").unwrap();
        let n = regex.points.len();
        let solo: f64 =
            regex.points[1..n / 4].iter().map(|p| p.rate).sum::<f64>() / (n / 4 - 1) as f64;
        let mid = &regex.points[n / 3..2 * n / 3];
        let contended: f64 = mid.iter().map(|p| p.rate).sum::<f64>() / mid.len() as f64;
        assert!(
            contended < solo * 0.75,
            "contended {} should be well below solo {}",
            contended,
            solo
        );
    }

    #[test]
    fn fig12_clock_drops_when_adpcm_joins() {
        let fig = fig12_spatial(Scale::Smoke);
        let df = fig.series("df").unwrap();
        let n = df.points.len();
        let early: f64 =
            df.points[1..n / 3].iter().map(|p| p.rate).sum::<f64>() / (n / 3 - 1) as f64;
        let late: f64 = df.points[2 * n / 3 + 1..]
            .iter()
            .map(|p| p.rate)
            .sum::<f64>()
            / (n - 2 * n / 3 - 1) as f64;
        assert!(
            late < early * 0.8,
            "df virtual frequency should drop after adpcm joins: early {} late {}",
            early,
            late
        );
    }

    #[test]
    fn fig13_14_15_rows_are_complete_and_ordered() {
        let rows = fig13_14_15_overheads();
        assert_eq!(rows.len(), 6 * 5);
        for bench in synergy_workloads::all() {
            let native = rows
                .iter()
                .find(|r| r.benchmark == bench.name && r.condition == Condition::AosNative)
                .unwrap();
            let synergy = rows
                .iter()
                .find(|r| r.benchmark == bench.name && r.condition == Condition::Synergy)
                .unwrap();
            let quiesced = rows
                .iter()
                .find(|r| r.benchmark == bench.name && r.condition == Condition::SynergyQuiescence)
                .unwrap();
            assert!(
                synergy.report.luts > native.report.luts,
                "{}: Synergy must cost more LUTs than native",
                bench.name
            );
            assert!(
                synergy.report.ffs >= native.report.ffs,
                "{}: Synergy must cost at least as many FFs",
                bench.name
            );
            assert!(
                quiesced.report.luts <= synergy.report.luts,
                "{}: quiescence should not increase LUTs",
                bench.name
            );
            assert!(synergy.ff_norm >= 1.0 && synergy.lut_norm >= 1.0);
        }
        // The RAM-heavy designs are the FF outliers, as in the paper.
        let mips_synergy = rows
            .iter()
            .find(|r| r.benchmark == "mips32" && r.condition == Condition::Synergy)
            .unwrap();
        assert!(
            mips_synergy.ff_norm > 4.0,
            "mips32 RAM-as-FF blowup should dominate (got {:.2})",
            mips_synergy.ff_norm
        );
        let table = overheads_tables(&rows);
        assert!(table.contains("Figure 13") && table.contains("Figure 15"));
    }

    #[test]
    fn quiescence_study_matches_expectations() {
        let rows = quiescence_study();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.volatile_fraction > 0.0 && row.volatile_fraction < 1.0);
            assert!(row.lut_saving >= 0.0);
            assert!(row.ff_saving >= 0.0);
        }
        // df and bitcoin have mostly-volatile state, like the paper's 99%/96%.
        let df = rows.iter().find(|r| r.benchmark == "df").unwrap();
        let bitcoin = rows.iter().find(|r| r.benchmark == "bitcoin").unwrap();
        assert!(df.volatile_fraction > 0.5);
        assert!(bitcoin.volatile_fraction > 0.5);
    }

    #[test]
    fn execution_overhead_is_three_to_four_x() {
        for row in execution_overheads(Scale::Smoke) {
            assert!(
                row.slowdown >= 2.5 && row.slowdown <= 6.0,
                "{}: slowdown {} outside the expected 3-4x band",
                row.benchmark,
                row.slowdown
            );
        }
    }

    #[test]
    fn table1_lists_all_benchmarks() {
        let t = table1();
        for name in ["adpcm", "bitcoin", "df", "mips32", "nw", "regex"] {
            assert!(t.contains(name));
        }
    }
}
