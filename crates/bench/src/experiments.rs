//! Experiment harnesses that regenerate every table and figure of the paper's
//! evaluation (§6) on the simulated substrate.
//!
//! Each function returns structured data and is exercised both by the
//! `experiments` binary (which prints the same rows/series the paper reports) and
//! by the Criterion benches. Absolute numbers differ from the paper — the substrate
//! is a simulator, not the authors' testbed — but the shapes match: who wins, by
//! roughly what factor, and where the crossovers fall. `EXPERIMENTS.md` records the
//! paper-vs-measured comparison produced by these harnesses.

use synergy::fpga::{estimate, RamStyle, SynthOptions, SynthReport};
use synergy::transform::{transform, TransformOptions};
use synergy::{BitstreamCache, Device, Runtime, SynergyVm};
use synergy_workloads as workloads;
use workloads::Benchmark;

/// One point of a throughput time-series: simulated seconds and work units/second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Simulated wall-clock time in seconds.
    pub time_s: f64,
    /// Throughput in work units per second (hashes/s, instructions/s, reads/s).
    pub rate: f64,
}

/// A labelled throughput curve (one line of a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (`de10`, `f1`, `regex`, ...).
    pub label: String,
    /// Unit of the rate axis.
    pub unit: String,
    /// Samples in time order.
    pub points: Vec<Point>,
}

impl Series {
    /// Peak rate over the curve.
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|p| p.rate).fold(0.0, f64::max)
    }

    /// Minimum non-zero rate over the curve (used to detect migration dips).
    pub fn trough(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.rate)
            .filter(|r| *r > 0.0)
            .fold(f64::INFINITY, f64::min)
    }
}

/// A whole figure: several curves plus a caption.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure identifier (`fig9`, `fig10`, ...).
    pub id: String,
    /// Human-readable caption.
    pub caption: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Finds a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the figure as a text table (what the `experiments` binary prints).
    pub fn to_table(&self) -> String {
        let mut out = format!("== {}: {} ==\n", self.id, self.caption);
        for s in &self.series {
            out.push_str(&format!("-- {} ({}) --\n", s.label, s.unit));
            out.push_str("  time_s      rate\n");
            for p in &s.points {
                out.push_str(&format!("  {:>8.5}  {:>14.1}\n", p.time_s, p.rate));
            }
        }
        out
    }
}

/// Scale of an experiment run: `Paper` runs enough virtual ticks for smooth
/// curves, `Smoke` keeps unit tests and Criterion iterations fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast run for tests and Criterion.
    Smoke,
    /// Full run for the `experiments` binary.
    Paper,
}

impl Scale {
    fn ticks_per_sample(&self) -> u64 {
        match self {
            Scale::Smoke => 400,
            Scale::Paper => 4_000,
        }
    }

    fn samples(&self, paper: usize) -> usize {
        match self {
            Scale::Smoke => (paper / 3).max(4),
            Scale::Paper => paper,
        }
    }
}

fn sample_rate(runtime: &mut Runtime, metric: &str, ticks: u64) -> Point {
    let t0 = runtime.now_secs();
    let m0 = runtime.get_bits(metric).map(|b| b.to_u64()).unwrap_or(0);
    runtime
        .run_ticks(ticks)
        .expect("benchmark execution failed");
    let t1 = runtime.now_secs();
    let m1 = runtime.get_bits(metric).map(|b| b.to_u64()).unwrap_or(0);
    let dt = (t1 - t0).max(1e-12);
    Point {
        time_s: t1,
        rate: (m1.saturating_sub(m0)) as f64 / dt,
    }
}

fn benchmark_runtime(bench: &Benchmark, stream_len: usize) -> Runtime {
    let mut rt = Runtime::new(bench.name.clone(), &bench.source, &bench.top, &bench.clock)
        .expect("benchmark compiles");
    if let Some(path) = &bench.input_path {
        rt.add_file(path.clone(), workloads::input_data(&bench.name, stream_len));
    }
    // Software warm-up so $fopen executes before any hardware migration.
    rt.run_ticks(2).expect("software warm-up");
    rt
}

// ===================================================================== Figure 9

/// Figure 9: suspend and resume. Bitcoin executes on a DE10, is suspended via
/// `$save`, and the saved context is resumed on an F1 instance.
pub fn fig9_suspend_resume(scale: Scale) -> Figure {
    let cache = BitstreamCache::new();
    let bench = workloads::bitcoin();
    let ticks = scale.ticks_per_sample();
    let mut series_de10 = Series {
        label: "de10".into(),
        unit: "hashes/s".into(),
        points: Vec::new(),
    };
    let mut series_f1 = Series {
        label: "f1".into(),
        unit: "hashes/s".into(),
        points: Vec::new(),
    };

    // Phase 1: software start, then DE10 hardware, then $save.
    let mut rt = benchmark_runtime(&bench, 0);
    for _ in 0..scale.samples(3) {
        series_de10
            .points
            .push(sample_rate(&mut rt, &bench.metric_var, ticks / 8));
    }
    rt.migrate_to_hardware(&Device::de10(), &cache).unwrap();
    for _ in 0..scale.samples(6) {
        series_de10
            .points
            .push(sample_rate(&mut rt, &bench.metric_var, ticks));
    }
    let snapshot = rt.save("fig9");
    // The save itself shows up as a throughput dip on the DE10 curve.
    series_de10
        .points
        .push(sample_rate(&mut rt, &bench.metric_var, ticks / 16));
    for _ in 0..scale.samples(3) {
        series_de10
            .points
            .push(sample_rate(&mut rt, &bench.metric_var, ticks));
    }

    // Phase 2: a new instance on F1 restores the context and resumes.
    let mut rt2 = benchmark_runtime(&bench, 0);
    rt2.migrate_to_hardware(&Device::f1(), &cache).unwrap();
    rt2.restore(&snapshot);
    // The F1 curve continues on the same simulated timeline as the DE10 run.
    rt2.idle_for_ns(rt.now_ns().saturating_sub(rt2.now_ns()));
    series_f1
        .points
        .push(sample_rate(&mut rt2, &bench.metric_var, ticks / 16));
    for _ in 0..scale.samples(6) {
        series_f1
            .points
            .push(sample_rate(&mut rt2, &bench.metric_var, ticks));
    }

    Figure {
        id: "fig9".into(),
        caption: "Suspend and resume: bitcoin saved on a DE10 and resumed on F1".into(),
        series: vec![series_de10, series_f1],
    }
}

// ==================================================================== Figure 10

/// Figure 10: hardware migration. Mips32 begins execution on one node and is
/// migrated mid-execution to another node of the same type (DE10→DE10 and F1→F1).
pub fn fig10_migration(scale: Scale) -> Figure {
    let bench = workloads::mips32();
    let ticks = scale.ticks_per_sample();
    let mut figure = Figure {
        id: "fig10".into(),
        caption: "Hardware migration: mips32 moved between FPGAs mid-execution".into(),
        series: Vec::new(),
    };
    for device in [Device::de10(), Device::f1()] {
        let cache = BitstreamCache::new();
        let mut series = Series {
            label: device.name.clone(),
            unit: "instructions/s".into(),
            points: Vec::new(),
        };
        let mut rt = benchmark_runtime(&bench, 0);
        series
            .points
            .push(sample_rate(&mut rt, &bench.metric_var, ticks / 8));
        rt.migrate_to_hardware(&device, &cache).unwrap();
        for _ in 0..scale.samples(5) {
            series
                .points
                .push(sample_rate(&mut rt, &bench.metric_var, ticks));
        }
        // Suspend, move to a second node of the same type, resume (the bitstream is
        // already cached, so only state transfer and reconfiguration cost time).
        let snapshot = rt.save("fig10");
        let mut rt2 = benchmark_runtime(&bench, 0);
        rt2.migrate_to_hardware(&device, &cache).unwrap();
        rt2.restore(&snapshot);
        // Carry wall time over so the curve is continuous across the migration.
        rt2.idle_for_ns(rt.now_ns().saturating_sub(rt2.now_ns()));
        series
            .points
            .push(sample_rate(&mut rt2, &bench.metric_var, ticks / 16));
        for _ in 0..scale.samples(5) {
            series
                .points
                .push(sample_rate(&mut rt2, &bench.metric_var, ticks));
        }
        figure.series.push(series);
    }
    figure
}

// ==================================================================== Figure 11

/// Figure 11: temporal multiplexing. Regex and nw are time-slice scheduled on one
/// DE10 to resolve contention on the off-device IO path.
pub fn fig11_temporal(scale: Scale) -> Figure {
    let mut vm = SynergyVm::new();
    vm.set_stream_len(1 << 20);
    let node = vm.add_device(Device::de10());
    let regex_app = vm.launch_benchmark(node, "regex", false).unwrap();
    let nw_app = vm.launch_benchmark(node, "nw", false).unwrap();

    let dt = match scale {
        Scale::Smoke => 0.002,
        Scale::Paper => 0.004,
    };
    let phase = scale.samples(8);
    let mut regex_series = Series {
        label: "regex".into(),
        unit: "reads/s".into(),
        points: Vec::new(),
    };
    let mut nw_series = Series {
        label: "nw".into(),
        unit: "reads/s".into(),
        points: Vec::new(),
    };
    let mut last = (0u64, 0u64);
    let sample = |vm: &mut SynergyVm,
                  regex_series: &mut Series,
                  nw_series: &mut Series,
                  last: &mut (u64, u64)| {
        vm.run_round(node, dt).unwrap();
        let t = vm.app(node, regex_app).unwrap().now_secs();
        let r = vm.read_var(node, regex_app, "reads_lo").unwrap().to_u64();
        let n = vm
            .read_var(node, nw_app, "alignments_lo")
            .map(|b| b.to_u64() * 2)
            .unwrap_or(0);
        regex_series.points.push(Point {
            time_s: t,
            rate: (r - last.0) as f64 / dt,
        });
        nw_series.points.push(Point {
            time_s: t,
            rate: (n - last.1) as f64 / dt,
        });
        *last = (r, n);
    };

    // Phase A: only regex is deployed.
    vm.deploy(node, regex_app).unwrap();
    for _ in 0..phase {
        sample(&mut vm, &mut regex_series, &mut nw_series, &mut last);
    }
    // Phase B: nw deploys; the hypervisor time-slices the shared IO path.
    vm.deploy(node, nw_app).unwrap();
    for _ in 0..2 * phase {
        sample(&mut vm, &mut regex_series, &mut nw_series, &mut last);
    }
    // Phase C: nw is removed (its work is done); regex recovers.
    vm.cluster_mut().node_mut(node).undeploy(nw_app).unwrap();
    for _ in 0..phase {
        sample(&mut vm, &mut regex_series, &mut nw_series, &mut last);
    }

    Figure {
        id: "fig11".into(),
        caption: "Temporal multiplexing: regex and nw share one DE10 IO path".into(),
        series: vec![regex_series, nw_series],
    }
}

// ==================================================================== Figure 12

/// Figure 12: spatial multiplexing. Df, bitcoin, and adpcm are co-scheduled on one
/// F1 device; adding adpcm forces the shared clock down and lowers every tenant's
/// virtual frequency.
pub fn fig12_spatial(scale: Scale) -> Figure {
    let mut vm = SynergyVm::new();
    vm.set_stream_len(1 << 20);
    let node = vm.add_device(Device::f1());
    let df_app = vm.launch_benchmark(node, "df", false).unwrap();
    let bitcoin_app = vm.launch_benchmark(node, "bitcoin", false).unwrap();
    let adpcm_app = vm.launch_benchmark(node, "adpcm", false).unwrap();

    let dt = 0.00002;
    let phase = scale.samples(6);
    let mut series: Vec<Series> = ["df", "bitcoin", "adpcm"]
        .iter()
        .map(|name| Series {
            label: (*name).into(),
            unit: "virtual Hz".into(),
            points: Vec::new(),
        })
        .collect();
    let apps = [df_app, bitcoin_app, adpcm_app];
    let mut last = [0u64; 3];

    let sample = |vm: &mut SynergyVm, series: &mut Vec<Series>, last: &mut [u64; 3]| {
        vm.run_round(node, dt).unwrap();
        for (i, app) in apps.iter().enumerate() {
            let rt = vm.app(node, *app).unwrap();
            let t = rt.now_secs();
            let ticks = rt.ticks();
            series[i].points.push(Point {
                time_s: t,
                rate: ticks.saturating_sub(last[i]) as f64 / dt,
            });
            last[i] = ticks;
        }
    };

    vm.deploy(node, df_app).unwrap();
    for _ in 0..phase {
        sample(&mut vm, &mut series, &mut last);
    }
    vm.deploy(node, bitcoin_app).unwrap();
    for _ in 0..phase {
        sample(&mut vm, &mut series, &mut last);
    }
    let outcome = vm.deploy(node, adpcm_app).unwrap();
    let clock_lowered = outcome.clock_lowered;
    for _ in 0..phase {
        sample(&mut vm, &mut series, &mut last);
    }

    let mut figure = Figure {
        id: "fig12".into(),
        caption: format!(
            "Spatial multiplexing on F1 (global clock {} MHz after adpcm joins{})",
            vm.cluster().node(node).global_clock_hz() / 1_000_000,
            if clock_lowered { ", lowered" } else { "" }
        ),
        series,
    };
    figure.series.retain(|s| !s.points.is_empty());
    figure
}

// ============================================================== Figures 13/14/15

/// The compilation conditions compared in Figures 13-15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Condition {
    /// Native compilation on AmorphOS (the baseline everything is normalised to).
    AosNative,
    /// AmorphOS native but with RAMs forced to flip-flops (the `adpcm*`/`mips32*`
    /// comparison points).
    AosFf,
    /// Cascade on AmorphOS: the transformation without system-task support.
    Cascade,
    /// Full SYNERGY.
    Synergy,
    /// SYNERGY with the quiescence interface implemented (`$yield`).
    SynergyQuiescence,
}

impl Condition {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Condition::AosNative => "AOS",
            Condition::AosFf => "AOS-FF",
            Condition::Cascade => "Cascade",
            Condition::Synergy => "Synergy",
            Condition::SynergyQuiescence => "Synergy+Q",
        }
    }

    /// All conditions in presentation order.
    pub fn all() -> [Condition; 5] {
        [
            Condition::AosNative,
            Condition::AosFf,
            Condition::Cascade,
            Condition::Synergy,
            Condition::SynergyQuiescence,
        ]
    }
}

/// One benchmark compiled under one condition.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Compilation condition.
    pub condition: Condition,
    /// Raw synthesis estimate.
    pub report: SynthReport,
    /// FF usage normalised to the AmorphOS-native baseline.
    pub ff_norm: f64,
    /// LUT usage normalised to the AmorphOS-native baseline.
    pub lut_norm: f64,
}

/// Compiles every benchmark under every condition on the F1 device and returns the
/// rows behind Figures 13 (FF), 14 (LUT), and 15 (frequency).
pub fn fig13_14_15_overheads() -> Vec<OverheadRow> {
    let device = Device::f1();
    let mut rows = Vec::new();
    for bench in workloads::all() {
        let native = synergy::vlog::compile(&bench.source, &bench.top).unwrap();
        let quiescent = synergy::vlog::compile(&bench.quiescent_source, &bench.top).unwrap();
        let synergy_t = transform(&native, TransformOptions::default()).unwrap();
        let cascade_t = transform(
            &native,
            TransformOptions {
                strip_tasks: true,
                ..Default::default()
            },
        )
        .unwrap();
        let quiescent_t = transform(&quiescent, TransformOptions::default()).unwrap();

        let baseline = estimate(&native, &device, SynthOptions::native(&device));
        let mut push = |condition: Condition, report: SynthReport| {
            rows.push(OverheadRow {
                benchmark: bench.name.clone(),
                condition,
                report,
                ff_norm: report.ffs as f64 / baseline.ffs.max(1) as f64,
                lut_norm: report.luts as f64 / baseline.luts.max(1) as f64,
            });
        };

        push(Condition::AosNative, baseline);
        push(
            Condition::AosFf,
            estimate(
                &native,
                &device,
                SynthOptions {
                    ram_style: RamStyle::Ff,
                    ..SynthOptions::native(&device)
                },
            ),
        );
        push(
            Condition::Cascade,
            estimate(
                &cascade_t.elab,
                &device,
                SynthOptions::synergy(
                    &device,
                    cascade_t.state.captured_bits() as u64,
                    cascade_t.state.vars.len() as u64,
                ),
            ),
        );
        push(
            Condition::Synergy,
            estimate(
                &synergy_t.elab,
                &device,
                SynthOptions::synergy(
                    &device,
                    synergy_t.state.captured_bits() as u64,
                    synergy_t.state.vars.len() as u64,
                ),
            ),
        );
        // Quiescence makes volatile memories the application's responsibility, so
        // they no longer need the FF-based state-access implementation (§6.3): keep
        // them in block RAM when every memory is volatile.
        let memories_volatile = quiescent_t
            .state
            .vars
            .iter()
            .filter(|v| v.is_memory)
            .all(|v| v.volatile);
        let mut quiescent_opts = SynthOptions::synergy(
            &device,
            quiescent_t.state.captured_bits() as u64,
            quiescent_t
                .state
                .vars
                .iter()
                .filter(|v| !v.volatile)
                .count() as u64,
        );
        if memories_volatile {
            quiescent_opts.ram_style = RamStyle::Bram;
        }
        push(
            Condition::SynergyQuiescence,
            estimate(&quiescent_t.elab, &device, quiescent_opts),
        );
    }
    rows
}

/// Formats the Figure 13/14/15 rows as three tables (FF, LUT, frequency).
pub fn overheads_tables(rows: &[OverheadRow]) -> String {
    let benches: Vec<String> = workloads::all().iter().map(|b| b.name.clone()).collect();
    let mut out = String::new();
    for (title, f) in [
        (
            "Figure 13: FF usage normalised to AmorphOS",
            Box::new(|r: &OverheadRow| format!("{:>8.2}", r.ff_norm))
                as Box<dyn Fn(&OverheadRow) -> String>,
        ),
        (
            "Figure 14: LUT usage normalised to AmorphOS",
            Box::new(|r: &OverheadRow| format!("{:>8.2}", r.lut_norm)),
        ),
        (
            "Figure 15: design frequency achieved (MHz)",
            Box::new(|r: &OverheadRow| format!("{:>8.1}", r.report.achieved_mhz())),
        ),
    ] {
        out.push_str(&format!("== {} ==\n", title));
        out.push_str(&format!("{:<10}", "bench"));
        for c in Condition::all() {
            out.push_str(&format!("{:>10}", c.name()));
        }
        out.push('\n');
        for b in &benches {
            out.push_str(&format!("{:<10}", b));
            for c in Condition::all() {
                let row = rows
                    .iter()
                    .find(|r| r.benchmark == *b && r.condition == c)
                    .expect("row exists");
                out.push_str(&format!("{:>10}", f(row)));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

// ================================================================== §6.3 / §6.4

/// One row of the quiescence study (§6.3).
#[derive(Debug, Clone, PartialEq)]
pub struct QuiescenceRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Fraction of state bits that are volatile under `$yield`.
    pub volatile_fraction: f64,
    /// LUT savings of Synergy+Quiescence relative to Synergy.
    pub lut_saving: f64,
    /// FF savings of Synergy+Quiescence relative to Synergy.
    pub ff_saving: f64,
}

/// The §6.3 quiescence study: volatile state share and the LUT/FF savings from
/// implementing the quiescence interface.
pub fn quiescence_study() -> Vec<QuiescenceRow> {
    let rows = fig13_14_15_overheads();
    workloads::all()
        .iter()
        .map(|bench| {
            let quiescent = synergy::vlog::compile(&bench.quiescent_source, &bench.top).unwrap();
            let report = synergy::transform::analyze(&quiescent);
            let synergy_row = rows
                .iter()
                .find(|r| r.benchmark == bench.name && r.condition == Condition::Synergy)
                .unwrap();
            let quiesced_row = rows
                .iter()
                .find(|r| r.benchmark == bench.name && r.condition == Condition::SynergyQuiescence)
                .unwrap();
            QuiescenceRow {
                benchmark: bench.name.clone(),
                volatile_fraction: report.volatile_fraction(),
                lut_saving: 1.0
                    - quiesced_row.report.luts as f64 / synergy_row.report.luts.max(1) as f64,
                ff_saving: 1.0
                    - quiesced_row.report.ffs as f64 / synergy_row.report.ffs.max(1) as f64,
            }
        })
        .collect()
}

/// One row of the execution-overhead study (§6 / §6.4): virtual frequency under
/// SYNERGY versus native execution at the device clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOverheadRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Virtual clock frequency measured under SYNERGY, in Hz.
    pub synergy_virtual_hz: f64,
    /// The clock an unvirtualized design would run at, in Hz.
    pub native_hz: f64,
    /// Slowdown factor (native / SYNERGY); the paper reports 3-4x.
    pub slowdown: f64,
}

/// Measures the end-to-end execution overhead of virtualization for the batch
/// benchmarks on F1 (the "within 3-4x of unvirtualized performance" claim).
pub fn execution_overheads(scale: Scale) -> Vec<ExecutionOverheadRow> {
    let device = Device::f1();
    let cache = BitstreamCache::new();
    let mut rows = Vec::new();
    for name in ["bitcoin", "df", "mips32"] {
        let bench = workloads::by_name(name).unwrap();
        let mut rt = benchmark_runtime(&bench, 0);
        rt.migrate_to_hardware(&device, &cache).unwrap();
        let start_ticks = rt.ticks();
        let start_time = rt.now_secs();
        rt.run_ticks(scale.ticks_per_sample() * 2).unwrap();
        let virtual_hz =
            (rt.ticks() - start_ticks) as f64 / (rt.now_secs() - start_time).max(1e-12);
        let native = synergy::vlog::compile(&bench.source, &bench.top).unwrap();
        let native_hz =
            estimate(&native, &device, SynthOptions::native(&device)).achieved_hz as f64;
        rows.push(ExecutionOverheadRow {
            benchmark: bench.name.clone(),
            synergy_virtual_hz: virtual_hz,
            native_hz,
            slowdown: native_hz / virtual_hz.max(1.0),
        });
    }
    rows
}

/// Table 1: the benchmark suite description.
pub fn table1() -> String {
    let mut out = String::from("== Table 1: benchmarks ==\n");
    for b in workloads::all() {
        out.push_str(&format!(
            "{:<10} {:<45} {}\n",
            b.name,
            b.description,
            if b.style == workloads::Style::Streaming {
                "(streaming)"
            } else {
                "(batch)"
            }
        ));
    }
    out
}
