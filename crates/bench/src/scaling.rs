//! Many-tenant hypervisor scaling benchmark (`BENCH_hv_scaling.json`).
//!
//! Measures aggregate virtual-clock throughput (ticks/sec of host wall time,
//! summed over every tenant) of [`synergy::Hypervisor::run_round`] as the
//! worker count and fleet size grow. Fleets mix the Table-1 workloads with
//! fuzz-generated designs, on mixed engines (compiled where the design
//! lowers, interpreter otherwise) — the same population the differential
//! suites pin as bit-identical across scheduling policies.
//!
//! Two throughput figures are reported per configuration:
//!
//! * **wall** — host wall-clock, as measured on the machine running the
//!   benchmark. Only meaningful up to the machine's core count: on a 1-core
//!   CI container every worker count measures ≈1×.
//! * **model** — the schedule's *critical path*: per-tenant host costs are
//!   measured per round (see `Hypervisor::last_round_host_costs`), then
//!   packed onto `workers` workers with the same greedy longest-job-first
//!   placement a work-stealing pool converges to; the round costs what its
//!   most-loaded worker costs. This is the repo's usual device-model
//!   approach (performance is modelled, not tied to the host — compare
//!   `synergy-fpga`), and on a multi-core host the wall figure tracks it.

use std::time::Instant;
use synergy::workloads::{fuzz_input_data, generate_fuzz_design};
use synergy::{Device, DomainId, EnginePolicy, Hypervisor, Runtime, SchedPolicy};

/// Ticks each tenant executes per round (the DRR quantum; fleets here are
/// compute-bound, so every tenant consumes exactly this budget).
const ROUND_TICK_CAP: u64 = 512;

/// Simulated round length — generous enough that the tick cap, not dt, is
/// the binding constraint for every tenant.
const ROUND_DT: f64 = 1.0;

/// One measured configuration of the scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingMeasurement {
    /// Worker threads (`0` encodes `SchedPolicy::Sequential`).
    pub workers: usize,
    /// Fleet size.
    pub tenants: usize,
    /// Timed rounds.
    pub rounds: usize,
    /// Virtual ticks executed across the fleet during the timed rounds.
    pub total_ticks: u64,
    /// Host wall-clock nanoseconds for the timed rounds.
    pub wall_ns: u64,
    /// Critical-path nanoseconds under the scheduling model (see module
    /// docs); equals the serial sum for the sequential configuration.
    pub model_ns: u64,
}

impl ScalingMeasurement {
    /// Aggregate ticks per second of measured host wall time.
    pub fn wall_ticks_per_sec(&self) -> f64 {
        self.total_ticks as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Aggregate ticks per second under the scheduling model.
    pub fn model_ticks_per_sec(&self) -> f64 {
        self.total_ticks as f64 / (self.model_ns.max(1) as f64 / 1e9)
    }
}

/// Builds the standard mixed fleet: the six Table-1 workloads round-robin,
/// interleaved with fuzz-generated designs, all upgraded to the compiled
/// engine where the design lowers (fuzz designs always do; workloads too).
fn build_fleet(tenants: usize) -> Hypervisor {
    let mut hv = Hypervisor::new(Device::f1());
    hv.set_engine_policy(EnginePolicy::Auto);
    hv.set_round_tick_cap(ROUND_TICK_CAP);
    let workloads = synergy::workloads::all();
    for i in 0..tenants {
        let domain = DomainId(i as u64 + 1);
        if i % 2 == 0 {
            let bench = &workloads[(i / 2) % workloads.len()];
            let mut rt = Runtime::new(
                format!("{}_{}", bench.name, i),
                &bench.source,
                &bench.top,
                &bench.clock,
            )
            .expect("workload compiles");
            if let Some(path) = &bench.input_path {
                rt.add_file(
                    path.clone(),
                    synergy::workloads::input_data(&bench.name, 1 << 14),
                );
            }
            rt.run_ticks(2).expect("software warm-up");
            hv.connect(rt, domain, false);
        } else {
            let seed = i as u64;
            let d = generate_fuzz_design(seed);
            let mut rt = Runtime::new(format!("fuzz_{}", seed), &d.source, &d.top, &d.clock)
                .expect("fuzz designs elaborate");
            if let Some(path) = &d.input_path {
                rt.add_file(path.clone(), fuzz_input_data(seed, 1 << 14));
            }
            hv.connect(rt, domain, false);
        }
    }
    hv
}

/// Greedy longest-job-first packing of per-tenant costs onto `workers`
/// workers; returns the critical path (most-loaded worker).
fn critical_path_ns(costs: &[u64], workers: usize) -> u64 {
    if workers <= 1 {
        return costs.iter().sum();
    }
    let mut sorted: Vec<u64> = costs.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; workers];
    for c in sorted {
        let min = loads.iter_mut().min_by_key(|l| **l).expect("workers >= 1");
        *min += c;
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Runs the sweep: every worker count in `worker_counts` (0 = sequential)
/// against every fleet size in `tenant_counts`, `rounds` timed rounds each
/// (after one untimed warm-up round).
///
/// The sequential configuration of each fleet size always runs (it is the
/// baseline), and its per-round, per-tenant host costs feed the scheduling
/// model for *every* worker count — per-job spans measured during a parallel
/// run on a host with fewer cores than workers would include other workers'
/// timeslices, which is exactly the artefact the model exists to remove.
/// Parallel configurations still execute for real on the pool: their wall
/// times are reported as measured, and the differential guarantee is
/// re-checked (every configuration of a fleet must execute the same ticks).
pub fn run_scaling_sweep(
    worker_counts: &[usize],
    tenant_counts: &[usize],
    rounds: usize,
) -> Vec<ScalingMeasurement> {
    sweep_impl(worker_counts, tenant_counts, rounds, true)
}

/// Model-only variant of [`run_scaling_sweep`]: measures each fleet size
/// sequentially once and *derives* every parallel configuration from the
/// scheduling model, without executing on the pool. This is what the
/// perf-regression gate uses — the gated metric is the model speedup, which
/// comes entirely from the sequential costs, so running the pool would only
/// add wall time (parallel==sequential execution is pinned separately by
/// `tests/hv_parallel.rs`). Modelled entries report `wall_ns == model_ns`.
pub fn run_scaling_model(
    worker_counts: &[usize],
    tenant_counts: &[usize],
    rounds: usize,
) -> Vec<ScalingMeasurement> {
    sweep_impl(worker_counts, tenant_counts, rounds, false)
}

fn sweep_impl(
    worker_counts: &[usize],
    tenant_counts: &[usize],
    rounds: usize,
    execute_parallel: bool,
) -> Vec<ScalingMeasurement> {
    let mut out = Vec::new();
    for &tenants in tenant_counts {
        // Sequential baseline + per-round cost vectors for the model.
        let mut hv = build_fleet(tenants);
        hv.run_round(ROUND_DT).expect("warm-up round");
        let mut seq_ticks = 0u64;
        let mut round_costs: Vec<Vec<u64>> = Vec::with_capacity(rounds);
        let seq_start = Instant::now();
        for _ in 0..rounds {
            let stats = hv.run_round(ROUND_DT).expect("round is infallible");
            seq_ticks += stats.iter().map(|s| s.ticks).sum::<u64>();
            // The model wants per-round values, which the cumulative
            // registry counters don't expose — the deprecated raw accessor
            // is the right tool here.
            #[allow(deprecated)]
            round_costs.push(
                hv.last_round_host_costs()
                    .iter()
                    .map(|&(_, ns)| ns)
                    .collect(),
            );
        }
        let seq_wall_ns = seq_start.elapsed().as_nanos() as u64;
        out.push(ScalingMeasurement {
            workers: 0,
            tenants,
            rounds,
            total_ticks: seq_ticks,
            wall_ns: seq_wall_ns,
            model_ns: round_costs.iter().map(|c| c.iter().sum::<u64>()).sum(),
        });

        for &workers in worker_counts.iter().filter(|&&w| w != 0) {
            let model_ns: u64 = round_costs
                .iter()
                .map(|costs| critical_path_ns(costs, workers))
                .sum();
            let wall_ns = if execute_parallel {
                let mut hv = build_fleet(tenants);
                hv.set_sched_policy(SchedPolicy::Parallel { workers });
                hv.run_round(ROUND_DT).expect("warm-up round");
                let mut total_ticks = 0u64;
                let start = Instant::now();
                for _ in 0..rounds {
                    let stats = hv.run_round(ROUND_DT).expect("round is infallible");
                    total_ticks += stats.iter().map(|s| s.ticks).sum::<u64>();
                }
                let wall_ns = start.elapsed().as_nanos() as u64;
                assert_eq!(
                    total_ticks, seq_ticks,
                    "scheduling policy changed the work executed ({} tenants, {} workers)",
                    tenants, workers
                );
                wall_ns
            } else {
                model_ns
            };
            out.push(ScalingMeasurement {
                workers,
                tenants,
                rounds,
                total_ticks: seq_ticks,
                wall_ns,
                model_ns,
            });
        }
    }
    out
}

/// Model speedup of a configuration relative to the sequential run of the
/// same fleet size (`None` if either is missing).
pub fn model_speedup(
    measurements: &[ScalingMeasurement],
    workers: usize,
    tenants: usize,
) -> Option<f64> {
    let seq = measurements
        .iter()
        .find(|m| m.workers == 0 && m.tenants == tenants)?;
    let cfg = measurements
        .iter()
        .find(|m| m.workers == workers && m.tenants == tenants)?;
    Some(cfg.model_ticks_per_sec() / seq.model_ticks_per_sec().max(1e-9))
}

/// Renders the sweep as a text table (wall and model ticks/sec, model
/// speedup vs sequential per fleet size).
pub fn scaling_table(measurements: &[ScalingMeasurement]) -> String {
    let mut out = String::from(
        "workers  tenants   rounds      total_ticks    wall_ticks/s   model_ticks/s   model_speedup\n",
    );
    for m in measurements {
        let speedup = model_speedup(measurements, m.workers, m.tenants).unwrap_or(1.0);
        out.push_str(&format!(
            "{:>7}  {:>7}  {:>7}  {:>15}  {:>14.0}  {:>14.0}  {:>13.2}x\n",
            if m.workers == 0 {
                "seq".to_string()
            } else {
                m.workers.to_string()
            },
            m.tenants,
            m.rounds,
            m.total_ticks,
            m.wall_ticks_per_sec(),
            m.model_ticks_per_sec(),
            speedup,
        ));
    }
    out
}

/// Serialises the sweep to the `BENCH_hv_scaling.json` schema.
pub fn scaling_json(measurements: &[ScalingMeasurement], date: &str) -> String {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = String::new();
    for (i, m) in measurements.iter().enumerate() {
        let speedup = model_speedup(measurements, m.workers, m.tenants).unwrap_or(1.0);
        rows.push_str(&format!(
            "    {{ \"workers\": {}, \"tenants\": {}, \"rounds\": {}, \"total_ticks\": {}, \"wall_ticks_per_sec\": {:.0}, \"model_ticks_per_sec\": {:.0}, \"model_speedup\": {:.2} }}{}\n",
            m.workers,
            m.tenants,
            m.rounds,
            m.total_ticks,
            m.wall_ticks_per_sec(),
            m.model_ticks_per_sec(),
            speedup,
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    let headline = model_speedup(measurements, 8, 32).unwrap_or(1.0);
    format!(
        "{{\n  \"benchmark\": \"hv_scaling\",\n  \"description\": \"Aggregate virtual-clock ticks/sec of Hypervisor::run_round over mixed fleets (Table-1 workloads + fuzz-generated designs, compiled engine via EnginePolicy::Auto) as the work-stealing scheduler's worker count grows. 'wall' is host wall-clock on the benchmark machine (host_cores bounds it); 'model' is the schedule's critical path computed from measured per-tenant host costs (longest-job-first packing), the same modelled-performance methodology as the synergy-fpga device model. workers=0 is SchedPolicy::Sequential. Regenerate with `cargo run --release -p synergy-bench --bin hv_scaling`.\",\n  \"date\": \"{}\",\n  \"host_cores\": {},\n  \"round_tick_cap\": {},\n  \"results\": [\n{}  ],\n  \"summary\": {{ \"model_speedup_8_workers_32_tenants\": {:.2} }},\n  \"acceptance\": \"model speedup at 8 workers / 32-tenant mixed fleet >= 3x sequential (measured {:.2}x), with parallel rounds bit-identical to sequential (tests/hv_parallel.rs: stats, events, errors, snapshots, and $display output, for the Table-1 fleets and >=256 fuzz seeds).\"\n}}\n",
        date, host_cores, ROUND_TICK_CAP, rows, headline, headline,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_path_matches_hand_schedules() {
        assert_eq!(critical_path_ns(&[], 4), 0);
        assert_eq!(critical_path_ns(&[10, 20, 30], 1), 60);
        // LPT on 2 workers: {30} vs {20, 10} -> 30.
        assert_eq!(critical_path_ns(&[10, 20, 30], 2), 30);
        // More workers than jobs: the longest job bounds the round.
        assert_eq!(critical_path_ns(&[10, 20, 30], 8), 30);
    }

    #[test]
    fn smoke_sweep_scales_in_the_model_and_serialises() {
        let ms = run_scaling_sweep(&[0, 2], &[8], 2);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].total_ticks, ms[1].total_ticks);
        assert!(
            ms[0].total_ticks >= 8 * 2 * ROUND_TICK_CAP / 2,
            "fleet ticked"
        );
        let speedup = model_speedup(&ms, 2, 8).unwrap();
        assert!(
            speedup > 1.2,
            "2 workers must beat sequential in the model, got {:.2}",
            speedup
        );
        let json = scaling_json(&ms, "2026-01-01");
        assert!(json.contains("\"benchmark\": \"hv_scaling\""));
        assert!(json.contains("\"workers\": 2"));
        let table = scaling_table(&ms);
        assert!(table.contains("seq"));
    }
}
