//! Criterion benchmarks: one target per table/figure of the paper's evaluation.
//!
//! Each target times the corresponding experiment harness at smoke scale; the
//! `experiments` binary runs the same harnesses at paper scale and prints the
//! rows/series. Ablation targets cover the design choices called out in DESIGN.md
//! (sub-tick traps vs end-of-tick, quiescence, and the bitstream cache).

use criterion::{criterion_group, criterion_main, Criterion};
use synergy::fpga::{estimate, SynthOptions};
use synergy::transform::{transform, TransformOptions};
use synergy::{BitstreamCache, Device, Runtime};
use synergy_bench::{
    execution_overheads, fig10_migration, fig11_temporal, fig12_spatial, fig13_14_15_overheads,
    fig9_suspend_resume, quiescence_study, Scale,
};

/// Tentpole comparison: ticks/sec of the tree-walking interpreter versus the
/// compiled engine (levelized netlist + bytecode) on every Table-1 workload.
/// `BENCH_interp_vs_compiled.json` records the measured rates.
fn bench_interp_vs_compiled(c: &mut Criterion) {
    const TICKS: usize = 200;
    let mut group = c.benchmark_group("interp_vs_compiled");
    for bench in synergy_workloads::all() {
        let design = synergy::vlog::compile(&bench.source, &bench.top).unwrap();
        let input = bench.input_path.as_ref().map(|p| {
            (
                p.clone(),
                synergy_workloads::input_data(&bench.name, 4 * TICKS),
            )
        });
        group.bench_function(&format!("{}_interp", bench.name), |b| {
            b.iter(|| {
                let mut interp = synergy::interp::Interpreter::new(design.clone());
                let mut env = synergy::interp::BufferEnv::new();
                if let Some((path, data)) = &input {
                    env.add_file(path.clone(), data.clone());
                }
                for _ in 0..TICKS {
                    interp.tick(&bench.clock, &mut env).unwrap();
                }
            })
        });
        let prog = synergy::codegen::compile(&design).unwrap();
        group.bench_function(&format!("{}_compiled", bench.name), |b| {
            b.iter(|| {
                let mut sim = synergy::codegen::CompiledSim::new(prog.clone());
                let mut env = synergy::interp::BufferEnv::new();
                if let Some((path, data)) = &input {
                    env.add_file(path.clone(), data.clone());
                }
                for _ in 0..TICKS {
                    sim.tick(&bench.clock, &mut env).unwrap();
                }
            })
        });
    }
    group.finish();
}

/// Tentpole comparison (PR 4): ticks/sec of the compiled engine's stack
/// bytecode tier versus the register-allocated word tier on every Table-1
/// workload. Simulators are translated once and cloned per invocation so
/// the timed region is steady-state ticking, not compilation.
/// `BENCH_interp_vs_compiled.json` records the measured rates and the
/// per-workload `regalloc_over_stack` ratios the `regress` gate enforces.
fn bench_compiled_vs_regalloc(c: &mut Criterion) {
    const TICKS: usize = 200;
    let mut group = c.benchmark_group("compiled_vs_regalloc");
    for bench in synergy_workloads::all() {
        let design = synergy::vlog::compile(&bench.source, &bench.top).unwrap();
        let prog = synergy::codegen::compile(&design).unwrap();
        let input = bench.input_path.as_ref().map(|p| {
            (
                p.clone(),
                synergy_workloads::input_data(&bench.name, 4 * TICKS),
            )
        });
        for tier in [
            synergy::codegen::Tier::Stack,
            synergy::codegen::Tier::RegAlloc,
        ] {
            let base = synergy::codegen::CompiledSim::with_tier(prog.clone(), tier).unwrap();
            let suffix = match tier {
                synergy::codegen::Tier::Stack => "stack",
                synergy::codegen::Tier::RegAlloc => "regalloc",
            };
            group.bench_function(&format!("{}_{}", bench.name, suffix), |b| {
                b.iter(|| {
                    let mut sim = base.clone();
                    let mut env = synergy::interp::BufferEnv::new();
                    if let Some((path, data)) = &input {
                        env.add_file(path.clone(), data.clone());
                    }
                    for _ in 0..TICKS {
                        sim.tick(&bench.clock, &mut env).unwrap();
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_fig9_suspend_resume(c: &mut Criterion) {
    c.bench_function("fig9_suspend_resume", |b| {
        b.iter(|| fig9_suspend_resume(Scale::Smoke))
    });
}

fn bench_fig10_migration(c: &mut Criterion) {
    c.bench_function("fig10_migration", |b| {
        b.iter(|| fig10_migration(Scale::Smoke))
    });
}

fn bench_fig11_temporal(c: &mut Criterion) {
    c.bench_function("fig11_temporal_multiplexing", |b| {
        b.iter(|| fig11_temporal(Scale::Smoke))
    });
}

fn bench_fig12_spatial(c: &mut Criterion) {
    c.bench_function("fig12_spatial_multiplexing", |b| {
        b.iter(|| fig12_spatial(Scale::Smoke))
    });
}

fn bench_fig13_14_15(c: &mut Criterion) {
    c.bench_function("fig13_14_15_fabric_overheads", |b| {
        b.iter(fig13_14_15_overheads)
    });
}

fn bench_quiescence(c: &mut Criterion) {
    c.bench_function("sec6_3_quiescence_study", |b| b.iter(quiescence_study));
}

fn bench_overheads(c: &mut Criterion) {
    c.bench_function("sec6_4_execution_overheads", |b| {
        b.iter(|| execution_overheads(Scale::Smoke))
    });
}

/// Ablation: the cost of the full SYNERGY transformation versus the Cascade
/// baseline (end-of-tick traps only) for the motivating file-IO workload.
fn bench_ablation_tick_granularity(c: &mut Criterion) {
    let bench = synergy_workloads::regex();
    let design = synergy::vlog::compile(&bench.source, &bench.top).unwrap();
    let mut group = c.benchmark_group("ablation_tick_granularity");
    group.bench_function("synergy_sub_tick", |b| {
        b.iter(|| transform(&design, TransformOptions::default()).unwrap())
    });
    group.bench_function("cascade_end_of_tick", |b| {
        b.iter(|| {
            transform(
                &design,
                TransformOptions {
                    strip_tasks: true,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

/// Ablation: quiescence annotations versus transparent full-state capture in the
/// synthesis estimator.
fn bench_ablation_quiescence(c: &mut Criterion) {
    let device = Device::f1();
    let bench = synergy_workloads::mips32();
    let full = synergy::vlog::compile(&bench.source, &bench.top).unwrap();
    let quiet = synergy::vlog::compile(&bench.quiescent_source, &bench.top).unwrap();
    let full_t = transform(&full, TransformOptions::default()).unwrap();
    let quiet_t = transform(&quiet, TransformOptions::default()).unwrap();
    let mut group = c.benchmark_group("ablation_quiescence");
    group.bench_function("transparent_capture", |b| {
        b.iter(|| {
            estimate(
                &full_t.elab,
                &device,
                SynthOptions::synergy(&device, full_t.state.captured_bits() as u64, 8),
            )
        })
    });
    group.bench_function("quiescence_annotations", |b| {
        b.iter(|| {
            estimate(
                &quiet_t.elab,
                &device,
                SynthOptions::synergy(&device, quiet_t.state.captured_bits() as u64, 3),
            )
        })
    });
    group.finish();
}

/// Ablation: bitstream-cache hit versus miss on the hardware migration path.
fn bench_ablation_bitstream_cache(c: &mut Criterion) {
    let bench = synergy_workloads::bitcoin();
    let mut group = c.benchmark_group("ablation_bitstream_cache");
    group.bench_function("cache_miss", |b| {
        b.iter(|| {
            let cache = BitstreamCache::new();
            let mut rt = Runtime::new("bitcoin", &bench.source, &bench.top, &bench.clock).unwrap();
            rt.migrate_to_hardware(&Device::f1(), &cache).unwrap()
        })
    });
    let warm = BitstreamCache::new();
    {
        let mut rt = Runtime::new("bitcoin", &bench.source, &bench.top, &bench.clock).unwrap();
        rt.migrate_to_hardware(&Device::f1(), &warm).unwrap();
    }
    group.bench_function("cache_hit", |b| {
        b.iter(|| {
            let mut rt = Runtime::new("bitcoin", &bench.source, &bench.top, &bench.clock).unwrap();
            rt.migrate_to_hardware(&Device::f1(), &warm).unwrap()
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = figures;
    config = config();
    targets =
        bench_interp_vs_compiled,
        bench_compiled_vs_regalloc,
        bench_fig9_suspend_resume,
        bench_fig10_migration,
        bench_fig11_temporal,
        bench_fig12_spatial,
        bench_fig13_14_15,
        bench_quiescence,
        bench_overheads,
        bench_ablation_tick_granularity,
        bench_ablation_quiescence,
        bench_ablation_bitstream_cache
}
criterion_main!(figures);
