//! # synergy-snapshot
//!
//! The durable checkpoint wire format behind SYNERGY's transparent state
//! capture: a hand-rolled, versioned, checksummed binary codec for
//! [`StateSnapshot`]s and the tenant/fleet metadata layered around them by
//! `synergy-runtime` and `synergy-hv`. In-memory migration (interpreter ⇄
//! compiled tiers ⇄ hardware) already moves state freely between engines;
//! this crate is what lets that same state survive a *process* boundary — an
//! on-disk checkpoint for crash recovery, a byte stream for cross-node live
//! migration, or a golden file for CI wire-format compatibility gates.
//!
//! Like `synergy-bench`'s `jsonish` reader, the codec is written by hand:
//! the vendored `serde` stand-in derives traits but does not serialize.
//! Everything here is explicit little-endian byte layout.
//!
//! ## Frame layout (version 1)
//!
//! Every checkpoint is one *frame*:
//!
//! | offset | size | field | notes |
//! |--------|------|-------|-------|
//! | 0      | 4    | magic | `b"SYNC"` |
//! | 4      | 4    | version | `u32` LE, currently 1 |
//! | 8      | 1    | kind | [`KIND_RUNTIME`] or [`KIND_FLEET`] |
//! | 9      | 8    | payload length | `u64` LE |
//! | 17     | n    | payload | kind-specific, see the `synergy-runtime` / `synergy-hv` docs |
//! | 17 + n | 4    | CRC-32 | `u32` LE, IEEE polynomial, over bytes `0 .. 17 + n` |
//!
//! Decoding rejects short input ([`SnapshotError::Truncated`]), a wrong magic
//! ([`SnapshotError::BadMagic`]), an unrecognised version
//! ([`SnapshotError::UnknownVersion`]), trailing garbage
//! ([`SnapshotError::TrailingBytes`]), and any checksum mismatch
//! ([`SnapshotError::Corrupt`]) — always with a typed error, never a panic.
//! Payload contents are only parsed after the CRC has validated the frame.
//!
//! ## Primitive encodings
//!
//! | type | encoding |
//! |------|----------|
//! | `u8`/`u32`/`u64` | little-endian, fixed width |
//! | `bool` | one byte, 0 or 1 |
//! | `f64` | `u64` LE of the IEEE-754 bit pattern (bit-exact round trip) |
//! | string | `u32` byte length + UTF-8 bytes |
//! | byte blob | `u64` byte length + bytes (nested frames) |
//! | [`Bits`] | `u32` width + `ceil(width/64)` `u64` words, little-endian word order |
//! | [`Value`] | tag `u8` (0 scalar, 1 memory) + `Bits`, or `u32` depth + per-element `Bits` |
//! | [`StateSnapshot`] | `u64` time + `u32` count + (string name, `Value`) pairs in name order |
//!
//! ## Version policy
//!
//! Any change to the frame header, the primitive encodings, or the
//! runtime/fleet payload layouts bumps [`VERSION`]. Old readers reject new
//! checkpoints with [`SnapshotError::UnknownVersion`] (and vice versa); there
//! is deliberately no silent cross-version decoding. The committed golden
//! checkpoints under `tests/golden/` pin the current version in CI — a bump
//! requires deliberately regenerating them (`cargo run -p synergy-workloads
//! --example showseed -- golden tests/golden`).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use synergy_interp::{StateSnapshot, Value};
use synergy_vlog::Bits;

/// Magic bytes opening every checkpoint frame.
pub const MAGIC: [u8; 4] = *b"SYNC";

/// Current wire-format version. See the crate docs for the version policy.
pub const VERSION: u32 = 1;

/// Frame kind: a single tenant runtime checkpoint (`synergy-runtime`).
pub const KIND_RUNTIME: u8 = 1;

/// Frame kind: a whole-hypervisor fleet checkpoint (`synergy-hv`).
pub const KIND_FLEET: u8 = 2;

/// Frame header length: magic + version + kind + payload length.
const HEADER_LEN: usize = 4 + 4 + 1 + 8;

/// CRC trailer length.
const TRAILER_LEN: usize = 4;

/// Upper bound on a declared bit width, guarding allocations while parsing.
/// (CRC validation already rejects corruption; this bounds hostile inputs
/// that happen to carry a valid checksum.)
const MAX_WIDTH_BITS: u64 = 1 << 24;

/// Typed decoding failures. Decoding never panics: every malformed input maps
/// to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ends before the encoded structure does.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The frame does not open with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's version is not [`VERSION`] (see the version policy).
    UnknownVersion(u32),
    /// The frame kind differs from what the caller expected.
    WrongKind {
        /// Kind the caller required.
        expected: u8,
        /// Kind found in the frame header.
        found: u8,
    },
    /// The CRC-32 trailer does not match the frame contents.
    Corrupt {
        /// Checksum recorded in the trailer.
        expected: u32,
        /// Checksum computed over the received bytes.
        found: u32,
    },
    /// Bytes remain after the frame's declared end.
    TrailingBytes(usize),
    /// A CRC-valid payload contains a structurally invalid encoding
    /// (bad tag, width over the cap, invalid UTF-8, ...).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "truncated checkpoint: needed {} bytes, only {} available",
                needed, available
            ),
            SnapshotError::BadMagic(m) => write!(f, "bad checkpoint magic {:02x?}", m),
            SnapshotError::UnknownVersion(v) => write!(
                f,
                "unknown checkpoint version {} (this build reads version {})",
                v, VERSION
            ),
            SnapshotError::WrongKind { expected, found } => write!(
                f,
                "wrong checkpoint kind: expected {}, found {}",
                expected, found
            ),
            SnapshotError::Corrupt { expected, found } => write!(
                f,
                "corrupt checkpoint: CRC-32 mismatch (trailer {:08x}, computed {:08x})",
                expected, found
            ),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{} trailing bytes after checkpoint frame", n)
            }
            SnapshotError::Malformed(what) => write!(f, "malformed checkpoint payload: {}", what),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Convenience result alias for codec operations.
pub type SnapshotResult<T> = Result<T, SnapshotError>;

// -------------------------------------------------------------------- crc32

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib variant).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ------------------------------------------------------------------- writer

/// Appends little-endian primitives to a payload buffer and seals it into a
/// checkpoint frame.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty payload writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends an `f64` as the `u64` of its IEEE-754 bit pattern (bit-exact).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string (`u32` byte length).
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte blob (`u64` byte length), e.g. a nested
    /// frame.
    pub fn put_blob(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a [`Bits`] value: `u32` width + its little-endian words.
    pub fn put_bits(&mut self, b: &Bits) {
        self.put_u32(b.width() as u32);
        for &w in b.words() {
            self.put_u64(w);
        }
    }

    /// Appends a [`Value`]: tag byte + scalar bits or memory elements.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Scalar(b) => {
                self.put_u8(0);
                self.put_bits(b);
            }
            Value::Memory(elems) => {
                self.put_u8(1);
                self.put_u32(elems.len() as u32);
                for e in elems {
                    self.put_bits(e);
                }
            }
        }
    }

    /// Appends a [`StateSnapshot`]: time, entry count, then name/value pairs
    /// in name order (deterministic bytes for identical state).
    pub fn put_state(&mut self, s: &StateSnapshot) {
        self.put_u64(s.time);
        self.put_u32(s.values.len() as u32);
        for (name, value) in &s.values {
            self.put_str(name);
            self.put_value(value);
        }
    }

    /// Current payload length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Seals the payload into a framed checkpoint: header, payload, CRC.
    pub fn into_frame(self, kind: u8) -> Vec<u8> {
        encode_frame(kind, &self.buf)
    }
}

/// Wraps a payload in the magic/version/kind/length header and CRC trailer.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates a frame end to end (magic, version, length, CRC) and returns its
/// kind and payload. The payload is only handed out once the CRC has passed.
///
/// # Errors
///
/// Every malformed input maps to a typed [`SnapshotError`]; this never
/// panics.
pub fn decode_frame(bytes: &[u8]) -> SnapshotResult<(u8, &[u8])> {
    if bytes.len() < 4 {
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN + TRAILER_LEN,
            available: bytes.len(),
        });
    }
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN + TRAILER_LEN,
            available: bytes.len(),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(SnapshotError::UnknownVersion(version));
    }
    let kind = bytes[8];
    let payload_len = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes"));
    let total = (HEADER_LEN as u64)
        .saturating_add(payload_len)
        .saturating_add(TRAILER_LEN as u64);
    if (bytes.len() as u64) < total {
        return Err(SnapshotError::Truncated {
            needed: total.min(usize::MAX as u64) as usize,
            available: bytes.len(),
        });
    }
    if (bytes.len() as u64) > total {
        return Err(SnapshotError::TrailingBytes(bytes.len() - total as usize));
    }
    let crc_at = bytes.len() - TRAILER_LEN;
    let expected = u32::from_le_bytes(bytes[crc_at..].try_into().expect("4 bytes"));
    let found = crc32(&bytes[..crc_at]);
    if expected != found {
        return Err(SnapshotError::Corrupt { expected, found });
    }
    Ok((kind, &bytes[HEADER_LEN..crc_at]))
}

/// Like [`decode_frame`] but additionally requires a specific frame kind.
///
/// # Errors
///
/// [`SnapshotError::WrongKind`] on a kind mismatch, plus everything
/// [`decode_frame`] rejects.
pub fn decode_frame_of(bytes: &[u8], expected: u8) -> SnapshotResult<&[u8]> {
    let (kind, payload) = decode_frame(bytes)?;
    if kind != expected {
        return Err(SnapshotError::WrongKind {
            expected,
            found: kind,
        });
    }
    Ok(payload)
}

// ------------------------------------------------------------------- reader

/// Cursor over a CRC-validated payload with typed, bounds-checked reads.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> SnapshotResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                needed: self.pos.saturating_add(n),
                available: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> SnapshotResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> SnapshotResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> SnapshotResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a bool byte, rejecting values other than 0 and 1.
    pub fn get_bool(&mut self) -> SnapshotResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed(format!(
                "bool byte must be 0 or 1, got {}",
                other
            ))),
        }
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> SnapshotResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> SnapshotResult<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not valid UTF-8".into()))
    }

    /// Reads a length-prefixed byte blob.
    pub fn get_blob(&mut self) -> SnapshotResult<&'a [u8]> {
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            // Saturating: a CRC-valid but hostile length (e.g. u64::MAX)
            // must produce a typed error, not a debug-build overflow panic.
            return Err(SnapshotError::Truncated {
                needed: self.pos.saturating_add(len.min(usize::MAX as u64) as usize),
                available: self.buf.len(),
            });
        }
        self.take(len as usize)
    }

    /// Reads an element count and sanity-checks it against the bytes left
    /// (each element occupies at least `min_bytes_each`), so a hostile count
    /// cannot trigger an over-allocation.
    pub fn get_count(&mut self, min_bytes_each: usize) -> SnapshotResult<usize> {
        let n = self.get_u32()? as usize;
        if n.saturating_mul(min_bytes_each.max(1)) > self.remaining() {
            return Err(SnapshotError::Malformed(format!(
                "element count {} exceeds remaining payload",
                n
            )));
        }
        Ok(n)
    }

    /// Reads a [`Bits`] value.
    pub fn get_bits(&mut self) -> SnapshotResult<Bits> {
        let width = self.get_u32()? as u64;
        if width == 0 || width > MAX_WIDTH_BITS {
            return Err(SnapshotError::Malformed(format!(
                "bit width {} outside 1..={}",
                width, MAX_WIDTH_BITS
            )));
        }
        let words = (width as usize).div_ceil(64);
        let mut out = Vec::with_capacity(words);
        for _ in 0..words {
            out.push(self.get_u64()?);
        }
        Ok(Bits::from_words(width as usize, out))
    }

    /// Reads a [`Value`].
    pub fn get_value(&mut self) -> SnapshotResult<Value> {
        match self.get_u8()? {
            0 => Ok(Value::Scalar(self.get_bits()?)),
            1 => {
                let depth = self.get_count(5)?;
                let mut elems = Vec::with_capacity(depth);
                for _ in 0..depth {
                    elems.push(self.get_bits()?);
                }
                Ok(Value::Memory(elems))
            }
            tag => Err(SnapshotError::Malformed(format!(
                "unknown value tag {}",
                tag
            ))),
        }
    }

    /// Reads a [`StateSnapshot`].
    pub fn get_state(&mut self) -> SnapshotResult<StateSnapshot> {
        let time = self.get_u64()?;
        let n = self.get_count(9)?;
        let mut values = BTreeMap::new();
        for _ in 0..n {
            let name = self.get_str()?;
            let value = self.get_value()?;
            values.insert(name, value);
        }
        Ok(StateSnapshot { values, time })
    }

    /// Asserts the payload is fully consumed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TrailingBytes`] if bytes remain.
    pub fn finish(self) -> SnapshotResult<()> {
        if self.remaining() > 0 {
            return Err(SnapshotError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_standard_check_value() {
        // The canonical IEEE CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        w.put_bool(true);
        w.put_f64(0.1 + 0.2);
        w.put_str("héllo");
        w.put_blob(&[1, 2, 3]);
        let frame = w.into_frame(KIND_RUNTIME);

        let payload = decode_frame_of(&frame, KIND_RUNTIME).unwrap();
        let mut r = Reader::new(payload);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_blob().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn bits_values_and_snapshots_round_trip() {
        let wide = Bits::from_u128(130, 0x0123_4567_89ab_cdef_u128) // spans 3 words
            .or(&Bits::ones(130).shl(100));
        let snapshot = StateSnapshot {
            time: 42,
            values: [
                ("a".to_string(), Value::Scalar(wide.clone())),
                (
                    "mem".to_string(),
                    Value::Memory(vec![Bits::from_u64(9, 3), Bits::from_u64(9, 511)]),
                ),
            ]
            .into_iter()
            .collect(),
        };
        let mut w = Writer::new();
        w.put_state(&snapshot);
        let frame = w.into_frame(KIND_FLEET);
        let mut r = Reader::new(decode_frame_of(&frame, KIND_FLEET).unwrap());
        let back = r.get_state().unwrap();
        r.finish().unwrap();
        assert_eq!(back, snapshot);
        assert_eq!(back.values["a"].as_scalar(), &wide);
    }

    #[test]
    fn truncation_at_every_boundary_is_a_typed_error() {
        let mut w = Writer::new();
        w.put_str("payload");
        w.put_u64(7);
        let frame = w.into_frame(KIND_RUNTIME);
        for len in 0..frame.len() {
            let err = decode_frame(&frame[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::Corrupt { .. }
                ),
                "truncation at {} gave {:?}",
                len,
                err
            );
        }
        assert!(decode_frame(&frame).is_ok());
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(0x0102_0304_0506_0708);
        let frame = w.into_frame(KIND_RUNTIME);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_err(),
                    "flip at byte {} bit {} was accepted",
                    byte,
                    bit
                );
            }
        }
    }

    #[test]
    fn wrong_kind_version_magic_and_trailing_bytes_are_typed() {
        let frame = Writer::new().into_frame(KIND_RUNTIME);
        assert_eq!(
            decode_frame_of(&frame, KIND_FLEET).unwrap_err(),
            SnapshotError::WrongKind {
                expected: KIND_FLEET,
                found: KIND_RUNTIME
            }
        );

        let mut bad_magic = frame.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_frame(&bad_magic).unwrap_err(),
            SnapshotError::BadMagic(_)
        ));

        // A version bump must be rejected by this reader — re-seal the frame
        // with a valid CRC so the version check (not the checksum) fires.
        let mut future = frame.clone();
        future[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        let crc_at = future.len() - 4;
        let crc = crc32(&future[..crc_at]);
        future[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&future).unwrap_err(),
            SnapshotError::UnknownVersion(VERSION + 1)
        );

        let mut trailing = frame;
        trailing.push(0);
        assert_eq!(
            decode_frame(&trailing).unwrap_err(),
            SnapshotError::TrailingBytes(1)
        );
    }

    #[test]
    fn hostile_blob_length_in_a_valid_frame_is_a_typed_error_not_a_panic() {
        // A frame can be CRC-valid and still hostile (anyone can compute the
        // checksum): a u64::MAX blob length must not overflow the cursor
        // arithmetic in debug builds.
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // blob "length" with no bytes behind it
        let frame = w.into_frame(KIND_FLEET);
        let mut r = Reader::new(decode_frame(&frame).unwrap().1);
        assert!(matches!(
            r.get_blob().unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
    }

    #[test]
    fn hostile_counts_and_tags_in_a_valid_frame_are_malformed_not_panics() {
        // Hand-craft CRC-valid payloads with bogus structure.
        let mut w = Writer::new();
        w.put_u8(7); // unknown value tag
        let frame = w.into_frame(KIND_RUNTIME);
        let mut r = Reader::new(decode_frame(&frame).unwrap().1);
        assert!(matches!(
            r.get_value().unwrap_err(),
            SnapshotError::Malformed(_)
        ));

        let mut w = Writer::new();
        w.put_u64(0); // snapshot time
        w.put_u32(u32::MAX); // absurd entry count
        let frame = w.into_frame(KIND_RUNTIME);
        let mut r = Reader::new(decode_frame(&frame).unwrap().1);
        assert!(matches!(
            r.get_state().unwrap_err(),
            SnapshotError::Malformed(_)
        ));

        let mut w = Writer::new();
        w.put_u32(0); // zero-width bits
        let frame = w.into_frame(KIND_RUNTIME);
        let mut r = Reader::new(decode_frame(&frame).unwrap().1);
        assert!(matches!(
            r.get_bits().unwrap_err(),
            SnapshotError::Malformed(_)
        ));
    }
}
