//! Lowering stack bytecode into register-allocated, width-specialized
//! three-address code: the compiler for the *regalloc tier* of the compiled
//! engine (executed by [`crate::wordexec`]).
//!
//! The stack tier interprets [`Op`] programs over an operand stack of
//! heap-capable [`Val`]s: every `Push*` moves a 24-byte enum, every operator
//! re-derives widths and masks at run time. This module removes both costs
//! for the common case:
//!
//! * **Width inference.** A forward abstract interpretation assigns every
//!   stack slot a static [`Class`]: `Word(w)` when the value provably has a
//!   fixed width `w <= 64` on every path (so it lives untagged in one `u64`
//!   register), or `Big` when the width is dynamic or exceeds 64 bits (the
//!   value stays a [`Val`] and each touching op falls back to the exact
//!   stack-tier scalar routines). Join points (ternary arms of different
//!   widths) demote to `Big`, preserving the interpreter's value-carried
//!   width semantics bit for bit.
//! * **Three-address translation.** Each bytecode program becomes a
//!   [`WOp`] program over virtual registers — no operand stack at run time.
//!   Widths and masks are baked into the instructions.
//! * **Peephole fusion.** Hot pairs collapse into single dispatches:
//!   constant operands fold into `BinImmW`/`ImmBinW`, constant stores into
//!   `StoreNetImm`/`StoreMemConstImm`, and net-read-then-op into
//!   `NetBinImmW` (so `PushNet; PushConst; Binary; StoreNet` runs as two
//!   fused ops instead of four stack ops).
//! * **Linear-scan register allocation.** Virtual registers are
//!   single-definition-ish and short-lived; a classic linear scan over live
//!   intervals (conservatively extended across loop back-edges) compacts
//!   them onto a small flat `Vec<u64>` word arena plus a `Vec<Val>` arena
//!   for `Big` values, keeping the hot state cache-resident even for
//!   heavily unrolled programs.
//!
//! Translation is total for everything [`crate::lower`] emits; internal
//! limits (operand-stack shape mismatches would indicate a lowering bug)
//! surface as an error and the engine falls back to the stack tier, exactly
//! like the stack tier falls back to the interpreter for designs outside
//! its envelope.

use crate::ir::{CompiledProgram, Op, Val};
use std::collections::{BTreeMap, BTreeSet};
use synergy_vlog::ast::{BinaryOp, UnaryOp};

/// Static class of a value: an untagged machine word of known width, or a
/// boxed [`Val`] (width dynamic or wider than 64 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Class {
    /// Fixed width `1..=64`, value masked to the width.
    Word(u32),
    /// Anything else; ops on it reuse the stack tier's `Val` routines.
    Big,
}

impl Class {
    fn join(self, other: Class) -> Class {
        if self == other {
            self
        } else {
            Class::Big
        }
    }
}

fn width_class(w: u32) -> Class {
    if w <= 64 {
        Class::Word(w.max(1))
    } else {
        Class::Big
    }
}

fn const_class(v: &Val) -> Class {
    match v {
        Val::Small(_, w) => Class::Word(*w),
        Val::Big(_) => Class::Big,
    }
}

fn binary_class(op: BinaryOp, a: Class, b: Class) -> Class {
    use BinaryOp::*;
    match op {
        // Comparisons and logical connectives are 1 bit wide regardless of
        // operand width (apply_binary returns from_bool).
        LogicalAnd | LogicalOr | Eq | Ne | Lt | Le | Gt | Ge => Class::Word(1),
        // Shifts keep the left operand's width.
        Shl | Shr | AShr => a,
        _ => match (a, b) {
            (Class::Word(aw), Class::Word(bw)) => Class::Word(aw.max(bw)),
            _ => Class::Big,
        },
    }
}

fn unary_class(op: UnaryOp, a: Class) -> Class {
    use UnaryOp::*;
    match op {
        LogicalNot | ReduceAnd | ReduceOr | ReduceXor => Class::Word(1),
        Not | Neg | Plus => a,
    }
}

fn concat_class(a: Class, b: Class) -> Class {
    match (a, b) {
        (Class::Word(aw), Class::Word(bw)) if aw + bw <= 64 => Class::Word(aw + bw),
        _ => Class::Big,
    }
}

/// Three-address ops over the word (`u64`) and big ([`Val`]) register
/// arenas. `W`-suffixed ops touch only word registers; `B`-suffixed ops are
/// the per-op `Val` fallback, sharing the stack tier's scalar routines.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WOp {
    // ------------------------------------------------- moves & constants
    /// words[dst] = words[src]
    MovW {
        dst: u32,
        src: u32,
    },
    /// bigs[dst] = bigs[src].clone()
    MovB {
        dst: u32,
        src: u32,
    },
    /// words[dst] = imm (pre-masked)
    ConstW {
        dst: u32,
        imm: u64,
    },
    /// bigs[dst] = consts[pool].clone()
    ConstB {
        dst: u32,
        pool: u32,
    },
    /// bigs[dst] = Val::Small(words[src], w)
    WordToBig {
        dst: u32,
        src: u32,
        w: u32,
    },
    /// words[dst] = bigs[src].to_u64()
    BigToWord {
        dst: u32,
        src: u32,
    },
    /// words[dst] = bigs[src].to_bool() as u64
    TruthB {
        dst: u32,
        src: u32,
    },
    /// words[dst] = if words[c] != 0 { words[a] } else { words[b] }
    SelW {
        dst: u32,
        c: u32,
        a: u32,
        b: u32,
    },
    /// bigs[dst] = bigs[if words[c] != 0 { a } else { b }].clone()
    SelB {
        dst: u32,
        c: u32,
        a: u32,
        b: u32,
    },

    // ---------------------------------------------------- arena access
    /// words[dst] = net_w[net]
    LoadNetW {
        dst: u32,
        net: u32,
    },
    /// bigs[dst] = net_b[net].clone()
    LoadNetB {
        dst: u32,
        net: u32,
    },
    /// net_w[net] = words[src] & mask (compare + dirty-mark)
    StoreNetW {
        net: u32,
        src: u32,
        mask: u64,
    },
    /// net_w[net] = imm (pre-masked; compare + dirty-mark)
    StoreNetImm {
        net: u32,
        imm: u64,
    },
    /// net_b[net] = bigs[src].resize(decl width) (compare + dirty-mark)
    StoreNetB {
        net: u32,
        src: u32,
    },
    /// words[dst] = mems[mem].w[0] (scalar read of a memory name)
    LoadMem0W {
        dst: u32,
        mem: u32,
    },
    /// bigs[dst] = mems[mem].b[0].clone()
    LoadMem0B {
        dst: u32,
        mem: u32,
    },
    /// words[dst] = mems[mem].w[words[idx]] (zero out of range)
    LoadMemW {
        dst: u32,
        mem: u32,
        idx: u32,
    },
    /// bigs[dst] = mems[mem].b[words[idx]].clone() (zero out of range)
    LoadMemB {
        dst: u32,
        mem: u32,
        idx: u32,
    },
    /// words[dst] = mems[mem].w[elem] (zero out of range)
    LoadMemConstW {
        dst: u32,
        mem: u32,
        elem: u32,
    },
    /// bigs[dst] = mems[mem].b[elem].clone() (zero out of range)
    LoadMemConstB {
        dst: u32,
        mem: u32,
        elem: u32,
    },
    /// mems[mem].w[words[idx]] = words[src] & mask (in-range only)
    StoreMemW {
        mem: u32,
        idx: u32,
        src: u32,
        mask: u64,
    },
    /// mems[mem].b[words[idx]] = bigs[src].resize(width) (in-range only)
    StoreMemB {
        mem: u32,
        idx: u32,
        src: u32,
    },
    /// mems[mem].w[elem] = words[src] & mask (in-range only)
    StoreMemConstW {
        mem: u32,
        elem: u32,
        src: u32,
        mask: u64,
    },
    /// mems[mem].w[elem] = imm (pre-masked; in-range only)
    StoreMemConstImm {
        mem: u32,
        elem: u32,
        imm: u64,
    },
    /// mems[mem].b[elem] = bigs[src].resize(width) (in-range only)
    StoreMemConstB {
        mem: u32,
        elem: u32,
        src: u32,
    },
    /// Bit words[idx] of word net = words[bit] & 1 (in-range only)
    StoreBitW {
        net: u32,
        idx: u32,
        bit: u32,
    },
    /// Fused: bit `idx` (constant, in range) of word net = words[bit] & 1
    StoreBitConstW {
        net: u32,
        idx: u32,
        bit: u32,
    },
    /// Bit words[idx] of big net = words[bit] & 1 (in-range only)
    StoreBitB {
        net: u32,
        idx: u32,
        bit: u32,
    },
    /// net[hi:lo] = bigs[src] via the Bits set_slice path (either net class)
    StoreSlice {
        net: u32,
        hi: u32,
        lo: u32,
        src: u32,
    },
    /// words[dst] = current simulation time
    LoadTime {
        dst: u32,
    },
    /// bigs[dst] = value register (non-blocking latch / $fread)
    LoadValueReg {
        dst: u32,
    },

    // ------------------------------------------------------- ALU (word)
    /// Word binary op with static operand widths.
    BinW {
        op: BinaryOp,
        dst: u32,
        a: u32,
        b: u32,
        aw: u32,
        bw: u32,
    },
    /// Fused: rhs is an immediate.
    BinImmW {
        op: BinaryOp,
        dst: u32,
        a: u32,
        aw: u32,
        imm: u64,
        bw: u32,
    },
    /// Fused: lhs is an immediate.
    ImmBinW {
        op: BinaryOp,
        dst: u32,
        imm: u64,
        aw: u32,
        b: u32,
        bw: u32,
    },
    /// Fused: lhs is a net read, rhs an immediate.
    NetBinImmW {
        op: BinaryOp,
        dst: u32,
        net: u32,
        aw: u32,
        imm: u64,
        bw: u32,
    },
    /// Fused: lhs is a register, rhs a net read.
    BinNetW {
        op: BinaryOp,
        dst: u32,
        a: u32,
        aw: u32,
        net: u32,
        bw: u32,
    },
    /// Fused: lhs is a net read, rhs a register.
    NetBinW {
        op: BinaryOp,
        dst: u32,
        net: u32,
        aw: u32,
        b: u32,
        bw: u32,
    },
    /// Fused: both operands are net reads (`a + b` in one dispatch).
    NetBinNetW {
        op: BinaryOp,
        dst: u32,
        neta: u32,
        aw: u32,
        netb: u32,
        bw: u32,
    },
    /// Fused statement: net_dst = words[a] OP words[b] (resize+compare+mark).
    BinStoreNet {
        op: BinaryOp,
        a: u32,
        aw: u32,
        b: u32,
        bw: u32,
        net: u32,
        mask: u64,
    },
    /// Fused statement: net_dst = words[a] OP imm.
    BinImmStoreNet {
        op: BinaryOp,
        a: u32,
        aw: u32,
        imm: u64,
        bw: u32,
        net: u32,
        mask: u64,
    },
    /// Fused statement: net_dst = net_w[src] OP imm.
    NetBinImmStoreNet {
        op: BinaryOp,
        src: u32,
        aw: u32,
        imm: u64,
        bw: u32,
        net: u32,
        mask: u64,
    },
    /// Fused statement: net_dst = net_w[neta] OP net_w[netb].
    NetBinNetStoreNet {
        op: BinaryOp,
        neta: u32,
        aw: u32,
        netb: u32,
        bw: u32,
        net: u32,
        mask: u64,
    },
    /// Word unary op.
    UnW {
        op: UnaryOp,
        dst: u32,
        a: u32,
        w: u32,
    },
    /// words[dst] = (words[a] >> lo) & mask(hi - lo + 1)
    SliceW {
        dst: u32,
        a: u32,
        hi: u32,
        lo: u32,
    },
    /// Fused: words[dst] = (net_w[net] >> lo) & mask(hi - lo + 1)
    NetSliceW {
        dst: u32,
        net: u32,
        hi: u32,
        lo: u32,
    },
    /// words[dst] = (words[a] << bw) | words[b]
    ConcatW {
        dst: u32,
        a: u32,
        b: u32,
        bw: u32,
    },
    /// words[dst] = words[a] & mask
    ResizeW {
        dst: u32,
        a: u32,
        mask: u64,
    },
    /// words[dst] = bit words[idx] of words[a] (width aw)
    BitSelW {
        dst: u32,
        a: u32,
        aw: u32,
        idx: u32,
    },
    /// Fused: words[dst] = bit words[idx] of net_w[net]
    BitSelNetW {
        dst: u32,
        net: u32,
        aw: u32,
        idx: u32,
    },
    /// Fused: words[dst] = bit `idx` (constant) of net_w[net]
    NetBitConstW {
        dst: u32,
        net: u32,
        aw: u32,
        idx: u32,
    },

    // ----------------------------------------- ALU (generic Val fallback)
    /// bigs[dst] = ir::binary(op, bigs[a], bigs[b])
    BinB {
        op: BinaryOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// bigs[dst] = ir::unary(op, bigs[a])
    UnB {
        op: UnaryOp,
        dst: u32,
        a: u32,
    },
    /// bigs[dst] = ir::slice(bigs[a], hi, lo)
    SliceConstB {
        dst: u32,
        a: u32,
        hi: u32,
        lo: u32,
    },
    /// bigs[dst] = ir::slice(bigs[a], max, min) of word bounds hi/lo
    SliceDynB {
        dst: u32,
        a: u32,
        hi: u32,
        lo: u32,
    },
    /// bigs[dst] = ir::concat(bigs[a], bigs[b])
    ConcatB {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// bigs[dst] = bigs[v].to_bits().replicate(words[n])
    ReplicateB {
        dst: u32,
        n: u32,
        v: u32,
    },
    /// bigs[dst] = bigs[a].resize(w)
    ResizeB {
        dst: u32,
        a: u32,
        w: u32,
    },
    /// words[dst] = bigs[a].bit(words[idx]) as u64
    BitSelB {
        dst: u32,
        a: u32,
        idx: u32,
    },

    // ----------------------------------------------------------- control
    Jump(u32),
    /// Jump when words[c] == 0.
    JumpIfZeroW {
        c: u32,
        t: u32,
    },
    /// Jump when words[c] != 0.
    JumpIfNonZeroW {
        c: u32,
        t: u32,
    },
    /// Fused compare-and-branch: jump when `words[a] OP words[b]` is zero.
    JzBin {
        op: BinaryOp,
        a: u32,
        aw: u32,
        b: u32,
        bw: u32,
        t: u32,
    },
    /// Fused compare-and-branch: jump when `words[a] OP words[b]` is non-zero.
    JnzBin {
        op: BinaryOp,
        a: u32,
        aw: u32,
        b: u32,
        bw: u32,
        t: u32,
    },
    /// Fused compare-and-branch: jump when `words[a] OP imm` is zero.
    JzBinImm {
        op: BinaryOp,
        a: u32,
        aw: u32,
        imm: u64,
        bw: u32,
        t: u32,
    },
    /// Fused compare-and-branch: jump when `words[a] OP imm` is non-zero.
    JnzBinImm {
        op: BinaryOp,
        a: u32,
        aw: u32,
        imm: u64,
        bw: u32,
        t: u32,
    },
    /// Fused compare-and-branch: jump when `net_w[net] OP imm` is zero.
    JzNetBinImm {
        op: BinaryOp,
        net: u32,
        aw: u32,
        imm: u64,
        bw: u32,
        t: u32,
    },
    /// Fused compare-and-branch: jump when `net_w[net] OP imm` is non-zero.
    JnzNetBinImm {
        op: BinaryOp,
        net: u32,
        aw: u32,
        imm: u64,
        bw: u32,
        t: u32,
    },
    /// Fused: jump when bit `idx` of word net `net` is clear.
    JzNetBit {
        net: u32,
        aw: u32,
        idx: u32,
        t: u32,
    },
    /// Fused: jump when bit `idx` of word net `net` is set.
    JnzNetBit {
        net: u32,
        aw: u32,
        idx: u32,
        t: u32,
    },
    /// Fused: jump when word net `net` reads zero.
    JzNet {
        net: u32,
        t: u32,
    },
    /// Fused: jump when word net `net` reads non-zero.
    JnzNet {
        net: u32,
        t: u32,
    },
    JumpIfNotFinished(u32),
    CheckFinished(u32),
    LoopInit(u32),
    LoopCheck(u32),
    /// loops[slot] = words[src].min(cap)
    RepeatInit {
        src: u32,
        slot: u32,
    },
    RepeatTest {
        slot: u32,
        end: u32,
    },

    // ------------------------------------------------- scheduling & env
    /// nb.push((site, Val::Small(words[src], w)))
    NbW {
        site: u32,
        src: u32,
        w: u32,
    },
    /// Fused: nb.push((site, Val::Small(imm, w)))
    NbImm {
        site: u32,
        imm: u64,
        w: u32,
    },
    /// Fused: nb.push((site, Val::Small(net_w[net], w)))
    NbNet {
        site: u32,
        net: u32,
        w: u32,
    },
    /// Fused: nb.push((site, Val::Small(net_w[net] OP imm, w)))
    NbNetBinImm {
        site: u32,
        op: BinaryOp,
        net: u32,
        aw: u32,
        imm: u64,
        w: u32,
        bw: u32,
    },
    /// nb.push((site, bigs[src].clone()))
    NbB {
        site: u32,
        src: u32,
    },
    Fopen {
        dst: u32,
        s: u32,
    },
    Feof {
        dst: u32,
        fd: u32,
    },
    /// Fused: words[dst] = env.feof(net_w[net])
    FeofNet {
        dst: u32,
        net: u32,
    },
    Random {
        dst: u32,
    },
    Fread {
        fd: u32,
        width: u32,
        skip: u32,
    },
    /// Fused: $fread with the descriptor read straight from a net.
    FreadNet {
        net: u32,
        width: u32,
        skip: u32,
    },
    Fclose {
        fd: u32,
    },
    PrintStr(u32),
    PrintValW {
        src: u32,
    },
    PrintValB {
        src: u32,
    },
    PrintFlush {
        newline: bool,
    },
    Finish {
        src: u32,
    },
    Effect(u32),
}

/// A translated, register-allocated program.
#[derive(Debug, Clone, Default)]
pub(crate) struct WordProg {
    pub ops: Vec<WOp>,
    /// Word-register arena slots this program needs.
    pub n_words: u32,
    /// Big-register arena slots this program needs.
    pub n_bigs: u32,
    /// For expression programs (edge guards): the register holding the
    /// final value, with its class.
    pub result: Option<(Class, u32)>,
}

// ---------------------------------------------------------------- reg visit

/// Calls `f` on every register operand of `op` (uses and defs alike),
/// mutably — the shared walker for liveness, use counting, and rewriting.
fn visit_regs(op: &mut WOp, f: &mut dyn FnMut(&mut u32, bool)) {
    use WOp::*;
    // `f(reg, is_def)`
    match op {
        MovW { dst, src } | MovB { dst, src } | BigToWord { dst, src } | TruthB { dst, src } => {
            f(src, false);
            f(dst, true);
        }
        WordToBig { dst, src, .. } => {
            f(src, false);
            f(dst, true);
        }
        SelW { dst, c, a, b } | SelB { dst, c, a, b } => {
            f(c, false);
            f(a, false);
            f(b, false);
            f(dst, true);
        }
        ConstW { dst, .. }
        | ConstB { dst, .. }
        | LoadNetW { dst, .. }
        | LoadNetB { dst, .. }
        | LoadMem0W { dst, .. }
        | LoadMem0B { dst, .. }
        | LoadMemConstW { dst, .. }
        | LoadMemConstB { dst, .. }
        | LoadTime { dst }
        | LoadValueReg { dst }
        | Fopen { dst, .. }
        | Random { dst } => f(dst, true),
        StoreNetW { src, .. }
        | StoreNetB { src, .. }
        | StoreMemConstW { src, .. }
        | StoreMemConstB { src, .. }
        | NbW { src, .. }
        | NbB { src, .. }
        | PrintValW { src }
        | PrintValB { src }
        | Finish { src } => f(src, false),
        StoreNetImm { .. }
        | StoreMemConstImm { .. }
        | Jump(_)
        | JumpIfNotFinished(_)
        | CheckFinished(_)
        | LoopInit(_)
        | LoopCheck(_)
        | RepeatTest { .. }
        | PrintStr(_)
        | PrintFlush { .. }
        | Effect(_) => {}
        LoadMemW { dst, idx, .. } | LoadMemB { dst, idx, .. } => {
            f(idx, false);
            f(dst, true);
        }
        StoreMemW { idx, src, .. } | StoreMemB { idx, src, .. } => {
            f(idx, false);
            f(src, false);
        }
        StoreBitW { idx, bit, .. } | StoreBitB { idx, bit, .. } => {
            f(idx, false);
            f(bit, false);
        }
        StoreBitConstW { bit, .. } => f(bit, false),
        StoreSlice { hi, lo, src, .. } => {
            f(hi, false);
            f(lo, false);
            f(src, false);
        }
        BinW { dst, a, b, .. } | BinB { dst, a, b, .. } | ConcatB { dst, a, b } => {
            f(a, false);
            f(b, false);
            f(dst, true);
        }
        BinImmW { dst, a, .. }
        | ImmBinW { dst, b: a, .. }
        | BinNetW { dst, a, .. }
        | NetBinW { dst, b: a, .. } => {
            f(a, false);
            f(dst, true);
        }
        NetBinImmW { dst, .. } | NetBinNetW { dst, .. } => f(dst, true),
        JzBin { a, b, .. } | JnzBin { a, b, .. } => {
            f(a, false);
            f(b, false);
        }
        JzBinImm { a, .. } | JnzBinImm { a, .. } => f(a, false),
        JzNetBinImm { .. }
        | JnzNetBinImm { .. }
        | JzNet { .. }
        | JnzNet { .. }
        | NbImm { .. }
        | NbNet { .. } => {}
        NetSliceW { dst, .. } => f(dst, true),
        BinStoreNet { a, b, .. } => {
            f(a, false);
            f(b, false);
        }
        BinImmStoreNet { a, .. } => f(a, false),
        NetBinImmStoreNet { .. } | NetBinNetStoreNet { .. } | NbNetBinImm { .. } => {}
        UnW { dst, a, .. }
        | UnB { dst, a, .. }
        | SliceW { dst, a, .. }
        | SliceConstB { dst, a, .. }
        | ResizeW { dst, a, .. }
        | ResizeB { dst, a, .. } => {
            f(a, false);
            f(dst, true);
        }
        ConcatW { dst, a, b, .. } => {
            f(a, false);
            f(b, false);
            f(dst, true);
        }
        SliceDynB { dst, a, hi, lo } => {
            f(a, false);
            f(hi, false);
            f(lo, false);
            f(dst, true);
        }
        ReplicateB { dst, n, v } => {
            f(n, false);
            f(v, false);
            f(dst, true);
        }
        BitSelW { dst, a, idx, .. } | BitSelB { dst, a, idx } => {
            f(a, false);
            f(idx, false);
            f(dst, true);
        }
        BitSelNetW { dst, idx, .. } => {
            f(idx, false);
            f(dst, true);
        }
        NetBitConstW { dst, .. } => f(dst, true),
        JzNetBit { .. } | JnzNetBit { .. } => {}
        JumpIfZeroW { c, .. } | JumpIfNonZeroW { c, .. } => f(c, false),
        Feof { dst, fd } => {
            f(fd, false);
            f(dst, true);
        }
        FeofNet { dst, .. } => f(dst, true),
        FreadNet { .. } => {}
        RepeatInit { src, .. } | Fread { fd: src, .. } | Fclose { fd: src } => f(src, false),
    }
}

/// `true` when `op`'s only register definition is `reg` and `op` does not
/// also read `reg` (safe to retarget the definition).
fn defines_only(op: &WOp, reg: u32) -> bool {
    let mut op = op.clone();
    let mut defs = 0usize;
    let mut def_is_reg = true;
    let mut reads_reg = false;
    visit_regs(&mut op, &mut |r, is_def| {
        if is_def {
            defs += 1;
            def_is_reg &= *r == reg;
        } else if *r == reg {
            reads_reg = true;
        }
    });
    defs == 1 && def_is_reg && !reads_reg && !matches!(op, WOp::MovW { .. } | WOp::MovB { .. })
}

/// Calls `f` on the branch target of `op`, if it has one.
fn visit_target(op: &mut WOp, f: &mut dyn FnMut(&mut u32)) {
    use WOp::*;
    match op {
        Jump(t)
        | JumpIfZeroW { t, .. }
        | JumpIfNonZeroW { t, .. }
        | JzBin { t, .. }
        | JnzBin { t, .. }
        | JzBinImm { t, .. }
        | JnzBinImm { t, .. }
        | JzNetBinImm { t, .. }
        | JnzNetBinImm { t, .. }
        | JzNet { t, .. }
        | JnzNet { t, .. }
        | JzNetBit { t, .. }
        | JnzNetBit { t, .. }
        | JumpIfNotFinished(t)
        | CheckFinished(t)
        | RepeatTest { end: t, .. }
        | Fread { skip: t, .. }
        | FreadNet { skip: t, .. } => f(t),
        _ => {}
    }
}

// --------------------------------------------------------------- phase one

/// Every pc that any branch can jump to (plus the end-of-program pc).
fn branch_targets(code: &[Op]) -> BTreeSet<usize> {
    let mut targets = BTreeSet::new();
    for op in code {
        match op {
            Op::Jump(t)
            | Op::JumpIfZero(t)
            | Op::JumpIfNonZero(t)
            | Op::JumpIfNotFinished(t)
            | Op::CheckFinished(t)
            | Op::RepeatTest { end: t, .. }
            | Op::Fread { skip: t, .. } => {
                targets.insert(*t as usize);
            }
            _ => {}
        }
    }
    targets
}

struct ClassInfo {
    /// Abstract stack at every reachable block entry (pc 0 and labels).
    label_in: BTreeMap<usize, Vec<Class>>,
    /// Join of every `StoreTemp` class per temp slot (`None` until a store
    /// is seen — the bottom element, so a lone store keeps its exact width).
    temps: Vec<Option<Class>>,
}

/// Forward abstract interpretation to a fixpoint: computes the stack-slot
/// classes at every label and the class of every temp register. With
/// `elide_finish`, `CheckFinished` is a no-op and `JumpIfNotFinished` an
/// unconditional jump (see [`translate`]).
fn infer_classes(
    code: &[Op],
    prog: &CompiledProgram,
    elide_finish: bool,
) -> Result<ClassInfo, String> {
    let labels = branch_targets(code);
    let mut info = ClassInfo {
        label_in: BTreeMap::from([(0usize, Vec::new())]),
        temps: vec![None; prog.n_temps as usize],
    };

    fn merge(
        label_in: &mut BTreeMap<usize, Vec<Class>>,
        pc: usize,
        stack: &[Class],
        changed: &mut bool,
    ) -> Result<(), String> {
        match label_in.get_mut(&pc) {
            None => {
                label_in.insert(pc, stack.to_vec());
                *changed = true;
            }
            Some(old) => {
                if old.len() != stack.len() {
                    return Err(format!("operand stack depth mismatch at pc {}", pc));
                }
                for (o, n) in old.iter_mut().zip(stack) {
                    let j = o.join(*n);
                    if j != *o {
                        *o = j;
                        *changed = true;
                    }
                }
            }
        }
        Ok(())
    }

    loop {
        let mut changed = false;
        let starts: Vec<usize> = info.label_in.keys().copied().collect();
        for start in starts {
            let mut stack = info.label_in[&start].clone();
            let mut pc = start;
            while pc < code.len() {
                if pc != start && labels.contains(&pc) {
                    merge(&mut info.label_in, pc, &stack, &mut changed)?;
                    break;
                }
                let underflow = || format!("operand stack underflow at pc {}", pc);
                let pop = |stack: &mut Vec<Class>| stack.pop().ok_or_else(underflow);
                match &code[pc] {
                    Op::PushConst(i) => stack.push(const_class(&prog.consts[*i as usize])),
                    Op::PushNet(i) => stack.push(width_class(prog.nets[*i as usize].width)),
                    Op::PushMemElem0(i) => stack.push(width_class(prog.mems[*i as usize].width)),
                    Op::PushTime => stack.push(Class::Word(64)),
                    Op::PushValueReg => stack.push(Class::Big),
                    Op::MemRead(i) => {
                        pop(&mut stack)?;
                        stack.push(width_class(prog.mems[*i as usize].width));
                    }
                    Op::MemReadConst { mem, .. } => {
                        stack.push(width_class(prog.mems[*mem as usize].width));
                    }
                    Op::BitSelect => {
                        pop(&mut stack)?;
                        pop(&mut stack)?;
                        stack.push(Class::Word(1));
                    }
                    Op::SliceConst { hi, lo } => {
                        pop(&mut stack)?;
                        stack.push(width_class(hi - lo + 1));
                    }
                    Op::SliceDyn => {
                        for _ in 0..3 {
                            pop(&mut stack)?;
                        }
                        stack.push(Class::Big);
                    }
                    Op::Unary(op) => {
                        let a = pop(&mut stack)?;
                        stack.push(unary_class(*op, a));
                    }
                    Op::Binary(op) => {
                        let b = pop(&mut stack)?;
                        let a = pop(&mut stack)?;
                        stack.push(binary_class(*op, a, b));
                    }
                    Op::Concat2 => {
                        let b = pop(&mut stack)?;
                        let a = pop(&mut stack)?;
                        stack.push(concat_class(a, b));
                    }
                    Op::ReplicateDyn => {
                        pop(&mut stack)?;
                        pop(&mut stack)?;
                        stack.push(Class::Big);
                    }
                    Op::Resize(w) => {
                        pop(&mut stack)?;
                        stack.push(width_class(*w));
                    }
                    Op::Select => {
                        let b = pop(&mut stack)?;
                        let a = pop(&mut stack)?;
                        pop(&mut stack)?;
                        stack.push(a.join(b));
                    }
                    Op::Jump(t) => {
                        merge(&mut info.label_in, *t as usize, &stack, &mut changed)?;
                        break;
                    }
                    Op::JumpIfZero(t) | Op::JumpIfNonZero(t) => {
                        pop(&mut stack)?;
                        merge(&mut info.label_in, *t as usize, &stack, &mut changed)?;
                    }
                    Op::JumpIfNotFinished(t) => {
                        merge(&mut info.label_in, *t as usize, &stack, &mut changed)?;
                        if elide_finish {
                            // Nothing can set `finished`: the back-edge is
                            // unconditional, the fallthrough dead.
                            break;
                        }
                    }
                    Op::CheckFinished(t) => {
                        if !elide_finish {
                            merge(&mut info.label_in, *t as usize, &stack, &mut changed)?;
                        }
                    }
                    Op::StoreTemp(i) => {
                        let c = pop(&mut stack)?;
                        let t = &mut info.temps[*i as usize];
                        let j = match *t {
                            None => c,
                            Some(old) => old.join(c),
                        };
                        if Some(j) != *t {
                            *t = Some(j);
                            changed = true;
                        }
                    }
                    // A read before any recorded store mirrors the stack
                    // tier's `Val::zero(1)` temp initialisation; the
                    // fixpoint revisits once the store is seen.
                    Op::PushTemp(i) => {
                        stack.push(info.temps[*i as usize].unwrap_or(Class::Word(1)))
                    }
                    Op::Pop | Op::StoreNet(_) | Op::StoreMemConst { .. } => {
                        pop(&mut stack)?;
                    }
                    Op::StoreMem(_) | Op::StoreBit(_) => {
                        pop(&mut stack)?;
                        pop(&mut stack)?;
                    }
                    Op::StoreSliceDyn(_) => {
                        for _ in 0..3 {
                            pop(&mut stack)?;
                        }
                    }
                    Op::NbSchedule(_)
                    | Op::RepeatInit(_)
                    | Op::Fclose
                    | Op::PrintVal
                    | Op::Finish => {
                        pop(&mut stack)?;
                    }
                    Op::LoopInit(_)
                    | Op::LoopCheck(_)
                    | Op::PrintStr(_)
                    | Op::PrintFlush { .. }
                    | Op::Effect(_) => {}
                    Op::RepeatTest { end, .. } => {
                        merge(&mut info.label_in, *end as usize, &stack, &mut changed)?;
                    }
                    Op::Fopen(_) => stack.push(Class::Word(32)),
                    Op::Feof => {
                        pop(&mut stack)?;
                        stack.push(Class::Word(1));
                    }
                    Op::Random => stack.push(Class::Word(32)),
                    Op::Fread { skip, .. } => {
                        pop(&mut stack)?;
                        merge(&mut info.label_in, *skip as usize, &stack, &mut changed)?;
                    }
                }
                pc += 1;
            }
        }
        if !changed {
            return Ok(info);
        }
    }
}

// --------------------------------------------------------------- phase two

struct Emitter {
    vclass: Vec<Class>,
    ops: Vec<WOp>,
    stack: Vec<(Class, u32)>,
}

impl Emitter {
    fn fresh(&mut self, c: Class) -> u32 {
        self.vclass.push(c);
        (self.vclass.len() - 1) as u32
    }

    fn push(&mut self, c: Class) -> u32 {
        let r = self.fresh(c);
        self.stack.push((c, r));
        r
    }

    fn pop(&mut self, pc: usize) -> Result<(Class, u32), String> {
        self.stack
            .pop()
            .ok_or_else(|| format!("operand stack underflow at pc {}", pc))
    }

    /// The value as a word register (`to_u64` semantics for `Big`).
    fn word_reg(&mut self, d: (Class, u32)) -> u32 {
        match d.0 {
            Class::Word(_) => d.1,
            Class::Big => {
                let r = self.fresh(Class::Word(64));
                self.ops.push(WOp::BigToWord { dst: r, src: d.1 });
                r
            }
        }
    }

    /// The value as a big register (boxing `Word` values with their width).
    fn big_reg(&mut self, d: (Class, u32)) -> u32 {
        match d.0 {
            Class::Word(w) => {
                let r = self.fresh(Class::Big);
                self.ops.push(WOp::WordToBig {
                    dst: r,
                    src: d.1,
                    w,
                });
                r
            }
            Class::Big => d.1,
        }
    }

    /// Narrows a big-register result whose class is statically `Word(w)`.
    fn narrow(&mut self, big: u32, class: Class) -> (Class, u32) {
        match class {
            Class::Word(_) => {
                let r = self.fresh(class);
                self.ops.push(WOp::BigToWord { dst: r, src: big });
                (class, r)
            }
            Class::Big => (Class::Big, big),
        }
    }

    /// Emits the (parallel) moves carrying the current stack into a label's
    /// canonical registers. Sources are read before any destination they
    /// alias is written; cycles break through a fresh register. When
    /// `preserve_stack` is set (conditional branches, where the fallthrough
    /// path keeps using the current stack), stack slots that alias a move
    /// destination are copied aside first so the fallthrough values survive.
    fn reconcile(&mut self, canon: &[(Class, u32)], preserve_stack: bool) -> Result<(), String> {
        if self.stack.len() != canon.len() {
            return Err("operand stack depth mismatch at join".into());
        }
        if preserve_stack {
            // Canonical registers that the moves below will overwrite.
            let dsts: Vec<u32> = self
                .stack
                .iter()
                .zip(canon)
                .filter(|((_, cur_r), (_, can_r))| cur_r != can_r)
                .map(|(_, (_, can_r))| *can_r)
                .collect();
            #[allow(clippy::needless_range_loop)]
            for i in 0..self.stack.len() {
                let (c, r) = self.stack[i];
                if canon[i].1 != r && dsts.contains(&r) {
                    let copy = self.fresh(c);
                    self.emit_move(copy, c, r, c);
                    self.stack[i] = (c, copy);
                }
            }
        }
        // (dst, src, src_class)
        let mut moves: Vec<(u32, u32, Class)> = Vec::new();
        for ((cur_c, cur_r), (can_c, can_r)) in self.stack.iter().zip(canon) {
            if cur_r == can_r && cur_c == can_c {
                continue;
            }
            debug_assert!(!(matches!(can_c, Class::Word(_)) && *can_c != *cur_c));
            moves.push((*can_r, *cur_r, *cur_c));
        }
        while !moves.is_empty() {
            if let Some(i) = moves
                .iter()
                .position(|&(dst, _, _)| !moves.iter().any(|&(_, src, _)| src == dst))
            {
                let (dst, src, src_c) = moves.swap_remove(i);
                let dst_c = self.vclass[dst as usize];
                self.emit_move(dst, dst_c, src, src_c);
            } else {
                // A cycle: park the first source in a fresh register.
                let (_, src, src_c) = moves[0];
                let tmp = self.fresh(src_c);
                self.emit_move(tmp, src_c, src, src_c);
                for m in &mut moves {
                    if m.1 == src {
                        m.1 = tmp;
                    }
                }
            }
        }
        Ok(())
    }

    fn emit_move(&mut self, dst: u32, dst_c: Class, src: u32, src_c: Class) {
        match (src_c, dst_c) {
            (Class::Word(_), Class::Word(_)) => self.ops.push(WOp::MovW { dst, src }),
            (Class::Word(w), Class::Big) => self.ops.push(WOp::WordToBig { dst, src, w }),
            (Class::Big, Class::Big) => self.ops.push(WOp::MovB { dst, src }),
            (Class::Big, Class::Word(_)) => {
                // Ruled out by the class join; keep a sound fallback.
                self.ops.push(WOp::BigToWord { dst, src });
            }
        }
    }
}

/// Translates one stack-bytecode program into an (unallocated) three-address
/// program. Branch targets in the result are still *source* pcs; the caller
/// remaps them via the returned `pc_map`.
/// Emission result: the ops (branch targets still source pcs), the virtual
/// register classes, the source-pc → emitted-index map, and the result
/// register for expression programs.
type Emitted = (
    Vec<WOp>,
    Vec<Class>,
    BTreeMap<usize, usize>,
    Option<(Class, u32)>,
);

fn emit(
    code: &[Op],
    prog: &CompiledProgram,
    info: &ClassInfo,
    want_result: bool,
    elide_finish: bool,
) -> Result<Emitted, String> {
    let labels = branch_targets(code);
    let mut e = Emitter {
        vclass: Vec::new(),
        ops: Vec::new(),
        stack: Vec::new(),
    };
    // Canonical registers per reachable label.
    let mut canon: BTreeMap<usize, Vec<(Class, u32)>> = BTreeMap::new();
    for (&pc, classes) in &info.label_in {
        let regs = classes.iter().map(|&c| (c, e.fresh(c))).collect();
        canon.insert(pc, regs);
    }
    let temp_regs: Vec<(Class, u32)> = info
        .temps
        .iter()
        .map(|&c| {
            let c = c.unwrap_or(Class::Word(1));
            (c, e.fresh(c))
        })
        .collect();
    let mut pc_map: BTreeMap<usize, usize> = BTreeMap::new();
    let mut result: Option<(Class, u32)> = None;

    let starts: Vec<usize> = canon.keys().copied().collect();
    for &start in &starts {
        e.stack = canon[&start].clone();
        pc_map.insert(start, e.ops.len());
        let mut pc = start;
        while pc < code.len() {
            if pc != start && labels.contains(&pc) {
                // Fallthrough into the next block: hand the stack over.
                e.reconcile(&canon[&pc], false)?;
                break;
            }
            match &code[pc] {
                Op::PushConst(i) => match &prog.consts[*i as usize] {
                    Val::Small(v, w) => {
                        let dst = e.push(Class::Word(*w));
                        e.ops.push(WOp::ConstW { dst, imm: *v });
                    }
                    Val::Big(_) => {
                        let dst = e.push(Class::Big);
                        e.ops.push(WOp::ConstB { dst, pool: *i });
                    }
                },
                Op::PushNet(i) => {
                    let w = prog.nets[*i as usize].width;
                    if w <= 64 {
                        let dst = e.push(Class::Word(w));
                        e.ops.push(WOp::LoadNetW { dst, net: *i });
                    } else {
                        let dst = e.push(Class::Big);
                        e.ops.push(WOp::LoadNetB { dst, net: *i });
                    }
                }
                Op::PushMemElem0(i) => {
                    let w = prog.mems[*i as usize].width;
                    if w <= 64 {
                        let dst = e.push(Class::Word(w));
                        e.ops.push(WOp::LoadMem0W { dst, mem: *i });
                    } else {
                        let dst = e.push(Class::Big);
                        e.ops.push(WOp::LoadMem0B { dst, mem: *i });
                    }
                }
                Op::PushTime => {
                    let dst = e.push(Class::Word(64));
                    e.ops.push(WOp::LoadTime { dst });
                }
                Op::PushValueReg => {
                    let dst = e.push(Class::Big);
                    e.ops.push(WOp::LoadValueReg { dst });
                }
                Op::MemRead(i) => {
                    let idx = e.pop(pc)?;
                    let idx = e.word_reg(idx);
                    let w = prog.mems[*i as usize].width;
                    if w <= 64 {
                        let dst = e.push(Class::Word(w));
                        e.ops.push(WOp::LoadMemW { dst, mem: *i, idx });
                    } else {
                        let dst = e.push(Class::Big);
                        e.ops.push(WOp::LoadMemB { dst, mem: *i, idx });
                    }
                }
                Op::MemReadConst { mem, elem } => {
                    let w = prog.mems[*mem as usize].width;
                    if w <= 64 {
                        let dst = e.push(Class::Word(w));
                        e.ops.push(WOp::LoadMemConstW {
                            dst,
                            mem: *mem,
                            elem: *elem,
                        });
                    } else {
                        let dst = e.push(Class::Big);
                        e.ops.push(WOp::LoadMemConstB {
                            dst,
                            mem: *mem,
                            elem: *elem,
                        });
                    }
                }
                Op::BitSelect => {
                    let base = e.pop(pc)?;
                    let idx = e.pop(pc)?;
                    let idx = e.word_reg(idx);
                    match base.0 {
                        Class::Word(aw) => {
                            let dst = e.push(Class::Word(1));
                            e.ops.push(WOp::BitSelW {
                                dst,
                                a: base.1,
                                aw,
                                idx,
                            });
                        }
                        Class::Big => {
                            let dst = e.push(Class::Word(1));
                            e.ops.push(WOp::BitSelB {
                                dst,
                                a: base.1,
                                idx,
                            });
                        }
                    }
                }
                Op::SliceConst { hi, lo } => {
                    let base = e.pop(pc)?;
                    let w = hi - lo + 1;
                    match base.0 {
                        Class::Word(_) if w <= 64 => {
                            let dst = e.push(Class::Word(w));
                            e.ops.push(WOp::SliceW {
                                dst,
                                a: base.1,
                                hi: *hi,
                                lo: *lo,
                            });
                        }
                        _ => {
                            let a = e.big_reg(base);
                            let big = e.fresh(Class::Big);
                            e.ops.push(WOp::SliceConstB {
                                dst: big,
                                a,
                                hi: *hi,
                                lo: *lo,
                            });
                            let d = e.narrow(big, width_class(w));
                            e.stack.push(d);
                        }
                    }
                }
                Op::SliceDyn => {
                    let lo = e.pop(pc)?;
                    let hi = e.pop(pc)?;
                    let base = e.pop(pc)?;
                    let lo = e.word_reg(lo);
                    let hi = e.word_reg(hi);
                    let a = e.big_reg(base);
                    let dst = e.push(Class::Big);
                    e.ops.push(WOp::SliceDynB { dst, a, hi, lo });
                }
                Op::Unary(op) => {
                    let a = e.pop(pc)?;
                    match a.0 {
                        Class::Word(w) => {
                            let dst = e.push(unary_class(*op, a.0));
                            e.ops.push(WOp::UnW {
                                op: *op,
                                dst,
                                a: a.1,
                                w,
                            });
                        }
                        Class::Big => {
                            let big = e.fresh(Class::Big);
                            e.ops.push(WOp::UnB {
                                op: *op,
                                dst: big,
                                a: a.1,
                            });
                            let d = e.narrow(big, unary_class(*op, Class::Big));
                            e.stack.push(d);
                        }
                    }
                }
                Op::Binary(op) => {
                    let b = e.pop(pc)?;
                    let a = e.pop(pc)?;
                    match (a.0, b.0) {
                        (Class::Word(aw), Class::Word(bw)) => {
                            let dst = e.push(binary_class(*op, a.0, b.0));
                            e.ops.push(WOp::BinW {
                                op: *op,
                                dst,
                                a: a.1,
                                b: b.1,
                                aw,
                                bw,
                            });
                        }
                        _ => {
                            let class = binary_class(*op, a.0, b.0);
                            let av = e.big_reg(a);
                            let bv = e.big_reg(b);
                            let big = e.fresh(Class::Big);
                            e.ops.push(WOp::BinB {
                                op: *op,
                                dst: big,
                                a: av,
                                b: bv,
                            });
                            let d = e.narrow(big, class);
                            e.stack.push(d);
                        }
                    }
                }
                Op::Concat2 => {
                    let b = e.pop(pc)?;
                    let a = e.pop(pc)?;
                    match (a.0, b.0) {
                        (Class::Word(_), Class::Word(bw))
                            if concat_class(a.0, b.0) != Class::Big =>
                        {
                            let dst = e.push(concat_class(a.0, b.0));
                            e.ops.push(WOp::ConcatW {
                                dst,
                                a: a.1,
                                b: b.1,
                                bw,
                            });
                        }
                        _ => {
                            let av = e.big_reg(a);
                            let bv = e.big_reg(b);
                            let dst = e.push(Class::Big);
                            e.ops.push(WOp::ConcatB { dst, a: av, b: bv });
                        }
                    }
                }
                Op::ReplicateDyn => {
                    let v = e.pop(pc)?;
                    let n = e.pop(pc)?;
                    let n = e.word_reg(n);
                    let v = e.big_reg(v);
                    let dst = e.push(Class::Big);
                    e.ops.push(WOp::ReplicateB { dst, n, v });
                }
                Op::Resize(w) => {
                    let a = e.pop(pc)?;
                    match a.0 {
                        Class::Word(_) if *w <= 64 => {
                            let dst = e.push(Class::Word(*w));
                            e.ops.push(WOp::ResizeW {
                                dst,
                                a: a.1,
                                mask: crate::ir::mask(*w),
                            });
                        }
                        _ => {
                            let av = e.big_reg(a);
                            let big = e.fresh(Class::Big);
                            e.ops.push(WOp::ResizeB {
                                dst: big,
                                a: av,
                                w: *w,
                            });
                            let d = e.narrow(big, width_class(*w));
                            e.stack.push(d);
                        }
                    }
                }
                Op::Select => {
                    let b = e.pop(pc)?;
                    let a = e.pop(pc)?;
                    let c = e.pop(pc)?;
                    let c = match c.0 {
                        Class::Word(_) => c.1,
                        Class::Big => {
                            let r = e.fresh(Class::Word(1));
                            e.ops.push(WOp::TruthB { dst: r, src: c.1 });
                            r
                        }
                    };
                    match (a.0, b.0) {
                        (Class::Word(aw), Class::Word(bw)) if aw == bw => {
                            let dst = e.push(Class::Word(aw));
                            e.ops.push(WOp::SelW {
                                dst,
                                c,
                                a: a.1,
                                b: b.1,
                            });
                        }
                        _ => {
                            let av = e.big_reg(a);
                            let bv = e.big_reg(b);
                            let dst = e.push(Class::Big);
                            e.ops.push(WOp::SelB {
                                dst,
                                c,
                                a: av,
                                b: bv,
                            });
                        }
                    }
                }
                Op::Jump(t) => {
                    e.reconcile(&canon[&(*t as usize)], false)?;
                    e.ops.push(WOp::Jump(*t));
                    break;
                }
                Op::JumpIfZero(t) | Op::JumpIfNonZero(t) => {
                    let c = e.pop(pc)?;
                    let c = match c.0 {
                        Class::Word(_) => c.1,
                        Class::Big => {
                            let r = e.fresh(Class::Word(1));
                            e.ops.push(WOp::TruthB { dst: r, src: c.1 });
                            r
                        }
                    };
                    e.reconcile(&canon[&(*t as usize)], true)?;
                    e.ops.push(match code[pc] {
                        Op::JumpIfZero(_) => WOp::JumpIfZeroW { c, t: *t },
                        _ => WOp::JumpIfNonZeroW { c, t: *t },
                    });
                }
                Op::JumpIfNotFinished(t) => {
                    if elide_finish {
                        e.reconcile(&canon[&(*t as usize)], false)?;
                        e.ops.push(WOp::Jump(*t));
                        break;
                    }
                    e.reconcile(&canon[&(*t as usize)], true)?;
                    e.ops.push(WOp::JumpIfNotFinished(*t));
                }
                Op::CheckFinished(t) => {
                    if !elide_finish {
                        e.reconcile(&canon[&(*t as usize)], true)?;
                        e.ops.push(WOp::CheckFinished(*t));
                    }
                }
                Op::StoreTemp(i) => {
                    let v = e.pop(pc)?;
                    let (tc, tr) = temp_regs[*i as usize];
                    e.emit_move(tr, tc, v.1, v.0);
                }
                Op::PushTemp(i) => {
                    let (tc, tr) = temp_regs[*i as usize];
                    e.stack.push((tc, tr));
                }
                Op::Pop => {
                    e.pop(pc)?;
                }
                Op::StoreNet(i) => {
                    let v = e.pop(pc)?;
                    let decl_w = prog.nets[*i as usize].width;
                    if decl_w <= 64 {
                        let src = e.word_reg(v);
                        e.ops.push(WOp::StoreNetW {
                            net: *i,
                            src,
                            mask: crate::ir::mask(decl_w),
                        });
                    } else {
                        let src = e.big_reg(v);
                        e.ops.push(WOp::StoreNetB { net: *i, src });
                    }
                }
                Op::StoreMem(m) => {
                    let idx = e.pop(pc)?;
                    let value = e.pop(pc)?;
                    let idx = e.word_reg(idx);
                    let w = prog.mems[*m as usize].width;
                    if w <= 64 {
                        let src = e.word_reg(value);
                        e.ops.push(WOp::StoreMemW {
                            mem: *m,
                            idx,
                            src,
                            mask: crate::ir::mask(w),
                        });
                    } else {
                        let src = e.big_reg(value);
                        e.ops.push(WOp::StoreMemB { mem: *m, idx, src });
                    }
                }
                Op::StoreMemConst { mem, elem } => {
                    let value = e.pop(pc)?;
                    let w = prog.mems[*mem as usize].width;
                    if w <= 64 {
                        let src = e.word_reg(value);
                        e.ops.push(WOp::StoreMemConstW {
                            mem: *mem,
                            elem: *elem,
                            src,
                            mask: crate::ir::mask(w),
                        });
                    } else {
                        let src = e.big_reg(value);
                        e.ops.push(WOp::StoreMemConstB {
                            mem: *mem,
                            elem: *elem,
                            src,
                        });
                    }
                }
                Op::StoreBit(i) => {
                    let idx = e.pop(pc)?;
                    let value = e.pop(pc)?;
                    let idx = e.word_reg(idx);
                    let bit = e.word_reg(value);
                    if prog.nets[*i as usize].width <= 64 {
                        e.ops.push(WOp::StoreBitW { net: *i, idx, bit });
                    } else {
                        e.ops.push(WOp::StoreBitB { net: *i, idx, bit });
                    }
                }
                Op::StoreSliceDyn(i) => {
                    let lo = e.pop(pc)?;
                    let hi = e.pop(pc)?;
                    let value = e.pop(pc)?;
                    let lo = e.word_reg(lo);
                    let hi = e.word_reg(hi);
                    let src = e.big_reg(value);
                    e.ops.push(WOp::StoreSlice {
                        net: *i,
                        hi,
                        lo,
                        src,
                    });
                }
                Op::NbSchedule(site) => {
                    let v = e.pop(pc)?;
                    match v.0 {
                        Class::Word(w) => e.ops.push(WOp::NbW {
                            site: *site,
                            src: v.1,
                            w,
                        }),
                        Class::Big => e.ops.push(WOp::NbB {
                            site: *site,
                            src: v.1,
                        }),
                    }
                }
                Op::LoopInit(slot) => e.ops.push(WOp::LoopInit(*slot)),
                Op::LoopCheck(slot) => e.ops.push(WOp::LoopCheck(*slot)),
                Op::RepeatInit(slot) => {
                    let n = e.pop(pc)?;
                    let src = e.word_reg(n);
                    e.ops.push(WOp::RepeatInit { src, slot: *slot });
                }
                Op::RepeatTest { slot, end } => {
                    e.reconcile(&canon[&(*end as usize)], true)?;
                    e.ops.push(WOp::RepeatTest {
                        slot: *slot,
                        end: *end,
                    });
                }
                Op::Fopen(s) => {
                    let dst = e.push(Class::Word(32));
                    e.ops.push(WOp::Fopen { dst, s: *s });
                }
                Op::Feof => {
                    let fd = e.pop(pc)?;
                    let fd = e.word_reg(fd);
                    let dst = e.push(Class::Word(1));
                    e.ops.push(WOp::Feof { dst, fd });
                }
                Op::Random => {
                    let dst = e.push(Class::Word(32));
                    e.ops.push(WOp::Random { dst });
                }
                Op::Fread { width, skip } => {
                    let fd = e.pop(pc)?;
                    let fd = e.word_reg(fd);
                    e.reconcile(&canon[&(*skip as usize)], true)?;
                    e.ops.push(WOp::Fread {
                        fd,
                        width: *width,
                        skip: *skip,
                    });
                }
                Op::Fclose => {
                    let fd = e.pop(pc)?;
                    let fd = e.word_reg(fd);
                    e.ops.push(WOp::Fclose { fd });
                }
                Op::PrintStr(s) => e.ops.push(WOp::PrintStr(*s)),
                Op::PrintVal => {
                    let v = e.pop(pc)?;
                    match v.0 {
                        Class::Word(_) => e.ops.push(WOp::PrintValW { src: v.1 }),
                        Class::Big => e.ops.push(WOp::PrintValB { src: v.1 }),
                    }
                }
                Op::PrintFlush { newline } => e.ops.push(WOp::PrintFlush { newline: *newline }),
                Op::Finish => {
                    let v = e.pop(pc)?;
                    let src = e.word_reg(v);
                    e.ops.push(WOp::Finish { src });
                }
                Op::Effect(i) => e.ops.push(WOp::Effect(*i)),
            }
            pc += 1;
        }
        if pc >= code.len() && want_result {
            // Expression program: the final stack top is the result.
            if let Some(&(c, r)) = e.stack.last() {
                result = Some((c, r));
            }
        }
    }
    pc_map.insert(code.len(), e.ops.len());
    Ok((e.ops, e.vclass, pc_map, result))
}

// ----------------------------------------------------------------- peephole

/// Swapped-operand form of `op`, when operand order is exchangeable: the op
/// is symmetric, or a comparison with a mirrored counterpart. Width
/// bookkeeping swaps with the operands, so `a OP b == b mirror(OP) a`
/// bit-for-bit.
fn mirrored(op: BinaryOp) -> Option<BinaryOp> {
    use BinaryOp::*;
    match op {
        Add | Mul | And | Or | Xor | LogicalAnd | LogicalOr | Eq | Ne => Some(op),
        Lt => Some(Gt),
        Gt => Some(Lt),
        Le => Some(Ge),
        Ge => Some(Le),
        Sub | Div | Rem | Shl | Shr | AShr => None,
    }
}

/// Fuses hot adjacent pairs. Targets must already be *emitted* indices.
fn peephole(mut ops: Vec<WOp>, vclass: &[Class]) -> Vec<WOp> {
    loop {
        // Positions any branch lands on: never fuse across them.
        let mut is_target = vec![false; ops.len() + 1];
        for op in &ops {
            let mut op = op.clone();
            visit_target(&mut op, &mut |t| is_target[*t as usize] = true);
        }
        // Global use counts (reads only).
        let mut uses = vec![0u32; vclass.len()];
        for op in &mut ops {
            visit_regs(op, &mut |r, is_def| {
                if !is_def {
                    uses[*r as usize] += 1;
                }
            });
        }
        let mut out: Vec<WOp> = Vec::with_capacity(ops.len());
        let mut remap: Vec<u32> = Vec::with_capacity(ops.len() + 1);
        let mut i = 0;
        let mut changed = false;
        while i < ops.len() {
            remap.push(out.len() as u32);
            let fused = if i + 1 < ops.len() && !is_target[i + 1] {
                match (&ops[i], &ops[i + 1]) {
                    // PushConst; Binary  ->  one immediate ALU op.
                    (
                        &WOp::ConstW { dst: c, imm },
                        &WOp::BinW {
                            op,
                            dst,
                            a,
                            b,
                            aw,
                            bw,
                        },
                    ) if b == c && a != c && uses[c as usize] == 1 => Some(WOp::BinImmW {
                        op,
                        dst,
                        a,
                        aw,
                        imm,
                        bw,
                    }),
                    (
                        &WOp::ConstW { dst: c, imm },
                        &WOp::BinW {
                            op,
                            dst,
                            a,
                            b,
                            aw,
                            bw,
                        },
                    ) if a == c && b != c && uses[c as usize] == 1 => Some(WOp::ImmBinW {
                        op,
                        dst,
                        imm,
                        aw,
                        b,
                        bw,
                    }),
                    // PushConst; StoreNet  ->  one immediate store.
                    (&WOp::ConstW { dst: c, imm }, &WOp::StoreNetW { net, src, mask })
                        if src == c && uses[c as usize] == 1 =>
                    {
                        Some(WOp::StoreNetImm {
                            net,
                            imm: imm & mask,
                        })
                    }
                    // PushConst; StoreMemConst  ->  one immediate store.
                    (
                        &WOp::ConstW { dst: c, imm },
                        &WOp::StoreMemConstW {
                            mem,
                            elem,
                            src,
                            mask,
                        },
                    ) if src == c && uses[c as usize] == 1 => Some(WOp::StoreMemConstImm {
                        mem,
                        elem,
                        imm: imm & mask,
                    }),
                    // PushNet; BinImm  ->  one net-read ALU op.
                    (
                        &WOp::LoadNetW { dst: l, net },
                        &WOp::BinImmW {
                            op,
                            dst,
                            a,
                            aw,
                            imm,
                            bw,
                        },
                    ) if a == l && uses[l as usize] == 1 => Some(WOp::NetBinImmW {
                        op,
                        dst,
                        net,
                        aw,
                        imm,
                        bw,
                    }),
                    // PushNet; Binary  ->  one net-operand ALU op.
                    (
                        &WOp::LoadNetW { dst: l, net },
                        &WOp::BinW {
                            op,
                            dst,
                            a,
                            b,
                            aw,
                            bw,
                        },
                    ) if b == l && a != l && uses[l as usize] == 1 => Some(WOp::BinNetW {
                        op,
                        dst,
                        a,
                        aw,
                        net,
                        bw,
                    }),
                    (
                        &WOp::LoadNetW { dst: l, net },
                        &WOp::BinW {
                            op,
                            dst,
                            a,
                            b,
                            aw,
                            bw,
                        },
                    ) if a == l && b != l && uses[l as usize] == 1 => Some(WOp::NetBinW {
                        op,
                        dst,
                        net,
                        aw,
                        b,
                        bw,
                    }),
                    // PushNet; PushNet; Binary collapses over two rounds into
                    // a both-operands-are-nets dispatch.
                    (
                        &WOp::LoadNetW { dst: l, net },
                        &WOp::BinNetW {
                            op,
                            dst,
                            a,
                            aw,
                            net: netb,
                            bw,
                        },
                    ) if a == l && uses[l as usize] == 1 => Some(WOp::NetBinNetW {
                        op,
                        dst,
                        neta: net,
                        aw,
                        netb,
                        bw,
                    }),
                    (
                        &WOp::LoadNetW { dst: l, net },
                        &WOp::NetBinW {
                            op,
                            dst,
                            net: neta,
                            aw,
                            b,
                            bw,
                        },
                    ) if b == l && uses[l as usize] == 1 => Some(WOp::NetBinNetW {
                        op,
                        dst,
                        neta,
                        aw,
                        netb: net,
                        bw,
                    }),
                    // Compare (or any word op); conditional branch  ->  one
                    // fused test-and-branch.
                    (
                        &WOp::BinW {
                            op,
                            dst,
                            a,
                            b,
                            aw,
                            bw,
                        },
                        &WOp::JumpIfZeroW { c, t },
                    ) if c == dst && uses[dst as usize] == 1 => Some(WOp::JzBin {
                        op,
                        a,
                        aw,
                        b,
                        bw,
                        t,
                    }),
                    (
                        &WOp::BinW {
                            op,
                            dst,
                            a,
                            b,
                            aw,
                            bw,
                        },
                        &WOp::JumpIfNonZeroW { c, t },
                    ) if c == dst && uses[dst as usize] == 1 => Some(WOp::JnzBin {
                        op,
                        a,
                        aw,
                        b,
                        bw,
                        t,
                    }),
                    (
                        &WOp::BinImmW {
                            op,
                            dst,
                            a,
                            aw,
                            imm,
                            bw,
                        },
                        &WOp::JumpIfZeroW { c, t },
                    ) if c == dst && uses[dst as usize] == 1 => Some(WOp::JzBinImm {
                        op,
                        a,
                        aw,
                        imm,
                        bw,
                        t,
                    }),
                    (
                        &WOp::BinImmW {
                            op,
                            dst,
                            a,
                            aw,
                            imm,
                            bw,
                        },
                        &WOp::JumpIfNonZeroW { c, t },
                    ) if c == dst && uses[dst as usize] == 1 => Some(WOp::JnzBinImm {
                        op,
                        a,
                        aw,
                        imm,
                        bw,
                        t,
                    }),
                    (
                        &WOp::NetBinImmW {
                            op,
                            dst,
                            net,
                            aw,
                            imm,
                            bw,
                        },
                        &WOp::JumpIfZeroW { c, t },
                    ) if c == dst && uses[dst as usize] == 1 => Some(WOp::JzNetBinImm {
                        op,
                        net,
                        aw,
                        imm,
                        bw,
                        t,
                    }),
                    (
                        &WOp::NetBinImmW {
                            op,
                            dst,
                            net,
                            aw,
                            imm,
                            bw,
                        },
                        &WOp::JumpIfNonZeroW { c, t },
                    ) if c == dst && uses[dst as usize] == 1 => Some(WOp::JnzNetBinImm {
                        op,
                        net,
                        aw,
                        imm,
                        bw,
                        t,
                    }),
                    // PushNet; SliceConst  ->  one net-slice dispatch.
                    (&WOp::LoadNetW { dst: l, net }, &WOp::SliceW { dst, a, hi, lo })
                        if a == l && uses[l as usize] == 1 =>
                    {
                        Some(WOp::NetSliceW { dst, net, hi, lo })
                    }
                    // Constant bit index  ->  folded into the store.
                    (&WOp::ConstW { dst: c, imm }, &WOp::StoreBitW { net, idx, bit })
                        if idx == c && bit != c && uses[c as usize] == 1 =>
                    {
                        Some(WOp::StoreBitConstW {
                            net,
                            idx: imm.min(u32::MAX as u64) as u32,
                            bit,
                        })
                    }
                    // Bit selects: base from a net, then constant index,
                    // then straight into a branch.
                    (&WOp::LoadNetW { dst: l, net }, &WOp::BitSelW { dst, a, aw, idx })
                        if a == l && idx != l && uses[l as usize] == 1 =>
                    {
                        Some(WOp::BitSelNetW { dst, net, aw, idx })
                    }
                    (&WOp::ConstW { dst: c, imm }, &WOp::BitSelNetW { dst, net, aw, idx })
                        if idx == c && uses[c as usize] == 1 =>
                    {
                        Some(WOp::NetBitConstW {
                            dst,
                            net,
                            aw,
                            idx: imm.min(u32::MAX as u64) as u32,
                        })
                    }
                    (&WOp::NetBitConstW { dst, net, aw, idx }, &WOp::JumpIfZeroW { c, t })
                        if c == dst && uses[dst as usize] == 1 =>
                    {
                        Some(WOp::JzNetBit { net, aw, idx, t })
                    }
                    (&WOp::NetBitConstW { dst, net, aw, idx }, &WOp::JumpIfNonZeroW { c, t })
                        if c == dst && uses[dst as usize] == 1 =>
                    {
                        Some(WOp::JnzNetBit { net, aw, idx, t })
                    }
                    // PushNet; conditional branch  ->  one net-test branch.
                    (&WOp::LoadNetW { dst: l, net }, &WOp::JumpIfZeroW { c, t })
                        if c == l && uses[l as usize] == 1 =>
                    {
                        Some(WOp::JzNet { net, t })
                    }
                    (&WOp::LoadNetW { dst: l, net }, &WOp::JumpIfNonZeroW { c, t })
                        if c == l && uses[l as usize] == 1 =>
                    {
                        Some(WOp::JnzNet { net, t })
                    }
                    // `!x` feeding a branch flips the branch sense instead.
                    (
                        &WOp::UnW {
                            op: UnaryOp::LogicalNot,
                            dst,
                            a,
                            ..
                        },
                        &WOp::JumpIfZeroW { c, t },
                    ) if c == dst && uses[dst as usize] == 1 => {
                        Some(WOp::JumpIfNonZeroW { c: a, t })
                    }
                    (
                        &WOp::UnW {
                            op: UnaryOp::LogicalNot,
                            dst,
                            a,
                            ..
                        },
                        &WOp::JumpIfNonZeroW { c, t },
                    ) if c == dst && uses[dst as usize] == 1 => Some(WOp::JumpIfZeroW { c: a, t }),
                    // Constant / net-read non-blocking schedules.
                    (&WOp::ConstW { dst: c, imm }, &WOp::NbW { site, src, w })
                        if src == c && uses[c as usize] == 1 =>
                    {
                        Some(WOp::NbImm { site, imm, w })
                    }
                    (&WOp::LoadNetW { dst: l, net }, &WOp::NbW { site, src, w })
                        if src == l && uses[l as usize] == 1 =>
                    {
                        Some(WOp::NbNet { site, net, w })
                    }
                    // A word ALU result flowing straight into a whole-net
                    // store becomes one fused statement dispatch.
                    (
                        &WOp::BinW {
                            op,
                            dst,
                            a,
                            b,
                            aw,
                            bw,
                        },
                        &WOp::StoreNetW { net, src, mask },
                    ) if src == dst && uses[dst as usize] == 1 => Some(WOp::BinStoreNet {
                        op,
                        a,
                        aw,
                        b,
                        bw,
                        net,
                        mask,
                    }),
                    (
                        &WOp::BinImmW {
                            op,
                            dst,
                            a,
                            aw,
                            imm,
                            bw,
                        },
                        &WOp::StoreNetW { net, src, mask },
                    ) if src == dst && uses[dst as usize] == 1 => Some(WOp::BinImmStoreNet {
                        op,
                        a,
                        aw,
                        imm,
                        bw,
                        net,
                        mask,
                    }),
                    (
                        &WOp::NetBinImmW {
                            op,
                            dst,
                            net: srcn,
                            aw,
                            imm,
                            bw,
                        },
                        &WOp::StoreNetW { net, src, mask },
                    ) if src == dst && uses[dst as usize] == 1 => Some(WOp::NetBinImmStoreNet {
                        op,
                        src: srcn,
                        aw,
                        imm,
                        bw,
                        net,
                        mask,
                    }),
                    (
                        &WOp::NetBinNetW {
                            op,
                            dst,
                            neta,
                            aw,
                            netb,
                            bw,
                        },
                        &WOp::StoreNetW { net, src, mask },
                    ) if src == dst && uses[dst as usize] == 1 => Some(WOp::NetBinNetStoreNet {
                        op,
                        neta,
                        aw,
                        netb,
                        bw,
                        net,
                        mask,
                    }),
                    // ...or into a non-blocking schedule.
                    (
                        &WOp::NetBinImmW {
                            op,
                            dst,
                            net,
                            aw,
                            imm,
                            bw,
                        },
                        &WOp::NbW { site, src, w },
                    ) if src == dst && uses[dst as usize] == 1 => Some(WOp::NbNetBinImm {
                        site,
                        op,
                        net,
                        aw,
                        imm,
                        w,
                        bw,
                    }),
                    // Descriptor reads straight from a net.
                    (&WOp::LoadNetW { dst: l, net }, &WOp::Feof { dst, fd })
                        if fd == l && uses[l as usize] == 1 =>
                    {
                        Some(WOp::FeofNet { dst, net })
                    }
                    (&WOp::LoadNetW { dst: l, net }, &WOp::Fread { fd, width, skip })
                        if fd == l && uses[l as usize] == 1 =>
                    {
                        Some(WOp::FreadNet { net, width, skip })
                    }
                    // Any single-use def flowing straight into a move
                    // writes the move's destination directly instead.
                    (first, &WOp::MovW { dst, src }) | (first, &WOp::MovB { dst, src })
                        if dst != src && uses[src as usize] == 1 && defines_only(first, src) =>
                    {
                        let mut rewritten = first.clone();
                        visit_regs(&mut rewritten, &mut |r, is_def| {
                            if is_def && *r == src {
                                *r = dst;
                            }
                        });
                        Some(rewritten)
                    }
                    _ => None,
                }
            } else {
                None
            };
            match fused {
                Some(op) => {
                    out.push(op);
                    remap.push(out.len() as u32 - 1);
                    i += 2;
                    changed = true;
                }
                None => {
                    // Normalize exchangeable immediate-on-the-left ops into
                    // the immediate-on-the-right form so the net-read and
                    // branch fusions above see them on a later round.
                    if let WOp::ImmBinW {
                        op,
                        dst,
                        imm,
                        aw,
                        b,
                        bw,
                    } = ops[i]
                    {
                        if let Some(m) = mirrored(op) {
                            out.push(WOp::BinImmW {
                                op: m,
                                dst,
                                a: b,
                                aw: bw,
                                imm,
                                bw: aw,
                            });
                            changed = true;
                            i += 1;
                            continue;
                        }
                    }
                    out.push(ops[i].clone());
                    i += 1;
                }
            }
        }
        remap.push(out.len() as u32);
        for op in &mut out {
            visit_target(op, &mut |t| *t = remap[*t as usize]);
        }
        ops = out;
        if !changed {
            return ops;
        }
    }
}

// ----------------------------------------------------------- linear scan

/// Linear-scan register allocation: maps virtual registers onto compact
/// per-class arenas by live interval, conservatively extending intervals
/// across loop back-edges.
fn allocate(ops: &mut [WOp], vclass: &[Class], result: &mut Option<(Class, u32)>) -> (u32, u32) {
    const NONE: u32 = u32::MAX;
    let n = vclass.len();
    let mut first = vec![NONE; n];
    let mut last = vec![0u32; n];
    for (i, op) in ops.iter_mut().enumerate() {
        visit_regs(op, &mut |r, _| {
            let v = *r as usize;
            if first[v] == NONE {
                first[v] = i as u32;
            }
            last[v] = i as u32;
        });
    }
    if let Some((_, r)) = result {
        let v = *r as usize;
        if first[v] == NONE {
            first[v] = 0;
        }
        last[v] = ops.len() as u32;
    }
    // Back-edges keep loop-carried registers alive across the whole loop.
    let mut back_edges: Vec<(u32, u32)> = Vec::new();
    for (i, op) in ops.iter_mut().enumerate() {
        visit_target(op, &mut |t| {
            if (*t as usize) <= i {
                back_edges.push((i as u32, *t));
            }
        });
    }
    if !back_edges.is_empty() {
        loop {
            let mut changed = false;
            for &(i, t) in &back_edges {
                for v in 0..n {
                    if first[v] != NONE && first[v] < t && last[v] >= t && last[v] < i {
                        last[v] = i;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    let mut order: Vec<usize> = (0..n).filter(|&v| first[v] != NONE).collect();
    order.sort_by_key(|&v| first[v]);
    let mut assign = vec![NONE; n];
    let mut active: Vec<(u32, u32, usize)> = Vec::new(); // (end, phys, vreg)
    let mut free_w: Vec<u32> = Vec::new();
    let mut free_b: Vec<u32> = Vec::new();
    let mut n_words = 0u32;
    let mut n_bigs = 0u32;
    for v in order {
        let start = first[v];
        active.retain(|&(end, phys, vr)| {
            if end < start {
                match vclass[vr] {
                    Class::Word(_) => free_w.push(phys),
                    Class::Big => free_b.push(phys),
                }
                false
            } else {
                true
            }
        });
        let phys = match vclass[v] {
            Class::Word(_) => free_w.pop().unwrap_or_else(|| {
                n_words += 1;
                n_words - 1
            }),
            Class::Big => free_b.pop().unwrap_or_else(|| {
                n_bigs += 1;
                n_bigs - 1
            }),
        };
        assign[v] = phys;
        active.push((last[v], phys, v));
    }
    for op in ops.iter_mut() {
        visit_regs(op, &mut |r, _| *r = assign[*r as usize]);
    }
    if let Some((_, r)) = result {
        *r = assign[*r as usize];
    }
    (n_words, n_bigs)
}

// ------------------------------------------------------------- entry points

fn translate(
    code: &[Op],
    prog: &CompiledProgram,
    want_result: bool,
    body: bool,
) -> Result<WordProg, String> {
    // In an `always` body, `finished` is guaranteed `None` at entry (the
    // evaluate loop checks before dispatching each triggered body) and only
    // an `Op::Finish` can set it mid-program — so when the body contains no
    // `Finish`, every `CheckFinished` is a no-op and every
    // `JumpIfNotFinished` back-edge unconditional, and both compile away.
    // `initial` blocks keep the checks: `run_initials` runs all of them even
    // after an earlier one finished.
    let elide_finish = body && !code.iter().any(|op| matches!(op, Op::Finish));
    let info = infer_classes(code, prog, elide_finish)?;
    let (mut ops, vclass, pc_map, mut result) = emit(code, prog, &info, want_result, elide_finish)?;
    for op in &mut ops {
        visit_target(op, &mut |t| *t = pc_map[&(*t as usize)] as u32);
    }
    let mut ops = peephole(ops, &vclass);
    let (n_words, n_bigs) = allocate(&mut ops, &vclass, &mut result);
    Ok(WordProg {
        ops,
        n_words,
        n_bigs,
        result,
    })
}

/// Translates a statement program (initial, comb node, non-blocking store
/// site).
pub(crate) fn translate_stmt(code: &[Op], prog: &CompiledProgram) -> Result<WordProg, String> {
    translate(code, prog, false, false)
}

/// Translates an `always` body (statement program whose entry is guaranteed
/// to see `finished == None`, enabling finish-check elision).
pub(crate) fn translate_body(code: &[Op], prog: &CompiledProgram) -> Result<WordProg, String> {
    translate(code, prog, false, true)
}

/// Translates an expression program (edge guard); the result register holds
/// the final value.
pub(crate) fn translate_expr(code: &[Op], prog: &CompiledProgram) -> Result<WordProg, String> {
    translate(code, prog, true, false)
}
