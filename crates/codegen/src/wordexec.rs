//! The word-level executor for register-allocated programs: the runtime of
//! the compiled engine's *regalloc tier*.
//!
//! State layout (see also the crate docs):
//!
//! * `net_w: Vec<u64>` — scalar nets at most 64 bits wide, untagged, masked
//!   to their declared width; `net_b: Vec<Val>` holds the (rare) wider nets
//!   at the same indices.
//! * `mems` — one flat `Vec<u64>` per memory whose element width fits a
//!   word, `Vec<Val>` otherwise.
//! * `words: Vec<u64>` / `bigs: Vec<Val>` — the register arenas, sized to
//!   the largest allocation any translated program needs and shared by all
//!   of them (registers are dead across program boundaries).
//!
//! Combinational re-evaluation is driven by a **level-bucketed worklist**:
//! marking a node dirty pushes its position into the bucket for its
//! topological level, and `propagate` drains buckets in ascending level
//! order. A node's stores only ever mark strictly deeper levels (or itself,
//! which the post-execution dirty-clear absorbs), so one sweep reaches the
//! fixpoint while touching exactly the dirty cone — never the whole node
//! array.
//!
//! Scheduling semantics (evaluate/update fixpoint, edge detection, settle
//! caps, error strings) mirror the stack tier — and therefore the reference
//! interpreter — exactly; the differential and fuzz suites hold all three
//! to bit-identical snapshots.

use crate::exec::{NoopEnv, MAX_PROPAGATION_ITERS, MAX_SETTLE_ITERS};
use crate::ir::{mask, CompiledProgram, Op, SlotRef, Val, MAX_LOOP_ITERS};
use crate::regalloc::{translate_body, translate_expr, translate_stmt, Class, WOp, WordProg};
use std::collections::BTreeMap;
use synergy_interp::{StateSnapshot, SystemEnv, Value};
use synergy_vlog::ast::Edge;
use synergy_vlog::{Bits, VlogError, VlogResult};

/// An edge guard: the common whole-net case reads one word directly; the
/// general case runs a translated expression program.
#[derive(Clone)]
enum WGuard {
    /// Guard expression is a bare read of a word-sized net.
    NetW { net: u32, w: u32 },
    /// General guard program; `result` holds the value.
    Prog(WordProg),
}

/// One translated `always` block.
#[derive(Clone)]
struct WAlways {
    guards: Vec<(Edge, WGuard)>,
    star: Vec<SlotRef>,
    body: WordProg,
}

/// A non-blocking latch site: the ubiquitous whole-word-net store runs
/// inline in `update` without dispatching a program.
#[derive(Clone)]
enum WNbSite {
    /// `net <= value`: resize to the net width, compare, mark.
    WordNet {
        net: u32,
        mask: u64,
    },
    Prog(WordProg),
}

/// A combinational node: single-copy shapes run inline in `propagate`.
#[derive(Clone)]
enum WComb {
    /// `assign dst = src` (width-matched or truncating copy).
    CopyNet {
        src: u32,
        dst: u32,
        mask: u64,
    },
    /// `assign dst = src[hi:lo]`.
    SliceNet {
        src: u32,
        hi: u32,
        lo: u32,
        dst: u32,
        mask: u64,
    },
    Prog(WordProg),
}

/// The translated programs plus static scheduling tables.
#[derive(Clone)]
struct WordProgs {
    comb: Vec<WComb>,
    /// Worklist bucket (level - 1) per comb position.
    comb_bucket: Vec<u32>,
    /// Number of level buckets.
    n_levels: usize,
    always: Vec<WAlways>,
    initials: Vec<WordProg>,
    nb_sites: Vec<WNbSite>,
    /// CSR-flattened `net_deps` + `net_driver`: the comb positions to mark
    /// when net `i` changes live at `net_dep_flat[net_dep_off[i]..net_dep_off[i + 1]]`.
    net_dep_off: Vec<u32>,
    net_dep_flat: Vec<u32>,
    /// Same for memories (`mem_deps` + `mem_driver`).
    mem_dep_off: Vec<u32>,
    mem_dep_flat: Vec<u32>,
    /// Nets/memories some guard or `@*` sensitivity list reads: only writes
    /// to these can change edge-detection outcomes.
    guard_nets: Vec<bool>,
    guard_mems: Vec<bool>,
}

/// Records which nets/memories `op` reads (conservatively including store
/// targets, which is harmless for the guard-visibility filter).
fn note_slot_reads(op: &mut WOp, nets: &mut [bool], mems: &mut [bool]) {
    match op {
        WOp::LoadNetW { net, .. }
        | WOp::LoadNetB { net, .. }
        | WOp::NetBinImmW { net, .. }
        | WOp::BinNetW { net, .. }
        | WOp::NetBinW { net, .. }
        | WOp::NetSliceW { net, .. }
        | WOp::BitSelNetW { net, .. }
        | WOp::NetBitConstW { net, .. }
        | WOp::JzNetBinImm { net, .. }
        | WOp::JnzNetBinImm { net, .. }
        | WOp::JzNetBit { net, .. }
        | WOp::JnzNetBit { net, .. }
        | WOp::JzNet { net, .. }
        | WOp::JnzNet { net, .. }
        | WOp::NbNet { net, .. }
        | WOp::NbNetBinImm { net, .. }
        | WOp::FeofNet { net, .. }
        | WOp::FreadNet { net, .. }
        | WOp::StoreNetW { net, .. }
        | WOp::StoreNetImm { net, .. }
        | WOp::StoreNetB { net, .. }
        | WOp::StoreBitW { net, .. }
        | WOp::StoreBitConstW { net, .. }
        | WOp::StoreBitB { net, .. }
        | WOp::StoreSlice { net, .. }
        | WOp::BinStoreNet { net, .. }
        | WOp::BinImmStoreNet { net, .. }
        | WOp::NetBinImmStoreNet { net, .. } => nets[*net as usize] = true,
        WOp::NetBinNetW { neta, netb, .. } | WOp::NetBinNetStoreNet { neta, netb, .. } => {
            nets[*neta as usize] = true;
            nets[*netb as usize] = true;
        }
        WOp::LoadMem0W { mem, .. }
        | WOp::LoadMem0B { mem, .. }
        | WOp::LoadMemW { mem, .. }
        | WOp::LoadMemB { mem, .. }
        | WOp::LoadMemConstW { mem, .. }
        | WOp::LoadMemConstB { mem, .. }
        | WOp::StoreMemW { mem, .. }
        | WOp::StoreMemB { mem, .. }
        | WOp::StoreMemConstW { mem, .. }
        | WOp::StoreMemConstImm { mem, .. }
        | WOp::StoreMemConstB { mem, .. } => mems[*mem as usize] = true,
        _ => {}
    }
}

/// Recognises latch-site and comb-node shapes that run inline.
fn classify_nb(p: WordProg) -> WNbSite {
    if let [WOp::LoadValueReg { dst: a }, WOp::BigToWord { dst: b, src }, WOp::StoreNetW { net, src: c, mask }] =
        p.ops[..]
    {
        if a == src && b == c {
            return WNbSite::WordNet { net, mask };
        }
    }
    WNbSite::Prog(p)
}

fn classify_comb(p: WordProg) -> WComb {
    match p.ops[..] {
        [WOp::LoadNetW { dst: a, net: src }, WOp::StoreNetW {
            net: dst,
            src: b,
            mask,
        }] if a == b => WComb::CopyNet { src, dst, mask },
        [WOp::NetSliceW {
            dst: a,
            net: src,
            hi,
            lo,
        }, WOp::StoreNetW {
            net: dst,
            src: b,
            mask,
        }] if a == b => WComb::SliceNet {
            src,
            hi,
            lo,
            dst,
            mask,
        },
        _ => WComb::Prog(p),
    }
}

/// Flattens per-slot dependency lists (readers plus the optional driver)
/// into one contiguous CSR table.
fn flatten_deps(deps: &[Vec<u32>], drivers: &[Option<u32>]) -> (Vec<u32>, Vec<u32>) {
    let mut off = Vec::with_capacity(deps.len() + 1);
    let mut flat = Vec::new();
    off.push(0);
    for (d, drv) in deps.iter().zip(drivers) {
        flat.extend_from_slice(d);
        if let Some(p) = drv {
            flat.push(*p);
        }
        off.push(flat.len() as u32);
    }
    (off, flat)
}

/// One memory: word-specialized when its element width fits a machine word,
/// `Val`-backed otherwise.
#[derive(Clone)]
struct WMem {
    width: u32,
    msk: u64,
    small: bool,
    w: Vec<u64>,
    b: Vec<Val>,
}

/// A previously observed guard/sensitivity value. The variant is fixed per
/// guard by its static class, so comparisons never cross variants after
/// initialization; equality mirrors `Val` equality (value and width).
#[derive(Clone, PartialEq)]
enum PrevVal {
    W(u64, u32),
    B(Val),
}

impl PrevVal {
    fn bit0(&self) -> bool {
        match self {
            PrevVal::W(v, _) => v & 1 == 1,
            PrevVal::B(v) => v.bit(0),
        }
    }
}

/// Mutable execution state of the regalloc tier.
#[derive(Clone)]
struct WState {
    net_w: Vec<u64>,
    net_b: Vec<Val>,
    mems: Vec<WMem>,
    words: Vec<u64>,
    bigs: Vec<Val>,
    loops: Vec<u64>,
    value_reg: Val,
    print_buf: String,
    nb: Vec<(u32, Val)>,
    comb_dirty: Vec<bool>,
    pending: Vec<Vec<u32>>,
    pending_count: usize,
    guard_prev: Vec<Vec<PrevVal>>,
    triggered_scratch: Vec<u32>,
    /// Bumped whenever any net or memory value changes. Guards read only
    /// nets/memories, so edge detection can be skipped entirely while this
    /// matches `guard_epoch` (the value at the last detection pass).
    write_epoch: u64,
    guard_epoch: u64,
    effects: Vec<synergy_interp::TaskEffect>,
    time: u64,
    finished: Option<u32>,
    initials_run: bool,
    /// Telemetry counters and settle-cap fault detail. Observability only:
    /// never part of `save_state`/`restore_state` or any wire format.
    settle_iters: u64,
    worklist_drains: u64,
    guard_epoch_skips: u64,
    fault: Option<String>,
}

/// The regalloc-tier machine: translated programs plus execution state.
#[derive(Clone)]
pub(crate) struct WordMachine {
    wp: WordProgs,
    st: WState,
}

fn guard_of(code: &[Op], prog: &CompiledProgram) -> Result<WGuard, String> {
    if let [Op::PushNet(i)] = code {
        let w = prog.nets[*i as usize].width;
        if w <= 64 {
            return Ok(WGuard::NetW { net: *i, w });
        }
    }
    Ok(WGuard::Prog(translate_expr(code, prog)?))
}

fn init_prev(class: Class) -> PrevVal {
    match class {
        Class::Word(_) => PrevVal::W(0, 1),
        Class::Big => PrevVal::B(Val::zero(1)),
    }
}

impl WordMachine {
    /// Renders every translated program (debug aid for fusion coverage).
    pub(crate) fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let prog = |name: &str, p: &WordProg| {
            let mut s = String::new();
            let _ = writeln!(s, "== {} (words {}, bigs {})", name, p.n_words, p.n_bigs);
            for (i, op) in p.ops.iter().enumerate() {
                let _ = writeln!(s, "{:4}  {:?}", i, op);
            }
            s
        };
        for (i, a) in self.wp.always.iter().enumerate() {
            for (j, (e, g)) in a.guards.iter().enumerate() {
                match g {
                    WGuard::NetW { net, w } => {
                        out.push_str(&format!(
                            "== always{} guard{} {:?}: NetW net={} w={}\n",
                            i, j, e, net, w
                        ));
                    }
                    WGuard::Prog(pg) => {
                        out.push_str(&prog(&format!("always{} guard{} {:?}", i, j, e), pg))
                    }
                }
            }
            out.push_str(&prog(&format!("always{} body", i), &a.body));
        }
        for (i, c) in self.wp.comb.iter().enumerate() {
            match c {
                WComb::CopyNet { src, dst, mask } => out.push_str(&format!(
                    "== comb{}: CopyNet src={} dst={} mask={:#x}\n",
                    i, src, dst, mask
                )),
                WComb::SliceNet {
                    src, hi, lo, dst, ..
                } => out.push_str(&format!(
                    "== comb{}: SliceNet src={}[{}:{}] dst={}\n",
                    i, src, hi, lo, dst
                )),
                WComb::Prog(p) => out.push_str(&prog(&format!("comb{}", i), p)),
            }
        }
        for (i, c) in self.wp.nb_sites.iter().enumerate() {
            match c {
                WNbSite::WordNet { net, mask } => out.push_str(&format!(
                    "== nb{}: WordNet net={} mask={:#x}\n",
                    i, net, mask
                )),
                WNbSite::Prog(p) => out.push_str(&prog(&format!("nb{}", i), p)),
            }
        }
        for (i, c) in self.wp.initials.iter().enumerate() {
            out.push_str(&prog(&format!("initial{}", i), c));
        }
        out
    }

    /// Translates every program of a lowered design and builds fresh
    /// execution state (registers at declared reset values).
    pub(crate) fn compile(prog: &CompiledProgram) -> Result<WordMachine, String> {
        let comb = prog
            .comb
            .iter()
            .map(|n| translate_stmt(&n.code, prog).map(classify_comb))
            .collect::<Result<Vec<_>, _>>()?;
        let comb_bucket: Vec<u32> = prog
            .comb
            .iter()
            .map(|n| n.level.saturating_sub(1))
            .collect();
        let n_levels = comb_bucket
            .iter()
            .map(|&b| b as usize + 1)
            .max()
            .unwrap_or(0);
        let mut always = Vec::with_capacity(prog.always.len());
        for ap in &prog.always {
            let mut guards = Vec::with_capacity(ap.guards.len());
            for (edge, code) in &ap.guards {
                guards.push((*edge, guard_of(code, prog)?));
            }
            always.push(WAlways {
                guards,
                star: ap.star.clone(),
                body: translate_body(&ap.body, prog)?,
            });
        }
        let initials = prog
            .initials
            .iter()
            .map(|c| translate_stmt(c, prog))
            .collect::<Result<Vec<_>, _>>()?;
        let nb_sites = prog
            .nb_sites
            .iter()
            .map(|c| translate_stmt(c, prog).map(classify_nb))
            .collect::<Result<Vec<_>, _>>()?;

        let mut max_words = 0u32;
        let mut max_bigs = 0u32;
        {
            let mut note = |p: &WordProg| {
                max_words = max_words.max(p.n_words);
                max_bigs = max_bigs.max(p.n_bigs);
            };
            for c in &comb {
                if let WComb::Prog(p) = c {
                    note(p);
                }
            }
            initials.iter().for_each(&mut note);
            for s in &nb_sites {
                if let WNbSite::Prog(p) = s {
                    note(p);
                }
            }
            for a in &always {
                note(&a.body);
                for (_, g) in &a.guards {
                    if let WGuard::Prog(p) = g {
                        note(p);
                    }
                }
            }
        }

        let net_w: Vec<u64> = prog
            .nets
            .iter()
            .map(|n| match &n.init {
                Some(b) if n.width <= 64 => b.to_u64() & mask(n.width),
                _ => 0,
            })
            .collect();
        let net_b: Vec<Val> = prog
            .nets
            .iter()
            .map(|n| {
                if n.width > 64 {
                    match &n.init {
                        Some(b) => Val::from_bits(b),
                        None => Val::zero(n.width as usize),
                    }
                } else {
                    Val::Small(0, 1)
                }
            })
            .collect();
        let mems = prog
            .mems
            .iter()
            .map(|m| {
                let small = m.width <= 64;
                WMem {
                    width: m.width,
                    msk: mask(m.width.min(64)),
                    small,
                    w: if small {
                        vec![0; m.depth as usize]
                    } else {
                        Vec::new()
                    },
                    b: if small {
                        Vec::new()
                    } else {
                        vec![Val::zero(m.width as usize); m.depth as usize]
                    },
                }
            })
            .collect();
        let guard_prev = always
            .iter()
            .map(|a| {
                if a.guards.is_empty() {
                    a.star
                        .iter()
                        .map(|s| match s {
                            SlotRef::Net(i) => {
                                init_prev(class_of_width(prog.nets[*i as usize].width))
                            }
                            SlotRef::Mem(i) => {
                                init_prev(class_of_width(prog.mems[*i as usize].width))
                            }
                        })
                        .collect()
                } else {
                    a.guards
                        .iter()
                        .map(|(_, g)| match g {
                            WGuard::NetW { .. } => PrevVal::W(0, 1),
                            WGuard::Prog(p) => {
                                init_prev(p.result.map(|(c, _)| c).unwrap_or(Class::Word(1)))
                            }
                        })
                        .collect()
                }
            })
            .collect();

        let n_comb = comb.len();
        let mut st = WState {
            net_w,
            net_b,
            mems,
            words: vec![0; max_words as usize],
            bigs: vec![Val::zero(1); max_bigs as usize],
            loops: vec![0; prog.n_loops as usize],
            value_reg: Val::zero(1),
            print_buf: String::new(),
            nb: Vec::new(),
            comb_dirty: vec![false; n_comb],
            pending: vec![Vec::new(); n_levels],
            pending_count: 0,
            guard_prev,
            triggered_scratch: Vec::new(),
            write_epoch: 0,
            guard_epoch: u64::MAX,
            effects: Vec::new(),
            time: 0,
            finished: None,
            initials_run: false,
            settle_iters: 0,
            worklist_drains: 0,
            guard_epoch_skips: 0,
            fault: None,
        };
        let (net_dep_off, net_dep_flat) = flatten_deps(&prog.net_deps, &prog.net_driver);
        let (mem_dep_off, mem_dep_flat) = flatten_deps(&prog.mem_deps, &prog.mem_driver);
        let mut guard_nets = vec![false; prog.nets.len()];
        let mut guard_mems = vec![false; prog.mems.len()];
        for a in &always {
            for s in &a.star {
                match s {
                    SlotRef::Net(i) => guard_nets[*i as usize] = true,
                    SlotRef::Mem(i) => guard_mems[*i as usize] = true,
                }
            }
            for (_, g) in &a.guards {
                match g {
                    WGuard::NetW { net, .. } => guard_nets[*net as usize] = true,
                    WGuard::Prog(p) => {
                        for op in &p.ops {
                            let mut op = op.clone();
                            note_slot_reads(&mut op, &mut guard_nets, &mut guard_mems);
                        }
                    }
                }
            }
        }
        let wp = WordProgs {
            comb,
            comb_bucket,
            n_levels,
            always,
            initials,
            nb_sites,
            net_dep_off,
            net_dep_flat,
            mem_dep_off,
            mem_dep_flat,
            guard_nets,
            guard_mems,
        };
        for pos in 0..n_comb {
            mark_comb(&wp, &mut st, pos as u32);
        }
        Ok(WordMachine { wp, st })
    }

    pub(crate) fn time(&self) -> u64 {
        self.st.time
    }

    pub(crate) fn finished(&self) -> Option<u32> {
        self.st.finished
    }

    pub(crate) fn take_effects(&mut self) -> Vec<synergy_interp::TaskEffect> {
        std::mem::take(&mut self.st.effects)
    }

    pub(crate) fn there_are_updates(&self) -> bool {
        !self.st.nb.is_empty()
    }

    pub(crate) fn value_of(&self, prog: &CompiledProgram, slot: SlotRef) -> Value {
        match slot {
            SlotRef::Net(i) => Value::Scalar(self.net_bits(prog, i)),
            SlotRef::Mem(i) => {
                let m = &self.st.mems[i as usize];
                Value::Memory(if m.small {
                    m.w.iter()
                        .map(|&v| Bits::from_u64(m.width as usize, v))
                        .collect()
                } else {
                    m.b.iter().map(Val::to_bits).collect()
                })
            }
        }
    }

    pub(crate) fn bits_of(&self, prog: &CompiledProgram, slot: SlotRef) -> Bits {
        match slot {
            SlotRef::Net(i) => self.net_bits(prog, i),
            SlotRef::Mem(i) => {
                let m = &self.st.mems[i as usize];
                if m.small {
                    Bits::from_u64(m.width as usize, m.w[0])
                } else {
                    m.b[0].to_bits()
                }
            }
        }
    }

    fn net_bits(&self, prog: &CompiledProgram, i: u32) -> Bits {
        if prog.nets[i as usize].width <= 64 {
            Bits::from_u64(
                prog.nets[i as usize].width as usize,
                self.st.net_w[i as usize],
            )
        } else {
            self.st.net_b[i as usize].to_bits()
        }
    }

    /// Writes a scalar net by id and re-wakes its readers (the clock-toggle
    /// fast path; mirrors the stack tier's unconditional mark).
    pub(crate) fn set_net(&mut self, prog: &CompiledProgram, id: u32, value: &Bits) {
        let width = prog.nets[id as usize].width;
        if width <= 64 {
            self.st.net_w[id as usize] = value.to_u64() & mask(width);
        } else {
            self.st.net_b[id as usize] = Val::from_bits(&value.resize(width as usize));
        }
        mark_net(&self.wp, &mut self.st, id);
    }

    /// Runs `initial` blocks if they have not run yet.
    pub(crate) fn run_initials(
        &mut self,
        prog: &CompiledProgram,
        env: &mut dyn SystemEnv,
    ) -> VlogResult<()> {
        if self.st.initials_run {
            return Ok(());
        }
        self.st.initials_run = true;
        for i in 0..self.wp.initials.len() {
            wexec(prog, &self.wp, &mut self.st, &self.wp.initials[i].ops, env)?;
        }
        Ok(())
    }

    /// Whether `initial` blocks have already executed.
    pub(crate) fn initials_run(&self) -> bool {
        self.st.initials_run
    }

    /// Marks `initial` blocks as executed without running them (state
    /// restore; see `CompiledSim::mark_initials_run`).
    pub(crate) fn mark_initials_run(&mut self) {
        self.st.initials_run = true;
    }

    /// Static three-address instruction count across all translated programs
    /// (see `CompiledSim::word_op_count`).
    pub(crate) fn static_op_count(&self) -> usize {
        let comb: usize = self
            .wp
            .comb
            .iter()
            .map(|c| match c {
                WComb::Prog(p) => p.ops.len(),
                _ => 1,
            })
            .sum();
        let always: usize = self
            .wp
            .always
            .iter()
            .map(|a| {
                a.body.ops.len()
                    + a.guards
                        .iter()
                        .map(|(_, g)| match g {
                            WGuard::NetW { .. } => 1,
                            WGuard::Prog(p) => p.ops.len(),
                        })
                        .sum::<usize>()
            })
            .sum();
        let nb: usize = self
            .wp
            .nb_sites
            .iter()
            .map(|s| match s {
                WNbSite::WordNet { .. } => 1,
                WNbSite::Prog(p) => p.ops.len(),
            })
            .sum();
        let initials: usize = self.wp.initials.iter().map(|p| p.ops.len()).sum();
        comb + always + nb + initials
    }

    /// Cumulative telemetry counters (see `CompiledSim::exec_counters`).
    pub(crate) fn exec_counters(&self) -> crate::exec::ExecCounters {
        crate::exec::ExecCounters {
            settle_iters: self.st.settle_iters,
            worklist_drains: self.st.worklist_drains,
            guard_epoch_skips: self.st.guard_epoch_skips,
            arena_regs: (self.st.net_w.len() + self.st.words.len() + self.st.bigs.len()) as u64,
        }
    }

    /// Settle-cap fault detail (see `CompiledSim::fault_detail`).
    pub(crate) fn fault_detail(&self) -> Option<&str> {
        self.st.fault.as_deref()
    }

    /// Re-evaluates dirty combinational cones, draining the level-bucketed
    /// worklist in ascending level order.
    fn propagate(&mut self, prog: &CompiledProgram, env: &mut dyn SystemEnv) -> VlogResult<()> {
        if self.st.pending_count == 0 {
            return Ok(());
        }
        for lvl in 0..self.wp.n_levels {
            while let Some(pos) = self.st.pending[lvl].pop() {
                self.st.pending_count -= 1;
                self.st.worklist_drains += 1;
                match &self.wp.comb[pos as usize] {
                    WComb::CopyNet { src, dst, mask } => {
                        let new = self.st.net_w[*src as usize] & mask;
                        if self.st.net_w[*dst as usize] != new {
                            self.st.net_w[*dst as usize] = new;
                            mark_net(&self.wp, &mut self.st, *dst);
                        }
                    }
                    WComb::SliceNet {
                        src,
                        hi,
                        lo,
                        dst,
                        mask,
                    } => {
                        let v = self.st.net_w[*src as usize];
                        let shifted = if *lo >= 64 { 0 } else { v >> lo };
                        let new = shifted & crate::ir::mask(hi - lo + 1) & mask;
                        if self.st.net_w[*dst as usize] != new {
                            self.st.net_w[*dst as usize] = new;
                            mark_net(&self.wp, &mut self.st, *dst);
                        }
                    }
                    WComb::Prog(p) => {
                        if let Err(e) = wexec(prog, &self.wp, &mut self.st, &p.ops, env) {
                            // Keep the worklist invariant (dirty nodes stay
                            // queued).
                            self.st.pending[lvl].push(pos);
                            self.st.pending_count += 1;
                            return Err(e);
                        }
                    }
                }
                // Clear after executing: the node's own store re-marks it (as
                // the target's driver), and that self-mark is satisfied.
                self.st.comb_dirty[pos as usize] = false;
            }
            if self.st.pending_count == 0 {
                break;
            }
        }
        Ok(())
    }

    /// Determines which always blocks fire, updating stored guard values —
    /// the same edge-detection algorithm as the stack tier and interpreter.
    fn collect_triggered(
        &mut self,
        prog: &CompiledProgram,
        triggered: &mut Vec<u32>,
    ) -> VlogResult<()> {
        triggered.clear();
        // No net or memory changed since the last pass: every guard would
        // re-read the same values, fire nothing, and store back the same
        // previous values — skip the whole scan.
        if self.st.write_epoch == self.st.guard_epoch {
            self.st.guard_epoch_skips += 1;
            return Ok(());
        }
        self.st.guard_epoch = self.st.write_epoch;
        for idx in 0..self.wp.always.len() {
            let ap = &self.wp.always[idx];
            if ap.guards.is_empty() {
                let mut fired = false;
                for (eidx, s) in ap.star.iter().enumerate() {
                    let prev = &self.st.guard_prev[idx][eidx];
                    let changed = match (s, prev) {
                        (SlotRef::Net(i), PrevVal::W(pv, pw)) => {
                            let w = prog.nets[*i as usize].width;
                            *pv != self.st.net_w[*i as usize] || *pw != w
                        }
                        (SlotRef::Net(i), PrevVal::B(p)) => *p != self.st.net_b[*i as usize],
                        (SlotRef::Mem(i), PrevVal::W(pv, pw)) => {
                            let m = &self.st.mems[*i as usize];
                            *pv != m.w[0] || *pw != m.width
                        }
                        (SlotRef::Mem(i), PrevVal::B(p)) => *p != self.st.mems[*i as usize].b[0],
                    };
                    if changed {
                        fired = true;
                        self.st.guard_prev[idx][eidx] = match s {
                            SlotRef::Net(i) => {
                                let w = prog.nets[*i as usize].width;
                                if w <= 64 {
                                    PrevVal::W(self.st.net_w[*i as usize], w)
                                } else {
                                    PrevVal::B(self.st.net_b[*i as usize].clone())
                                }
                            }
                            SlotRef::Mem(i) => {
                                let m = &self.st.mems[*i as usize];
                                if m.small {
                                    PrevVal::W(m.w[0], m.width)
                                } else {
                                    PrevVal::B(m.b[0].clone())
                                }
                            }
                        };
                    }
                }
                if fired {
                    triggered.push(idx as u32);
                }
                continue;
            }
            let mut fired = false;
            for eidx in 0..self.wp.always[idx].guards.len() {
                let current = match &self.wp.always[idx].guards[eidx].1 {
                    WGuard::NetW { net, w } => PrevVal::W(self.st.net_w[*net as usize], *w),
                    WGuard::Prog(p) => {
                        match wexec(prog, &self.wp, &mut self.st, &p.ops, &mut NoopEnv) {
                            Ok(()) => match p.result {
                                Some((Class::Word(w), r)) => {
                                    PrevVal::W(self.st.words[r as usize], w)
                                }
                                Some((Class::Big, r)) => {
                                    PrevVal::B(self.st.bigs[r as usize].clone())
                                }
                                None => PrevVal::W(0, 1),
                            },
                            Err(_) => PrevVal::W(0, 1),
                        }
                    }
                };
                let edge = self.wp.always[idx].guards[eidx].0;
                let prev = &mut self.st.guard_prev[idx][eidx];
                fired |= match edge {
                    Edge::Pos => !prev.bit0() && current.bit0(),
                    Edge::Neg => prev.bit0() && !current.bit0(),
                    Edge::Any => *prev != current,
                };
                *prev = current;
            }
            if fired {
                triggered.push(idx as u32);
            }
        }
        Ok(())
    }

    /// Runs evaluation events to a fixed point (the `evaluate` ABI request).
    pub(crate) fn evaluate(
        &mut self,
        prog: &CompiledProgram,
        env: &mut dyn SystemEnv,
    ) -> VlogResult<()> {
        self.run_initials(prog, env)?;
        let mut triggered = std::mem::take(&mut self.st.triggered_scratch);
        let result = (|| -> VlogResult<()> {
            let mut iterations = 0usize;
            loop {
                self.propagate(prog, env)?;
                self.collect_triggered(prog, &mut triggered)?;
                if triggered.is_empty() {
                    return Ok(());
                }
                for &idx in triggered.iter() {
                    if self.st.finished.is_some() {
                        return Ok(());
                    }
                    wexec(
                        prog,
                        &self.wp,
                        &mut self.st,
                        &self.wp.always[idx as usize].body.ops,
                        env,
                    )?;
                    self.propagate(prog, env)?;
                }
                iterations += 1;
                if iterations > MAX_PROPAGATION_ITERS {
                    return Err(VlogError::Elaborate(
                        "always blocks did not stabilise (oscillating design?)".into(),
                    ));
                }
            }
        })();
        self.st.triggered_scratch = triggered;
        result
    }

    /// Latches pending non-blocking assignments (the `update` ABI request).
    /// Returns `true` if any were pending.
    pub(crate) fn update(
        &mut self,
        prog: &CompiledProgram,
        env: &mut dyn SystemEnv,
    ) -> VlogResult<bool> {
        if self.st.nb.is_empty() {
            return Ok(false);
        }
        let mut pending = std::mem::take(&mut self.st.nb);
        for (site, value) in pending.drain(..) {
            match &self.wp.nb_sites[site as usize] {
                WNbSite::WordNet { net, mask } => {
                    // `value_reg` stays untouched: every reader latches its
                    // own value first (Fread, or a `Prog` site below).
                    let new = value.to_u64() & mask;
                    if self.st.net_w[*net as usize] != new {
                        self.st.net_w[*net as usize] = new;
                        mark_net(&self.wp, &mut self.st, *net);
                    }
                }
                WNbSite::Prog(p) => {
                    self.st.value_reg = value;
                    wexec(prog, &self.wp, &mut self.st, &p.ops, env)?;
                }
            }
        }
        // Hand the drained buffer's capacity back so steady-state ticks stay
        // allocation-free (the stack tier reallocates here every tick).
        if self.st.nb.is_empty() {
            std::mem::swap(&mut pending, &mut self.st.nb);
        }
        Ok(true)
    }

    /// Runs evaluate/update until no more updates are pending.
    pub(crate) fn settle(
        &mut self,
        prog: &CompiledProgram,
        env: &mut dyn SystemEnv,
    ) -> VlogResult<()> {
        for iter in 0..MAX_SETTLE_ITERS {
            self.evaluate(prog, env)?;
            self.st.settle_iters += 1;
            if iter + 1 == MAX_SETTLE_ITERS && !self.st.nb.is_empty() {
                self.st.fault =
                    Some(synergy_interp::fault_from_targets(self.st.nb.iter().map(
                        |(site, _)| prog.nb_site_names[*site as usize].as_str(),
                    )));
            }
            if !self.update(prog, env)? {
                return Ok(());
            }
        }
        Err(VlogError::Elaborate(
            "non-blocking updates did not converge (self-triggering design?)".into(),
        ))
    }

    /// Advances one full virtual clock cycle on a pre-resolved clock net.
    pub(crate) fn tick_net(
        &mut self,
        prog: &CompiledProgram,
        clock: u32,
        env: &mut dyn SystemEnv,
    ) -> VlogResult<()> {
        self.toggle_clock(prog, clock, 1);
        self.settle(prog, env)?;
        self.toggle_clock(prog, clock, 0);
        self.settle(prog, env)?;
        self.st.time += 1;
        Ok(())
    }

    /// Clock-edge delivery without building a `Bits`: the hot half of
    /// `set_net` for a 0/1 value.
    fn toggle_clock(&mut self, prog: &CompiledProgram, id: u32, value: u64) {
        let width = prog.nets[id as usize].width;
        if width <= 64 {
            self.st.net_w[id as usize] = value & mask(width);
        } else {
            self.st.net_b[id as usize] =
                Val::from_bits(&Bits::from_u64(1, value).resize(width as usize));
        }
        mark_net(&self.wp, &mut self.st, id);
    }

    /// Captures the architectural state in the interpreter's snapshot shape.
    pub(crate) fn save_state(&self, prog: &CompiledProgram) -> StateSnapshot {
        let mut values = BTreeMap::new();
        for (name, slot) in &prog.slots {
            let is_register = match slot {
                SlotRef::Net(i) => prog.nets[*i as usize].is_register,
                SlotRef::Mem(i) => prog.mems[*i as usize].is_register,
            };
            if is_register {
                values.insert(name.clone(), self.value_of(prog, *slot));
            }
        }
        StateSnapshot {
            values,
            time: self.st.time,
        }
    }

    /// Restores a previously captured snapshot and re-propagates.
    pub(crate) fn restore_state(&mut self, prog: &CompiledProgram, snapshot: &StateSnapshot) {
        for (name, value) in &snapshot.values {
            match (prog.slot(name), value) {
                (Some(SlotRef::Net(i)), Value::Scalar(b)) => {
                    let width = prog.nets[i as usize].width;
                    if width <= 64 {
                        self.st.net_w[i as usize] = b.to_u64() & mask(width);
                    } else {
                        self.st.net_b[i as usize] = Val::from_bits(b);
                    }
                }
                (Some(SlotRef::Mem(i)), Value::Memory(elems)) => {
                    let m = &mut self.st.mems[i as usize];
                    if m.small {
                        m.w = elems.iter().map(|b| b.to_u64() & m.msk).collect();
                    } else {
                        m.b = elems.iter().map(Val::from_bits).collect();
                    }
                }
                _ => {}
            }
        }
        self.st.time = snapshot.time;
        self.st.write_epoch = self.st.write_epoch.wrapping_add(1);
        for pos in 0..self.wp.comb.len() {
            mark_comb(&self.wp, &mut self.st, pos as u32);
        }
        let _ = self.propagate(prog, &mut NoopEnv);
        self.prime_guards(prog);
    }

    /// Re-seeds edge detection from the current (just-restored) values so the
    /// next evaluate sees no edges — the same restore semantics as the
    /// interpreter's and the stack tier's `prime_guards`.
    fn prime_guards(&mut self, prog: &CompiledProgram) {
        for idx in 0..self.wp.always.len() {
            let ap = &self.wp.always[idx];
            if ap.guards.is_empty() {
                let current: Vec<PrevVal> = ap
                    .star
                    .iter()
                    .map(|s| match s {
                        SlotRef::Net(i) => {
                            let w = prog.nets[*i as usize].width;
                            if w <= 64 {
                                PrevVal::W(self.st.net_w[*i as usize], w)
                            } else {
                                PrevVal::B(self.st.net_b[*i as usize].clone())
                            }
                        }
                        SlotRef::Mem(i) => {
                            let m = &self.st.mems[*i as usize];
                            if m.small {
                                PrevVal::W(m.w[0], m.width)
                            } else {
                                PrevVal::B(m.b[0].clone())
                            }
                        }
                    })
                    .collect();
                self.st.guard_prev[idx] = current;
                continue;
            }
            for eidx in 0..self.wp.always[idx].guards.len() {
                let current = match &self.wp.always[idx].guards[eidx].1 {
                    WGuard::NetW { net, w } => PrevVal::W(self.st.net_w[*net as usize], *w),
                    WGuard::Prog(p) => {
                        match wexec(prog, &self.wp, &mut self.st, &p.ops, &mut NoopEnv) {
                            Ok(()) => match p.result {
                                Some((Class::Word(w), r)) => {
                                    PrevVal::W(self.st.words[r as usize], w)
                                }
                                Some((Class::Big, r)) => {
                                    PrevVal::B(self.st.bigs[r as usize].clone())
                                }
                                None => PrevVal::W(0, 1),
                            },
                            Err(_) => PrevVal::W(0, 1),
                        }
                    }
                };
                self.st.guard_prev[idx][eidx] = current;
            }
        }
    }
}

fn class_of_width(w: u32) -> Class {
    if w <= 64 {
        Class::Word(w)
    } else {
        Class::Big
    }
}

#[inline]
fn mark_comb(wp: &WordProgs, st: &mut WState, pos: u32) {
    if !st.comb_dirty[pos as usize] {
        st.comb_dirty[pos as usize] = true;
        st.pending[wp.comb_bucket[pos as usize] as usize].push(pos);
        st.pending_count += 1;
    }
}

/// Marks the readers — and, for a continuously driven net, the driver, so
/// the assigned value wins again as in the interpreter's full re-evaluation
/// — of a changed net, and bumps the write epoch for edge detection.
fn mark_net(wp: &WordProgs, st: &mut WState, net: u32) {
    if wp.guard_nets[net as usize] {
        st.write_epoch = st.write_epoch.wrapping_add(1);
    }
    let lo = wp.net_dep_off[net as usize] as usize;
    let hi = wp.net_dep_off[net as usize + 1] as usize;
    for i in lo..hi {
        mark_comb(wp, st, wp.net_dep_flat[i]);
    }
}

fn mark_mem(wp: &WordProgs, st: &mut WState, mem: u32) {
    if wp.guard_mems[mem as usize] {
        st.write_epoch = st.write_epoch.wrapping_add(1);
    }
    let lo = wp.mem_dep_off[mem as usize] as usize;
    let hi = wp.mem_dep_off[mem as usize + 1] as usize;
    for i in lo..hi {
        mark_comb(wp, st, wp.mem_dep_flat[i]);
    }
}

/// Runs one register-allocated program to completion.
fn wexec(
    prog: &CompiledProgram,
    wp: &WordProgs,
    st: &mut WState,
    code: &[WOp],
    env: &mut dyn SystemEnv,
) -> VlogResult<()> {
    let mut pc = 0usize;
    while pc < code.len() {
        match &code[pc] {
            WOp::MovW { dst, src } => st.words[*dst as usize] = st.words[*src as usize],
            WOp::MovB { dst, src } => {
                if dst != src {
                    let v = st.bigs[*src as usize].clone();
                    st.bigs[*dst as usize] = v;
                }
            }
            WOp::ConstW { dst, imm } => st.words[*dst as usize] = *imm,
            WOp::ConstB { dst, pool } => {
                st.bigs[*dst as usize] = prog.consts[*pool as usize].clone()
            }
            WOp::WordToBig { dst, src, w } => {
                st.bigs[*dst as usize] = Val::Small(st.words[*src as usize], *w)
            }
            WOp::BigToWord { dst, src } => {
                st.words[*dst as usize] = st.bigs[*src as usize].to_u64()
            }
            WOp::TruthB { dst, src } => {
                st.words[*dst as usize] = st.bigs[*src as usize].to_bool() as u64
            }
            WOp::SelW { dst, c, a, b } => {
                let pick = if st.words[*c as usize] != 0 { a } else { b };
                st.words[*dst as usize] = st.words[*pick as usize];
            }
            WOp::SelB { dst, c, a, b } => {
                let pick = if st.words[*c as usize] != 0 { a } else { b };
                st.bigs[*dst as usize] = st.bigs[*pick as usize].clone();
            }
            WOp::LoadNetW { dst, net } => st.words[*dst as usize] = st.net_w[*net as usize],
            WOp::LoadNetB { dst, net } => {
                let v = st.net_b[*net as usize].clone();
                st.bigs[*dst as usize] = v;
            }
            WOp::StoreNetW { net, src, mask } => {
                let new = st.words[*src as usize] & mask;
                if st.net_w[*net as usize] != new {
                    st.net_w[*net as usize] = new;
                    mark_net(wp, st, *net);
                }
            }
            WOp::StoreNetImm { net, imm } => {
                if st.net_w[*net as usize] != *imm {
                    st.net_w[*net as usize] = *imm;
                    mark_net(wp, st, *net);
                }
            }
            WOp::StoreNetB { net, src } => {
                let width = prog.nets[*net as usize].width as usize;
                let new = st.bigs[*src as usize].resize(width);
                if st.net_b[*net as usize] != new {
                    st.net_b[*net as usize] = new;
                    mark_net(wp, st, *net);
                }
            }
            WOp::LoadMem0W { dst, mem } => st.words[*dst as usize] = st.mems[*mem as usize].w[0],
            WOp::LoadMem0B { dst, mem } => {
                let v = st.mems[*mem as usize].b[0].clone();
                st.bigs[*dst as usize] = v;
            }
            WOp::LoadMemW { dst, mem, idx } => {
                let i = st.words[*idx as usize] as usize;
                st.words[*dst as usize] = st.mems[*mem as usize].w.get(i).copied().unwrap_or(0);
            }
            WOp::LoadMemB { dst, mem, idx } => {
                let m = &st.mems[*mem as usize];
                let i = st.words[*idx as usize] as usize;
                let v =
                    m.b.get(i)
                        .cloned()
                        .unwrap_or_else(|| Val::zero(m.width as usize));
                st.bigs[*dst as usize] = v;
            }
            WOp::LoadMemConstW { dst, mem, elem } => {
                st.words[*dst as usize] = st.mems[*mem as usize]
                    .w
                    .get(*elem as usize)
                    .copied()
                    .unwrap_or(0);
            }
            WOp::LoadMemConstB { dst, mem, elem } => {
                let m = &st.mems[*mem as usize];
                let v =
                    m.b.get(*elem as usize)
                        .cloned()
                        .unwrap_or_else(|| Val::zero(m.width as usize));
                st.bigs[*dst as usize] = v;
            }
            WOp::StoreMemW {
                mem,
                idx,
                src,
                mask,
            } => {
                let i = st.words[*idx as usize] as usize;
                let new = st.words[*src as usize] & mask;
                let m = &mut st.mems[*mem as usize];
                let changed = i < m.w.len() && m.w[i] != new;
                if changed {
                    m.w[i] = new;
                    mark_mem(wp, st, *mem);
                }
            }
            WOp::StoreMemB { mem, idx, src } => {
                let i = st.words[*idx as usize] as usize;
                let width = st.mems[*mem as usize].width as usize;
                if i < st.mems[*mem as usize].b.len() {
                    let new = st.bigs[*src as usize].resize(width);
                    let m = &mut st.mems[*mem as usize];
                    let changed = m.b[i] != new;
                    if changed {
                        m.b[i] = new;
                        mark_mem(wp, st, *mem);
                    }
                }
            }
            WOp::StoreMemConstW {
                mem,
                elem,
                src,
                mask,
            } => {
                let i = *elem as usize;
                let new = st.words[*src as usize] & mask;
                let m = &mut st.mems[*mem as usize];
                let changed = i < m.w.len() && m.w[i] != new;
                if changed {
                    m.w[i] = new;
                    mark_mem(wp, st, *mem);
                }
            }
            WOp::StoreMemConstImm { mem, elem, imm } => {
                let i = *elem as usize;
                let m = &mut st.mems[*mem as usize];
                let changed = i < m.w.len() && m.w[i] != *imm;
                if changed {
                    m.w[i] = *imm;
                    mark_mem(wp, st, *mem);
                }
            }
            WOp::StoreMemConstB { mem, elem, src } => {
                let i = *elem as usize;
                let width = st.mems[*mem as usize].width as usize;
                if i < st.mems[*mem as usize].b.len() {
                    let new = st.bigs[*src as usize].resize(width);
                    let m = &mut st.mems[*mem as usize];
                    let changed = m.b[i] != new;
                    if changed {
                        m.b[i] = new;
                        mark_mem(wp, st, *mem);
                    }
                }
            }
            WOp::StoreBitW { net, idx, bit } => {
                let i = st.words[*idx as usize] as usize;
                let width = prog.nets[*net as usize].width as usize;
                if i < width {
                    let new_bit = st.words[*bit as usize] & 1 == 1;
                    let v = &mut st.net_w[*net as usize];
                    let old = (*v >> i) & 1 == 1;
                    if new_bit {
                        *v |= 1 << i;
                    } else {
                        *v &= !(1 << i);
                    }
                    let changed = old != new_bit;
                    if changed {
                        mark_net(wp, st, *net);
                    }
                }
            }
            WOp::StoreBitConstW { net, idx, bit } => {
                let i = *idx as usize;
                let width = prog.nets[*net as usize].width as usize;
                if i < width {
                    let new_bit = st.words[*bit as usize] & 1 == 1;
                    let v = &mut st.net_w[*net as usize];
                    let old = (*v >> i) & 1 == 1;
                    if new_bit {
                        *v |= 1 << i;
                    } else {
                        *v &= !(1 << i);
                    }
                    let changed = old != new_bit;
                    if changed {
                        mark_net(wp, st, *net);
                    }
                }
            }
            WOp::StoreBitB { net, idx, bit } => {
                let i = st.words[*idx as usize] as usize;
                let width = prog.nets[*net as usize].width as usize;
                if i < width {
                    let new_bit = st.words[*bit as usize] & 1 == 1;
                    let changed = match &mut st.net_b[*net as usize] {
                        Val::Small(v, _) => {
                            let old = (*v >> i) & 1 == 1;
                            if new_bit {
                                *v |= 1 << i;
                            } else {
                                *v &= !(1 << i);
                            }
                            old != new_bit
                        }
                        Val::Big(b) => {
                            let old = b.bit(i);
                            b.set_bit(i, new_bit);
                            old != new_bit
                        }
                    };
                    if changed {
                        mark_net(wp, st, *net);
                    }
                }
            }
            WOp::StoreSlice { net, hi, lo, src } => {
                let lo_v = st.words[*lo as usize] as usize;
                let hi_v = st.words[*hi as usize] as usize;
                let (hi_v, lo_v) = (hi_v.max(lo_v), hi_v.min(lo_v));
                let width = prog.nets[*net as usize].width;
                let value = &st.bigs[*src as usize];
                if width <= 64 {
                    // Pure word math mirroring Bits::set_slice: positions
                    // lo..=hi clamped to the net width take the value's low
                    // bits; out-of-range positions are dropped.
                    let old = st.net_w[*net as usize];
                    let new = if lo_v >= width as usize {
                        old
                    } else {
                        let top = hi_v.min(width as usize - 1);
                        let m = mask((top - lo_v + 1) as u32) << lo_v;
                        (old & !m) | ((value.to_u64() << lo_v) & m)
                    };
                    if new != old {
                        st.net_w[*net as usize] = new;
                        mark_net(wp, st, *net);
                    }
                } else {
                    let old = st.net_b[*net as usize].clone();
                    let mut b = old.to_bits();
                    b.set_slice(hi_v, lo_v, &value.to_bits());
                    let new = Val::from_bits(&b);
                    if new != old {
                        st.net_b[*net as usize] = new;
                        mark_net(wp, st, *net);
                    }
                }
            }
            WOp::LoadTime { dst } => st.words[*dst as usize] = st.time,
            WOp::LoadValueReg { dst } => st.bigs[*dst as usize] = st.value_reg.clone(),
            WOp::BinW {
                op,
                dst,
                a,
                b,
                aw,
                bw,
            } => {
                st.words[*dst as usize] = crate::ir::word_binary(
                    *op,
                    st.words[*a as usize],
                    *aw,
                    st.words[*b as usize],
                    *bw,
                )
                .0;
            }
            WOp::BinImmW {
                op,
                dst,
                a,
                aw,
                imm,
                bw,
            } => {
                st.words[*dst as usize] =
                    crate::ir::word_binary(*op, st.words[*a as usize], *aw, *imm, *bw).0;
            }
            WOp::ImmBinW {
                op,
                dst,
                imm,
                aw,
                b,
                bw,
            } => {
                st.words[*dst as usize] =
                    crate::ir::word_binary(*op, *imm, *aw, st.words[*b as usize], *bw).0;
            }
            WOp::NetBinImmW {
                op,
                dst,
                net,
                aw,
                imm,
                bw,
            } => {
                st.words[*dst as usize] =
                    crate::ir::word_binary(*op, st.net_w[*net as usize], *aw, *imm, *bw).0;
            }
            WOp::BinNetW {
                op,
                dst,
                a,
                aw,
                net,
                bw,
            } => {
                st.words[*dst as usize] = crate::ir::word_binary(
                    *op,
                    st.words[*a as usize],
                    *aw,
                    st.net_w[*net as usize],
                    *bw,
                )
                .0;
            }
            WOp::NetBinW {
                op,
                dst,
                net,
                aw,
                b,
                bw,
            } => {
                st.words[*dst as usize] = crate::ir::word_binary(
                    *op,
                    st.net_w[*net as usize],
                    *aw,
                    st.words[*b as usize],
                    *bw,
                )
                .0;
            }
            WOp::NetBinNetW {
                op,
                dst,
                neta,
                aw,
                netb,
                bw,
            } => {
                st.words[*dst as usize] = crate::ir::word_binary(
                    *op,
                    st.net_w[*neta as usize],
                    *aw,
                    st.net_w[*netb as usize],
                    *bw,
                )
                .0;
            }
            WOp::BinStoreNet {
                op,
                a,
                aw,
                b,
                bw,
                net,
                mask,
            } => {
                let v = crate::ir::word_binary(
                    *op,
                    st.words[*a as usize],
                    *aw,
                    st.words[*b as usize],
                    *bw,
                )
                .0 & mask;
                if st.net_w[*net as usize] != v {
                    st.net_w[*net as usize] = v;
                    mark_net(wp, st, *net);
                }
            }
            WOp::BinImmStoreNet {
                op,
                a,
                aw,
                imm,
                bw,
                net,
                mask,
            } => {
                let v = crate::ir::word_binary(*op, st.words[*a as usize], *aw, *imm, *bw).0 & mask;
                if st.net_w[*net as usize] != v {
                    st.net_w[*net as usize] = v;
                    mark_net(wp, st, *net);
                }
            }
            WOp::NetBinImmStoreNet {
                op,
                src,
                aw,
                imm,
                bw,
                net,
                mask,
            } => {
                let v =
                    crate::ir::word_binary(*op, st.net_w[*src as usize], *aw, *imm, *bw).0 & mask;
                if st.net_w[*net as usize] != v {
                    st.net_w[*net as usize] = v;
                    mark_net(wp, st, *net);
                }
            }
            WOp::NetBinNetStoreNet {
                op,
                neta,
                aw,
                netb,
                bw,
                net,
                mask,
            } => {
                let v = crate::ir::word_binary(
                    *op,
                    st.net_w[*neta as usize],
                    *aw,
                    st.net_w[*netb as usize],
                    *bw,
                )
                .0 & mask;
                if st.net_w[*net as usize] != v {
                    st.net_w[*net as usize] = v;
                    mark_net(wp, st, *net);
                }
            }
            WOp::UnW { op, dst, a, w } => {
                st.words[*dst as usize] = crate::ir::word_unary(*op, st.words[*a as usize], *w).0;
            }
            WOp::SliceW { dst, a, hi, lo } => {
                let v = st.words[*a as usize];
                let shifted = if *lo >= 64 { 0 } else { v >> lo };
                st.words[*dst as usize] = shifted & mask(hi - lo + 1);
            }
            WOp::NetSliceW { dst, net, hi, lo } => {
                let v = st.net_w[*net as usize];
                let shifted = if *lo >= 64 { 0 } else { v >> lo };
                st.words[*dst as usize] = shifted & mask(hi - lo + 1);
            }
            WOp::ConcatW { dst, a, b, bw } => {
                st.words[*dst as usize] = (st.words[*a as usize] << bw) | st.words[*b as usize];
            }
            WOp::ResizeW { dst, a, mask } => st.words[*dst as usize] = st.words[*a as usize] & mask,
            WOp::BitSelW { dst, a, aw, idx } => {
                let i = st.words[*idx as usize] as usize;
                let v = st.words[*a as usize];
                st.words[*dst as usize] = (i < *aw as usize && (v >> i) & 1 == 1) as u64;
            }
            WOp::BitSelNetW { dst, net, aw, idx } => {
                let i = st.words[*idx as usize] as usize;
                let v = st.net_w[*net as usize];
                st.words[*dst as usize] = (i < *aw as usize && (v >> i) & 1 == 1) as u64;
            }
            WOp::NetBitConstW { dst, net, aw, idx } => {
                let i = *idx as usize;
                let v = st.net_w[*net as usize];
                st.words[*dst as usize] = (i < *aw as usize && (v >> i) & 1 == 1) as u64;
            }
            WOp::BinB { op, dst, a, b } => {
                let r = crate::ir::binary(*op, &st.bigs[*a as usize], &st.bigs[*b as usize]);
                st.bigs[*dst as usize] = r;
            }
            WOp::UnB { op, dst, a } => {
                let r = crate::ir::unary(*op, &st.bigs[*a as usize]);
                st.bigs[*dst as usize] = r;
            }
            WOp::SliceConstB { dst, a, hi, lo } => {
                let r = crate::ir::slice(&st.bigs[*a as usize], *hi as usize, *lo as usize);
                st.bigs[*dst as usize] = r;
            }
            WOp::SliceDynB { dst, a, hi, lo } => {
                let hi_v = st.words[*hi as usize] as usize;
                let lo_v = st.words[*lo as usize] as usize;
                let r = crate::ir::slice(&st.bigs[*a as usize], hi_v.max(lo_v), hi_v.min(lo_v));
                st.bigs[*dst as usize] = r;
            }
            WOp::ConcatB { dst, a, b } => {
                let r = crate::ir::concat(&st.bigs[*a as usize], &st.bigs[*b as usize]);
                st.bigs[*dst as usize] = r;
            }
            WOp::ReplicateB { dst, n, v } => {
                let count = st.words[*n as usize] as usize;
                let r = Val::from_bits(&st.bigs[*v as usize].to_bits().replicate(count));
                st.bigs[*dst as usize] = r;
            }
            WOp::ResizeB { dst, a, w } => {
                let r = st.bigs[*a as usize].resize(*w as usize);
                st.bigs[*dst as usize] = r;
            }
            WOp::BitSelB { dst, a, idx } => {
                let i = st.words[*idx as usize] as usize;
                st.words[*dst as usize] = st.bigs[*a as usize].bit(i) as u64;
            }
            WOp::Jump(t) => {
                pc = *t as usize;
                continue;
            }
            WOp::JumpIfZeroW { c, t } => {
                if st.words[*c as usize] == 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JumpIfNonZeroW { c, t } => {
                if st.words[*c as usize] != 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JzBin {
                op,
                a,
                aw,
                b,
                bw,
                t,
            } => {
                let v = crate::ir::word_binary(
                    *op,
                    st.words[*a as usize],
                    *aw,
                    st.words[*b as usize],
                    *bw,
                )
                .0;
                if v == 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JnzBin {
                op,
                a,
                aw,
                b,
                bw,
                t,
            } => {
                let v = crate::ir::word_binary(
                    *op,
                    st.words[*a as usize],
                    *aw,
                    st.words[*b as usize],
                    *bw,
                )
                .0;
                if v != 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JzBinImm {
                op,
                a,
                aw,
                imm,
                bw,
                t,
            } => {
                let v = crate::ir::word_binary(*op, st.words[*a as usize], *aw, *imm, *bw).0;
                if v == 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JnzBinImm {
                op,
                a,
                aw,
                imm,
                bw,
                t,
            } => {
                let v = crate::ir::word_binary(*op, st.words[*a as usize], *aw, *imm, *bw).0;
                if v != 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JzNetBinImm {
                op,
                net,
                aw,
                imm,
                bw,
                t,
            } => {
                let v = crate::ir::word_binary(*op, st.net_w[*net as usize], *aw, *imm, *bw).0;
                if v == 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JnzNetBinImm {
                op,
                net,
                aw,
                imm,
                bw,
                t,
            } => {
                let v = crate::ir::word_binary(*op, st.net_w[*net as usize], *aw, *imm, *bw).0;
                if v != 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JzNetBit { net, aw, idx, t } => {
                let i = *idx as usize;
                let v = st.net_w[*net as usize];
                if !(i < *aw as usize && (v >> i) & 1 == 1) {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JnzNetBit { net, aw, idx, t } => {
                let i = *idx as usize;
                let v = st.net_w[*net as usize];
                if i < *aw as usize && (v >> i) & 1 == 1 {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JzNet { net, t } => {
                if st.net_w[*net as usize] == 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JnzNet { net, t } => {
                if st.net_w[*net as usize] != 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::JumpIfNotFinished(t) => {
                if st.finished.is_none() {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::CheckFinished(t) => {
                if st.finished.is_some() {
                    pc = *t as usize;
                    continue;
                }
            }
            WOp::LoopInit(slot) => st.loops[*slot as usize] = 0,
            WOp::LoopCheck(slot) => {
                let c = &mut st.loops[*slot as usize];
                *c += 1;
                if *c > MAX_LOOP_ITERS {
                    return Err(VlogError::Elaborate(
                        "for loop exceeded iteration cap".into(),
                    ));
                }
            }
            WOp::RepeatInit { src, slot } => {
                st.loops[*slot as usize] = st.words[*src as usize].min(MAX_LOOP_ITERS);
            }
            WOp::RepeatTest { slot, end } => {
                let c = &mut st.loops[*slot as usize];
                if *c == 0 {
                    pc = *end as usize;
                    continue;
                }
                *c -= 1;
            }
            WOp::NbW { site, src, w } => {
                st.nb.push((*site, Val::Small(st.words[*src as usize], *w)));
            }
            WOp::NbImm { site, imm, w } => {
                st.nb.push((*site, Val::Small(*imm, *w)));
            }
            WOp::NbNet { site, net, w } => {
                st.nb.push((*site, Val::Small(st.net_w[*net as usize], *w)));
            }
            WOp::NbNetBinImm {
                site,
                op,
                net,
                aw,
                imm,
                w,
                bw,
            } => {
                let v = crate::ir::word_binary(*op, st.net_w[*net as usize], *aw, *imm, *bw).0;
                st.nb.push((*site, Val::Small(v, *w)));
            }
            WOp::NbB { site, src } => {
                let v = st.bigs[*src as usize].clone();
                st.nb.push((*site, v));
            }
            WOp::Fopen { dst, s } => {
                st.words[*dst as usize] = env.fopen(&prog.strings[*s as usize]) as u64;
            }
            WOp::Feof { dst, fd } => {
                st.words[*dst as usize] = env.feof(st.words[*fd as usize] as u32) as u64;
            }
            WOp::FeofNet { dst, net } => {
                st.words[*dst as usize] = env.feof(st.net_w[*net as usize] as u32) as u64;
            }
            WOp::Random { dst } => st.words[*dst as usize] = env.random() as u64,
            WOp::Fread { fd, width, skip } => {
                let fd = st.words[*fd as usize] as u32;
                match env.fread(fd, *width as usize) {
                    Some(v) => st.value_reg = Val::from_bits(&v),
                    None => {
                        pc = *skip as usize;
                        continue;
                    }
                }
            }
            WOp::FreadNet { net, width, skip } => {
                let fd = st.net_w[*net as usize] as u32;
                match env.fread(fd, *width as usize) {
                    Some(v) => st.value_reg = Val::from_bits(&v),
                    None => {
                        pc = *skip as usize;
                        continue;
                    }
                }
            }
            WOp::Fclose { fd } => env.fclose(st.words[*fd as usize] as u32),
            WOp::PrintStr(s) => st.print_buf.push_str(&prog.strings[*s as usize]),
            WOp::PrintValW { src } => {
                use std::fmt::Write;
                let v = st.words[*src as usize];
                let _ = write!(st.print_buf, "{}", v);
            }
            WOp::PrintValB { src } => {
                let s = st.bigs[*src as usize].to_dec_string();
                st.print_buf.push_str(&s);
            }
            WOp::PrintFlush { newline } => {
                if *newline {
                    st.print_buf.push('\n');
                }
                let text = std::mem::take(&mut st.print_buf);
                env.print(&text);
            }
            WOp::Finish { src } => {
                let code_val = st.words[*src as usize] as u32;
                st.finished = Some(code_val);
                st.effects
                    .push(synergy_interp::TaskEffect::Finish(code_val));
            }
            WOp::Effect(i) => st.effects.push(prog.effects[*i as usize].clone()),
        }
        pc += 1;
    }
    Ok(())
}

// Owned dense state only — the machine crosses worker threads inside its
// `Runtime`, like the stack tier.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<WordMachine>();
};
