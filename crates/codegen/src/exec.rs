//! The executors for [`CompiledProgram`]s.
//!
//! [`CompiledSim`] reproduces the reference interpreter's scheduling semantics
//! exactly — evaluate/update until fixpoint, edge-detected guards, per-tick
//! non-blocking latching — but over the compiled IR, through one of two
//! tiers:
//!
//! * the **stack tier** (this module): a bytecode interpreter over an operand
//!   stack of [`Val`]s, covering the full compiled envelope;
//! * the **regalloc tier** ([`crate::regalloc`] + [`crate::wordexec`]): the
//!   same programs lowered further into register-allocated, width-specialized
//!   three-address code over a flat `u64` arena — the default, roughly an
//!   order of magnitude faster on word-sized designs.
//!
//! Both tiers drive combinational re-evaluation with a level-bucketed dirty
//! worklist (only the affected cone recomputes, without scanning the node
//! array) and produce the same [`StateSnapshot`] type the interpreter uses,
//! so snapshots migrate losslessly between the interpreter, either tier, and
//! the hardware engine.

use crate::ir::{binary, concat, slice, unary, CompiledProgram, Op, SlotRef, Val, MAX_LOOP_ITERS};
use crate::wordexec::WordMachine;
use crate::Tier;
use std::collections::BTreeMap;
use synergy_interp::{StateSnapshot, SystemEnv, TaskEffect, Value};
use synergy_vlog::ast::Edge;
use synergy_vlog::{Bits, VlogError, VlogResult};

/// Upper bound on evaluate-loop iterations, mirroring the interpreter.
pub(crate) const MAX_PROPAGATION_ITERS: usize = 10_000;

/// Upper bound on evaluate/update rounds per settle, mirroring the
/// interpreter's cap (same limit, same error text) so self-triggering
/// designs fail identically on both engines.
pub(crate) const MAX_SETTLE_ITERS: usize = 1_000;

/// A no-op environment for guard evaluation and post-restore propagation,
/// mirroring the interpreter's `NullEnv`.
pub(crate) struct NoopEnv;

impl SystemEnv for NoopEnv {
    fn print(&mut self, _text: &str) {}
    fn fopen(&mut self, _path: &str) -> u32 {
        0
    }
    fn fread(&mut self, _fd: u32, _width: usize) -> Option<Bits> {
        None
    }
    fn feof(&mut self, _fd: u32) -> bool {
        true
    }
    fn fclose(&mut self, _fd: u32) {}
    fn random(&mut self) -> u32 {
        0
    }
}

/// One memory's contents.
#[derive(Debug, Clone)]
struct MemData {
    width: u32,
    elems: Vec<Val>,
}

/// Mutable execution state of the stack tier, split from the immutable
/// program so bytecode can borrow code slices while mutating values.
#[derive(Debug, Clone)]
struct State {
    nets: Vec<Val>,
    mems: Vec<MemData>,
    temps: Vec<Val>,
    loops: Vec<u64>,
    stack: Vec<Val>,
    value_reg: Val,
    print_buf: String,
    nb: Vec<(u32, Val)>,
    comb_dirty: Vec<bool>,
    /// Level-bucketed worklist of dirty comb positions (bucket = level - 1).
    comb_pending: Vec<Vec<u32>>,
    /// Bucket index per comb position.
    comb_bucket: Vec<u32>,
    pending_count: usize,
    guard_prev: Vec<Vec<Val>>,
    /// Reused between calls so edge detection allocates nothing per cycle.
    triggered_scratch: Vec<u32>,
    effects: Vec<TaskEffect>,
    time: u64,
    finished: Option<u32>,
    initials_run: bool,
    /// Telemetry counters (never part of `save_state`): cumulative settle
    /// evaluate/update rounds and worklist nodes drained by `propagate`.
    settle_iters: u64,
    worklist_drains: u64,
    /// Postmortem detail captured when the settle cap fires (the error
    /// message itself stays engine-identical).
    fault: Option<String>,
}

/// The execution backend behind [`CompiledSim`].
#[derive(Clone)]
enum Backend {
    Stack(Box<State>),
    Word(Box<WordMachine>),
}

/// Cumulative executor-internal telemetry counters, tier-agnostic.
///
/// These count *work performed* (which is deterministic for a given program
/// and input), not host time. The runtime diffs them around each `run_ticks`
/// call and feeds the deltas into the deterministic metrics namespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Evaluate/update rounds executed by `settle`.
    pub settle_iters: u64,
    /// Combinational worklist nodes drained by `propagate`.
    pub worklist_drains: u64,
    /// Guard scans skipped by the regalloc tier's write-epoch check (always
    /// 0 on the stack tier).
    pub guard_epoch_skips: u64,
    /// Register-arena footprint of the regalloc tier (word + wide + net
    /// slots; 0 on the stack tier).
    pub arena_regs: u64,
}

/// A compiled design plus its execution state: the compiled software engine.
#[derive(Clone)]
pub struct CompiledSim {
    prog: CompiledProgram,
    backend: Backend,
}

impl std::fmt::Debug for CompiledSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledSim")
            .field("program", &self.prog.name)
            .field("tier", &self.tier())
            .finish()
    }
}

fn store_net(prog: &CompiledProgram, st: &mut State, net: u32, value: Val) {
    let width = prog.nets[net as usize].width as usize;
    let new = value.resize(width);
    let slot = &mut st.nets[net as usize];
    if *slot != new {
        *slot = new;
        mark_net(prog, st, net);
    }
}

#[inline]
fn mark_comb(st: &mut State, pos: u32) {
    if !st.comb_dirty[pos as usize] {
        st.comb_dirty[pos as usize] = true;
        st.comb_pending[st.comb_bucket[pos as usize] as usize].push(pos);
        st.pending_count += 1;
    }
}

fn mark_net(prog: &CompiledProgram, st: &mut State, net: u32) {
    for &pos in &prog.net_deps[net as usize] {
        mark_comb(st, pos);
    }
    // A write to a continuously driven net must also re-wake its driver so
    // the assigned value wins again, exactly as the interpreter's full
    // re-evaluation loop makes it win.
    if let Some(pos) = prog.net_driver[net as usize] {
        mark_comb(st, pos);
    }
}

fn mark_mem(prog: &CompiledProgram, st: &mut State, mem: u32) {
    for &pos in &prog.mem_deps[mem as usize] {
        mark_comb(st, pos);
    }
    // A write to a continuously driven memory re-wakes its element drivers,
    // exactly as `mark_net` re-wakes a driven net's driver.
    if let Some(pos) = prog.mem_driver[mem as usize] {
        mark_comb(st, pos);
    }
}

/// Runs one bytecode program to completion.
fn exec(
    prog: &CompiledProgram,
    st: &mut State,
    code: &[Op],
    env: &mut dyn SystemEnv,
) -> VlogResult<()> {
    let mut pc = 0usize;
    while pc < code.len() {
        match &code[pc] {
            Op::PushConst(i) => st.stack.push(prog.consts[*i as usize].clone()),
            Op::PushNet(i) => st.stack.push(st.nets[*i as usize].clone()),
            Op::PushMemElem0(i) => st.stack.push(st.mems[*i as usize].elems[0].clone()),
            Op::PushTime => st.stack.push(Val::Small(st.time, 64)),
            Op::PushValueReg => st.stack.push(st.value_reg.clone()),
            Op::MemRead(i) => {
                let idx = st.stack.pop().unwrap().to_u64() as usize;
                let mem = &st.mems[*i as usize];
                let v = mem
                    .elems
                    .get(idx)
                    .cloned()
                    .unwrap_or_else(|| Val::zero(mem.width as usize));
                st.stack.push(v);
            }
            Op::MemReadConst { mem, elem } => {
                let mem = &st.mems[*mem as usize];
                let v = mem
                    .elems
                    .get(*elem as usize)
                    .cloned()
                    .unwrap_or_else(|| Val::zero(mem.width as usize));
                st.stack.push(v);
            }
            Op::BitSelect => {
                let base = st.stack.pop().unwrap();
                let idx = st.stack.pop().unwrap().to_u64() as usize;
                st.stack.push(Val::Small(base.bit(idx) as u64, 1));
            }
            Op::SliceConst { hi, lo } => {
                let base = st.stack.pop().unwrap();
                st.stack.push(slice(&base, *hi as usize, *lo as usize));
            }
            Op::SliceDyn => {
                let lo = st.stack.pop().unwrap().to_u64() as usize;
                let hi = st.stack.pop().unwrap().to_u64() as usize;
                let base = st.stack.pop().unwrap();
                st.stack.push(slice(&base, hi.max(lo), hi.min(lo)));
            }
            Op::Unary(op) => {
                let a = st.stack.pop().unwrap();
                st.stack.push(unary(*op, &a));
            }
            Op::Binary(op) => {
                let b = st.stack.pop().unwrap();
                let a = st.stack.pop().unwrap();
                st.stack.push(binary(*op, &a, &b));
            }
            Op::Concat2 => {
                let b = st.stack.pop().unwrap();
                let a = st.stack.pop().unwrap();
                st.stack.push(concat(&a, &b));
            }
            Op::ReplicateDyn => {
                let v = st.stack.pop().unwrap();
                let n = st.stack.pop().unwrap().to_u64() as usize;
                st.stack.push(Val::from_bits(&v.to_bits().replicate(n)));
            }
            Op::Resize(w) => {
                let v = st.stack.pop().unwrap();
                st.stack.push(v.resize(*w as usize));
            }
            Op::Select => {
                let b = st.stack.pop().unwrap();
                let a = st.stack.pop().unwrap();
                let c = st.stack.pop().unwrap();
                st.stack.push(if c.to_bool() { a } else { b });
            }
            Op::Jump(t) => {
                pc = *t as usize;
                continue;
            }
            Op::JumpIfZero(t) => {
                if !st.stack.pop().unwrap().to_bool() {
                    pc = *t as usize;
                    continue;
                }
            }
            Op::JumpIfNonZero(t) => {
                if st.stack.pop().unwrap().to_bool() {
                    pc = *t as usize;
                    continue;
                }
            }
            Op::JumpIfNotFinished(t) => {
                if st.finished.is_none() {
                    pc = *t as usize;
                    continue;
                }
            }
            Op::CheckFinished(t) => {
                if st.finished.is_some() {
                    pc = *t as usize;
                    continue;
                }
            }
            Op::StoreTemp(i) => st.temps[*i as usize] = st.stack.pop().unwrap(),
            Op::PushTemp(i) => st.stack.push(st.temps[*i as usize].clone()),
            Op::Pop => {
                st.stack.pop();
            }
            Op::StoreNet(i) => {
                let v = st.stack.pop().unwrap();
                store_net(prog, st, *i, v);
            }
            Op::StoreMem(i) => {
                let idx = st.stack.pop().unwrap().to_u64() as usize;
                let value = st.stack.pop().unwrap();
                let mem = &mut st.mems[*i as usize];
                if idx < mem.elems.len() {
                    let new = value.resize(mem.width as usize);
                    if mem.elems[idx] != new {
                        mem.elems[idx] = new;
                        mark_mem(prog, st, *i);
                    }
                }
            }
            Op::StoreMemConst { mem, elem } => {
                let value = st.stack.pop().unwrap();
                let idx = *elem as usize;
                let m = &mut st.mems[*mem as usize];
                if idx < m.elems.len() {
                    let new = value.resize(m.width as usize);
                    if m.elems[idx] != new {
                        m.elems[idx] = new;
                        mark_mem(prog, st, *mem);
                    }
                }
            }
            Op::StoreBit(i) => {
                let idx = st.stack.pop().unwrap().to_u64() as usize;
                let value = st.stack.pop().unwrap();
                let width = prog.nets[*i as usize].width as usize;
                if idx < width {
                    let new_bit = value.bit(0);
                    let slot = &mut st.nets[*i as usize];
                    let changed = match slot {
                        Val::Small(v, _) => {
                            let old = (*v >> idx) & 1 == 1;
                            if new_bit {
                                *v |= 1 << idx;
                            } else {
                                *v &= !(1 << idx);
                            }
                            old != new_bit
                        }
                        Val::Big(b) => {
                            let old = b.bit(idx);
                            b.set_bit(idx, new_bit);
                            old != new_bit
                        }
                    };
                    if changed {
                        mark_net(prog, st, *i);
                    }
                }
            }
            Op::StoreSliceDyn(i) => {
                let lo = st.stack.pop().unwrap().to_u64() as usize;
                let hi = st.stack.pop().unwrap().to_u64() as usize;
                let value = st.stack.pop().unwrap();
                let (hi, lo) = (hi.max(lo), hi.min(lo));
                let slot = &mut st.nets[*i as usize];
                let old = slot.clone();
                let mut b = slot.to_bits();
                b.set_slice(hi, lo, &value.to_bits());
                let new = Val::from_bits(&b);
                if new != old {
                    *slot = new;
                    mark_net(prog, st, *i);
                }
            }
            Op::NbSchedule(site) => {
                let v = st.stack.pop().unwrap();
                st.nb.push((*site, v));
            }
            Op::LoopInit(slot) => st.loops[*slot as usize] = 0,
            Op::LoopCheck(slot) => {
                let c = &mut st.loops[*slot as usize];
                *c += 1;
                if *c > MAX_LOOP_ITERS {
                    return Err(VlogError::Elaborate(
                        "for loop exceeded iteration cap".into(),
                    ));
                }
            }
            Op::RepeatInit(slot) => {
                let n = st.stack.pop().unwrap().to_u64();
                st.loops[*slot as usize] = n.min(MAX_LOOP_ITERS);
            }
            Op::RepeatTest { slot, end } => {
                let c = &mut st.loops[*slot as usize];
                if *c == 0 {
                    pc = *end as usize;
                    continue;
                }
                *c -= 1;
            }
            Op::Fopen(s) => {
                let fd = env.fopen(&prog.strings[*s as usize]);
                st.stack.push(Val::Small(fd as u64, 32));
            }
            Op::Feof => {
                let fd = st.stack.pop().unwrap().to_u64() as u32;
                st.stack.push(Val::Small(env.feof(fd) as u64, 1));
            }
            Op::Random => st.stack.push(Val::Small(env.random() as u64, 32)),
            Op::Fread { width, skip } => {
                let fd = st.stack.pop().unwrap().to_u64() as u32;
                match env.fread(fd, *width as usize) {
                    Some(v) => st.value_reg = Val::from_bits(&v),
                    None => {
                        pc = *skip as usize;
                        continue;
                    }
                }
            }
            Op::Fclose => {
                let fd = st.stack.pop().unwrap().to_u64() as u32;
                env.fclose(fd);
            }
            Op::PrintStr(s) => st.print_buf.push_str(&prog.strings[*s as usize]),
            Op::PrintVal => {
                let v = st.stack.pop().unwrap();
                st.print_buf.push_str(&v.to_dec_string());
            }
            Op::PrintFlush { newline } => {
                if *newline {
                    st.print_buf.push('\n');
                }
                let text = std::mem::take(&mut st.print_buf);
                env.print(&text);
            }
            Op::Finish => {
                let code_val = st.stack.pop().unwrap().to_u64() as u32;
                st.finished = Some(code_val);
                st.effects.push(TaskEffect::Finish(code_val));
            }
            Op::Effect(i) => st.effects.push(prog.effects[*i as usize].clone()),
        }
        pc += 1;
    }
    Ok(())
}

impl State {
    fn new(prog: &CompiledProgram) -> State {
        let nets = prog
            .nets
            .iter()
            .map(|n| match &n.init {
                Some(b) => Val::from_bits(b),
                None => Val::zero(n.width as usize),
            })
            .collect();
        let mems = prog
            .mems
            .iter()
            .map(|m| MemData {
                width: m.width,
                elems: vec![Val::zero(m.width as usize); m.depth as usize],
            })
            .collect();
        let comb_bucket: Vec<u32> = prog
            .comb
            .iter()
            .map(|n| n.level.saturating_sub(1))
            .collect();
        let n_levels = comb_bucket
            .iter()
            .map(|&b| b as usize + 1)
            .max()
            .unwrap_or(0);
        let mut st = State {
            nets,
            mems,
            temps: vec![Val::zero(1); prog.n_temps as usize],
            loops: vec![0; prog.n_loops as usize],
            stack: Vec::with_capacity(16),
            value_reg: Val::zero(1),
            print_buf: String::new(),
            nb: Vec::new(),
            comb_dirty: vec![false; prog.comb.len()],
            comb_pending: vec![Vec::new(); n_levels],
            comb_bucket,
            pending_count: 0,
            guard_prev: prog
                .always
                .iter()
                .map(|a| vec![Val::zero(1); a.guards.len()])
                .collect(),
            triggered_scratch: Vec::new(),
            effects: Vec::new(),
            time: 0,
            finished: None,
            initials_run: false,
            settle_iters: 0,
            worklist_drains: 0,
            fault: None,
        };
        for pos in 0..prog.comb.len() {
            mark_comb(&mut st, pos as u32);
        }
        st
    }

    /// Writes a scalar net by id (the fast path for clock toggling).
    fn set_net(&mut self, prog: &CompiledProgram, id: u32, value: &Bits) {
        let width = prog.nets[id as usize].width as usize;
        let new = Val::from_bits(value).resize(width);
        self.nets[id as usize] = new;
        mark_net(prog, self, id);
    }

    /// Re-evaluates dirty combinational cones, draining the level-bucketed
    /// worklist in ascending level order. A node's stores only mark strictly
    /// deeper levels (or itself, absorbed by the post-execution clear), so
    /// one sweep reaches the fixpoint touching exactly the dirty cone.
    fn propagate(&mut self, prog: &CompiledProgram, env: &mut dyn SystemEnv) -> VlogResult<()> {
        if self.pending_count == 0 {
            return Ok(());
        }
        for lvl in 0..self.comb_pending.len() {
            while let Some(pos) = self.comb_pending[lvl].pop() {
                self.pending_count -= 1;
                self.worklist_drains += 1;
                if let Err(e) = exec(prog, self, &prog.comb[pos as usize].code, env) {
                    // Keep the worklist invariant (dirty nodes stay queued).
                    self.comb_pending[lvl].push(pos);
                    self.pending_count += 1;
                    return Err(e);
                }
                // Clear after executing: the node's own store re-marks it (as
                // the target's driver), and that self-mark is satisfied.
                self.comb_dirty[pos as usize] = false;
            }
            if self.pending_count == 0 {
                break;
            }
        }
        Ok(())
    }

    /// Determines which always blocks fire, updating stored guard values —
    /// the same edge-detection algorithm as the interpreter. Fills the
    /// caller's scratch buffer instead of allocating.
    fn collect_triggered(&mut self, prog: &CompiledProgram, triggered: &mut Vec<u32>) {
        triggered.clear();
        for idx in 0..prog.always.len() {
            let ap = &prog.always[idx];
            if ap.guards.is_empty() {
                if self.guard_prev[idx].len() != ap.star.len() {
                    self.guard_prev[idx] = vec![Val::zero(1); ap.star.len()];
                }
                let mut fired = false;
                for (eidx, s) in ap.star.iter().enumerate() {
                    let current = match s {
                        SlotRef::Net(i) => &self.nets[*i as usize],
                        SlotRef::Mem(i) => &self.mems[*i as usize].elems[0],
                    };
                    if self.guard_prev[idx][eidx] != *current {
                        fired = true;
                        self.guard_prev[idx][eidx] = current.clone();
                    }
                }
                if fired {
                    triggered.push(idx as u32);
                }
                continue;
            }
            let mut fired = false;
            for (eidx, (edge, code)) in ap.guards.iter().enumerate() {
                let mut noop = NoopEnv;
                let current = match exec(prog, self, code, &mut noop) {
                    Ok(()) => self.stack.pop().unwrap_or_else(|| Val::zero(1)),
                    Err(_) => {
                        self.stack.clear();
                        Val::zero(1)
                    }
                };
                let prev = &mut self.guard_prev[idx][eidx];
                fired |= match edge {
                    Edge::Pos => !prev.bit(0) && current.bit(0),
                    Edge::Neg => prev.bit(0) && !current.bit(0),
                    Edge::Any => *prev != current,
                };
                *prev = current;
            }
            if fired {
                triggered.push(idx as u32);
            }
        }
    }

    /// Runs `initial` blocks if they have not run yet.
    fn run_initials(&mut self, prog: &CompiledProgram, env: &mut dyn SystemEnv) -> VlogResult<()> {
        if self.initials_run {
            return Ok(());
        }
        self.initials_run = true;
        for i in 0..prog.initials.len() {
            exec(prog, self, &prog.initials[i], env)?;
        }
        Ok(())
    }

    /// Runs evaluation events to a fixed point (the `evaluate` ABI request).
    fn evaluate(&mut self, prog: &CompiledProgram, env: &mut dyn SystemEnv) -> VlogResult<()> {
        self.run_initials(prog, env)?;
        let mut triggered = std::mem::take(&mut self.triggered_scratch);
        let result = (|| {
            let mut iterations = 0usize;
            loop {
                self.propagate(prog, env)?;
                self.collect_triggered(prog, &mut triggered);
                if triggered.is_empty() {
                    return Ok(());
                }
                for &idx in triggered.iter() {
                    if self.finished.is_some() {
                        return Ok(());
                    }
                    exec(prog, self, &prog.always[idx as usize].body, env)?;
                    self.propagate(prog, env)?;
                }
                iterations += 1;
                if iterations > MAX_PROPAGATION_ITERS {
                    return Err(VlogError::Elaborate(
                        "always blocks did not stabilise (oscillating design?)".into(),
                    ));
                }
            }
        })();
        self.triggered_scratch = triggered;
        result
    }

    /// Latches pending non-blocking assignments (the `update` ABI request).
    fn update(&mut self, prog: &CompiledProgram, env: &mut dyn SystemEnv) -> VlogResult<bool> {
        if self.nb.is_empty() {
            return Ok(false);
        }
        let pending = std::mem::take(&mut self.nb);
        for (site, value) in pending {
            self.value_reg = value;
            exec(prog, self, &prog.nb_sites[site as usize], env)?;
        }
        Ok(true)
    }

    /// Runs evaluate/update until no more updates are pending.
    fn settle(&mut self, prog: &CompiledProgram, env: &mut dyn SystemEnv) -> VlogResult<()> {
        for iter in 0..MAX_SETTLE_ITERS {
            self.evaluate(prog, env)?;
            self.settle_iters += 1;
            if iter + 1 == MAX_SETTLE_ITERS && !self.nb.is_empty() {
                // About to hit the cap: capture the still-pending targets for
                // the postmortem before the final update drains the queue.
                self.fault =
                    Some(synergy_interp::fault_from_targets(self.nb.iter().map(
                        |(site, _)| prog.nb_site_names[*site as usize].as_str(),
                    )));
            }
            if !self.update(prog, env)? {
                return Ok(());
            }
        }
        Err(VlogError::Elaborate(
            "non-blocking updates did not converge (self-triggering design?)".into(),
        ))
    }

    fn tick_net(
        &mut self,
        prog: &CompiledProgram,
        clock: u32,
        env: &mut dyn SystemEnv,
    ) -> VlogResult<()> {
        self.set_net(prog, clock, &Bits::from_u64(1, 1));
        self.settle(prog, env)?;
        self.set_net(prog, clock, &Bits::from_u64(1, 0));
        self.settle(prog, env)?;
        self.time += 1;
        Ok(())
    }

    fn save_state(&self, prog: &CompiledProgram) -> StateSnapshot {
        let mut values = BTreeMap::new();
        for (name, slot) in &prog.slots {
            match slot {
                SlotRef::Net(i) => {
                    let decl = &prog.nets[*i as usize];
                    if decl.is_register {
                        values.insert(
                            name.clone(),
                            Value::Scalar(self.nets[*i as usize].to_bits()),
                        );
                    }
                }
                SlotRef::Mem(i) => {
                    let decl = &prog.mems[*i as usize];
                    if decl.is_register {
                        values.insert(
                            name.clone(),
                            Value::Memory(
                                self.mems[*i as usize]
                                    .elems
                                    .iter()
                                    .map(Val::to_bits)
                                    .collect(),
                            ),
                        );
                    }
                }
            }
        }
        StateSnapshot {
            values,
            time: self.time,
        }
    }

    fn restore_state(&mut self, prog: &CompiledProgram, snapshot: &StateSnapshot) {
        for (name, value) in &snapshot.values {
            match (prog.slot(name), value) {
                (Some(SlotRef::Net(i)), Value::Scalar(b)) => {
                    self.nets[i as usize] = Val::from_bits(b);
                }
                (Some(SlotRef::Mem(i)), Value::Memory(elems)) => {
                    self.mems[i as usize].elems = elems.iter().map(Val::from_bits).collect();
                }
                _ => {}
            }
        }
        self.time = snapshot.time;
        for pos in 0..prog.comb.len() {
            mark_comb(self, pos as u32);
        }
        let mut noop = NoopEnv;
        let _ = self.propagate(prog, &mut noop);
        self.prime_guards(prog);
    }

    /// Re-seeds edge detection from the current (just-restored) values so the
    /// next evaluate sees no edges — the same restore semantics as the
    /// interpreter's `prime_guards` and the word tier's.
    fn prime_guards(&mut self, prog: &CompiledProgram) {
        for idx in 0..prog.always.len() {
            let ap = &prog.always[idx];
            if ap.guards.is_empty() {
                let current: Vec<Val> = ap
                    .star
                    .iter()
                    .map(|s| match s {
                        SlotRef::Net(i) => self.nets[*i as usize].clone(),
                        SlotRef::Mem(i) => self.mems[*i as usize].elems[0].clone(),
                    })
                    .collect();
                self.guard_prev[idx] = current;
                continue;
            }
            for eidx in 0..prog.always[idx].guards.len() {
                let code = &prog.always[idx].guards[eidx].1;
                let mut noop = NoopEnv;
                let current = match exec(prog, self, code, &mut noop) {
                    Ok(()) => self.stack.pop().unwrap_or_else(|| Val::zero(1)),
                    Err(_) => {
                        self.stack.clear();
                        Val::zero(1)
                    }
                };
                self.guard_prev[idx][eidx] = current;
            }
        }
    }
}

impl CompiledSim {
    /// Instantiates execution state for a compiled program, with registers at
    /// their declared reset values.
    ///
    /// The tier defaults to [`Tier::RegAlloc`] (overridable with the
    /// `SYNERGY_COMPILED_TIER=stack` environment escape hatch); programs the
    /// regalloc translation cannot handle silently fall back to the stack
    /// tier, exactly like the stack tier falls back to the interpreter.
    pub fn new(prog: CompiledProgram) -> Self {
        Self::with_tier_lenient(prog, Tier::from_env())
    }

    /// Instantiates execution state on a specific tier, falling back from
    /// [`Tier::RegAlloc`] to [`Tier::Stack`] if translation fails.
    pub fn with_tier_lenient(prog: CompiledProgram, tier: Tier) -> Self {
        if tier == Tier::RegAlloc {
            if let Ok(wm) = WordMachine::compile(&prog) {
                return CompiledSim {
                    prog,
                    backend: Backend::Word(Box::new(wm)),
                };
            }
        }
        let st = Box::new(State::new(&prog));
        CompiledSim {
            prog,
            backend: Backend::Stack(st),
        }
    }

    /// Instantiates execution state on exactly the requested tier.
    ///
    /// # Errors
    ///
    /// Returns [`VlogError::Unsupported`] if the regalloc translation cannot
    /// handle the program (callers should fall back to [`Tier::Stack`]).
    pub fn with_tier(prog: CompiledProgram, tier: Tier) -> VlogResult<Self> {
        let backend = match tier {
            Tier::Stack => Backend::Stack(Box::new(State::new(&prog))),
            Tier::RegAlloc => match WordMachine::compile(&prog) {
                Ok(wm) => Backend::Word(Box::new(wm)),
                Err(e) => {
                    return Err(VlogError::Unsupported(format!(
                        "regalloc tier cannot translate this program: {}",
                        e
                    )))
                }
            },
        };
        Ok(CompiledSim { prog, backend })
    }

    /// Renders the regalloc tier's translated programs (debug aid; `None`
    /// on the stack tier).
    #[doc(hidden)]
    pub fn dump_word_programs(&self) -> Option<String> {
        match &self.backend {
            Backend::Stack(_) => None,
            Backend::Word(wm) => Some(wm.dump()),
        }
    }

    /// The execution tier actually in use.
    pub fn tier(&self) -> Tier {
        match &self.backend {
            Backend::Stack(_) => Tier::Stack,
            Backend::Word(_) => Tier::RegAlloc,
        }
    }

    /// The compiled program being executed.
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }

    /// Static three-address instruction count across all translated programs
    /// on the regalloc tier, `None` on the stack tier (whose static size is
    /// [`CompiledProgram::op_count`]). Together with `op_count` this is the
    /// "code footprint" pair the optimizer's `PassStats` report compares.
    pub fn word_op_count(&self) -> Option<usize> {
        match &self.backend {
            Backend::Stack(_) => None,
            Backend::Word(wm) => Some(wm.static_op_count()),
        }
    }

    /// Current simulation time (incremented by [`CompiledSim::tick`]).
    pub fn time(&self) -> u64 {
        match &self.backend {
            Backend::Stack(st) => st.time,
            Backend::Word(wm) => wm.time(),
        }
    }

    /// The exit code passed to `$finish`, if the program has finished.
    pub fn finished(&self) -> Option<u32> {
        match &self.backend {
            Backend::Stack(st) => st.finished,
            Backend::Word(wm) => wm.finished(),
        }
    }

    /// Drains control-flow effects raised since the last call.
    pub fn take_effects(&mut self) -> Vec<TaskEffect> {
        match &mut self.backend {
            Backend::Stack(st) => std::mem::take(&mut st.effects),
            Backend::Word(wm) => wm.take_effects(),
        }
    }

    /// Cumulative executor-internal telemetry counters (observability only —
    /// excluded from `save_state`/`restore_state` and every wire format).
    pub fn exec_counters(&self) -> ExecCounters {
        match &self.backend {
            Backend::Stack(st) => ExecCounters {
                settle_iters: st.settle_iters,
                worklist_drains: st.worklist_drains,
                guard_epoch_skips: 0,
                arena_regs: 0,
            },
            Backend::Word(wm) => wm.exec_counters(),
        }
    }

    /// Executor-specific detail for the most recent settle-cap failure: the
    /// non-blocking targets that never converged. `None` until such a
    /// failure occurs. The error message itself stays engine-identical; this
    /// side channel is what names the failing always-block site in
    /// postmortems.
    pub fn fault_detail(&self) -> Option<&str> {
        match &self.backend {
            Backend::Stack(st) => st.fault.as_deref(),
            Backend::Word(wm) => wm.fault_detail(),
        }
    }

    fn slot(&self, name: &str) -> VlogResult<SlotRef> {
        self.prog
            .slot(name)
            .ok_or_else(|| VlogError::Elaborate(format!("no such variable '{}'", name)))
    }

    /// Resolves a variable name to its net id (inputs, clocks).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names or memories.
    pub fn net_id(&self, name: &str) -> VlogResult<u32> {
        match self.slot(name)? {
            SlotRef::Net(i) => Ok(i),
            SlotRef::Mem(_) => Err(VlogError::Elaborate(format!(
                "cannot scalar-assign memory '{}'",
                name
            ))),
        }
    }

    /// Reads a variable's current value.
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    pub fn get(&self, name: &str) -> VlogResult<Value> {
        let slot = self.slot(name)?;
        Ok(match &self.backend {
            Backend::Stack(st) => match slot {
                SlotRef::Net(i) => Value::Scalar(st.nets[i as usize].to_bits()),
                SlotRef::Mem(i) => {
                    Value::Memory(st.mems[i as usize].elems.iter().map(Val::to_bits).collect())
                }
            },
            Backend::Word(wm) => wm.value_of(&self.prog, slot),
        })
    }

    /// Reads a scalar variable as `Bits` (memories read as element 0).
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    pub fn get_bits(&self, name: &str) -> VlogResult<Bits> {
        let slot = self.slot(name)?;
        Ok(match &self.backend {
            Backend::Stack(st) => match slot {
                SlotRef::Net(i) => st.nets[i as usize].to_bits(),
                SlotRef::Mem(i) => st.mems[i as usize].elems[0].to_bits(),
            },
            Backend::Word(wm) => wm.bits_of(&self.prog, slot),
        })
    }

    /// Writes a scalar variable (an input port, or any register).
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist or is a memory.
    pub fn set(&mut self, name: &str, value: Bits) -> VlogResult<()> {
        let id = self.net_id(name)?;
        self.set_net(id, &value);
        Ok(())
    }

    /// Writes a scalar net by id (the fast path for clock toggling).
    pub fn set_net(&mut self, id: u32, value: &Bits) {
        match &mut self.backend {
            Backend::Stack(st) => st.set_net(&self.prog, id, value),
            Backend::Word(wm) => wm.set_net(&self.prog, id, value),
        }
    }

    /// `true` if non-blocking assignments are waiting to be latched.
    pub fn there_are_updates(&self) -> bool {
        match &self.backend {
            Backend::Stack(st) => !st.nb.is_empty(),
            Backend::Word(wm) => wm.there_are_updates(),
        }
    }

    /// Runs `initial` blocks if they have not run yet.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the initial blocks.
    pub fn run_initials(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        match &mut self.backend {
            Backend::Stack(st) => st.run_initials(&self.prog, env),
            Backend::Word(wm) => wm.run_initials(&self.prog, env),
        }
    }

    /// Whether `initial` blocks have already executed.
    pub fn initials_run(&self) -> bool {
        match &self.backend {
            Backend::Stack(st) => st.initials_run,
            Backend::Word(wm) => wm.initials_run(),
        }
    }

    /// Marks `initial` blocks as executed *without* running them. Used when
    /// restoring captured state into a fresh simulator: the checkpointed
    /// program already ran its initials (and their environment side effects,
    /// such as `$fopen`), so replaying them would corrupt the restored run.
    pub fn mark_initials_run(&mut self) {
        match &mut self.backend {
            Backend::Stack(st) => st.initials_run = true,
            Backend::Word(wm) => wm.mark_initials_run(),
        }
    }

    /// Runs evaluation events to a fixed point (the `evaluate` ABI request).
    ///
    /// # Errors
    ///
    /// Returns an error on oscillating designs or malformed programs.
    pub fn evaluate(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        match &mut self.backend {
            Backend::Stack(st) => st.evaluate(&self.prog, env),
            Backend::Word(wm) => wm.evaluate(&self.prog, env),
        }
    }

    /// Latches pending non-blocking assignments (the `update` ABI request).
    /// Returns `true` if any were pending.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from index expressions.
    pub fn update(&mut self, env: &mut dyn SystemEnv) -> VlogResult<bool> {
        match &mut self.backend {
            Backend::Stack(st) => st.update(&self.prog, env),
            Backend::Word(wm) => wm.update(&self.prog, env),
        }
    }

    /// Runs evaluate/update until no more updates are pending.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`CompiledSim::evaluate`] and
    /// [`CompiledSim::update`], and rejects designs whose update rounds
    /// never drain (zero-delay self-triggering edges), exactly as the
    /// interpreter does.
    pub fn settle(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        match &mut self.backend {
            Backend::Stack(st) => st.settle(&self.prog, env),
            Backend::Word(wm) => wm.settle(&self.prog, env),
        }
    }

    /// Advances one full virtual clock cycle on the named clock input.
    ///
    /// # Errors
    ///
    /// Returns an error if the clock does not exist or evaluation fails.
    pub fn tick(&mut self, clock: &str, env: &mut dyn SystemEnv) -> VlogResult<()> {
        let id = self.net_id(clock)?;
        self.tick_net(id, env)
    }

    /// Advances one full virtual clock cycle on a pre-resolved clock net.
    ///
    /// # Errors
    ///
    /// Returns an error if evaluation fails.
    pub fn tick_net(&mut self, clock: u32, env: &mut dyn SystemEnv) -> VlogResult<()> {
        match &mut self.backend {
            Backend::Stack(st) => st.tick_net(&self.prog, clock, env),
            Backend::Word(wm) => wm.tick_net(&self.prog, clock, env),
        }
    }

    /// Captures the architectural state (registers and memories), in the same
    /// shape the interpreter produces.
    pub fn save_state(&self) -> StateSnapshot {
        match &self.backend {
            Backend::Stack(st) => st.save_state(&self.prog),
            Backend::Word(wm) => wm.save_state(&self.prog),
        }
    }

    /// Restores a previously captured snapshot (from this engine or the
    /// interpreter) and re-propagates combinational logic.
    pub fn restore_state(&mut self, snapshot: &StateSnapshot) {
        match &mut self.backend {
            Backend::Stack(st) => st.restore_state(&self.prog, snapshot),
            Backend::Word(wm) => wm.restore_state(&self.prog, snapshot),
        }
    }
}

// The hypervisor's parallel scheduler runs `CompiledSim`s on worker threads
// (one tenant per round job). Both backends are plain owned data — dense
// vectors of values and dirty bits, no shared interior mutability — so the
// simulator is `Send` by construction; this pins that property.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CompiledSim>();
    assert_send::<CompiledProgram>();
};
