//! The register-machine executor for [`CompiledProgram`]s.
//!
//! [`CompiledSim`] reproduces the reference interpreter's scheduling semantics
//! exactly — evaluate/update until fixpoint, edge-detected guards, per-tick
//! non-blocking latching — but over the compiled IR: dirty-bit driven
//! re-evaluation of the levelized combinational nodes (only affected cones
//! recompute) and straight-line bytecode dispatch for procedural bodies. State
//! capture produces the same [`StateSnapshot`] type the interpreter uses, so
//! snapshots migrate losslessly between the two engines (and onward to the
//! hardware engine).

use crate::ir::{binary, concat, slice, unary, CompiledProgram, Op, SlotRef, Val, MAX_LOOP_ITERS};
use std::collections::BTreeMap;
use synergy_interp::{StateSnapshot, SystemEnv, TaskEffect, Value};
use synergy_vlog::ast::Edge;
use synergy_vlog::{Bits, VlogError, VlogResult};

/// Upper bound on evaluate-loop iterations, mirroring the interpreter.
const MAX_PROPAGATION_ITERS: usize = 10_000;

/// Upper bound on evaluate/update rounds per settle, mirroring the
/// interpreter's cap (same limit, same error text) so self-triggering
/// designs fail identically on both engines.
const MAX_SETTLE_ITERS: usize = 1_000;

/// A no-op environment for guard evaluation and post-restore propagation,
/// mirroring the interpreter's `NullEnv`.
struct NoopEnv;

impl SystemEnv for NoopEnv {
    fn print(&mut self, _text: &str) {}
    fn fopen(&mut self, _path: &str) -> u32 {
        0
    }
    fn fread(&mut self, _fd: u32, _width: usize) -> Option<Bits> {
        None
    }
    fn feof(&mut self, _fd: u32) -> bool {
        true
    }
    fn fclose(&mut self, _fd: u32) {}
    fn random(&mut self) -> u32 {
        0
    }
}

/// One memory's contents.
#[derive(Debug, Clone)]
struct MemData {
    width: u32,
    elems: Vec<Val>,
}

/// Mutable execution state, split from the immutable program so bytecode can
/// borrow code slices while mutating values.
#[derive(Debug)]
struct State {
    nets: Vec<Val>,
    mems: Vec<MemData>,
    temps: Vec<Val>,
    loops: Vec<u64>,
    stack: Vec<Val>,
    value_reg: Val,
    print_buf: String,
    nb: Vec<(u32, Val)>,
    comb_dirty: Vec<bool>,
    comb_any: bool,
    guard_prev: Vec<Vec<Val>>,
    effects: Vec<TaskEffect>,
    time: u64,
    finished: Option<u32>,
    initials_run: bool,
}

/// A compiled design plus its execution state: the compiled software engine.
#[derive(Debug)]
pub struct CompiledSim {
    prog: CompiledProgram,
    st: State,
}

fn store_net(prog: &CompiledProgram, st: &mut State, net: u32, value: Val) {
    let width = prog.nets[net as usize].width as usize;
    let new = value.resize(width);
    let slot = &mut st.nets[net as usize];
    if *slot != new {
        *slot = new;
        mark_net(prog, st, net);
    }
}

fn mark_net(prog: &CompiledProgram, st: &mut State, net: u32) {
    for &pos in &prog.net_deps[net as usize] {
        st.comb_dirty[pos as usize] = true;
        st.comb_any = true;
    }
    // A write to a continuously driven net must also re-wake its driver so
    // the assigned value wins again, exactly as the interpreter's full
    // re-evaluation loop makes it win.
    if let Some(pos) = prog.net_driver[net as usize] {
        st.comb_dirty[pos as usize] = true;
        st.comb_any = true;
    }
}

fn mark_mem(prog: &CompiledProgram, st: &mut State, mem: u32) {
    for &pos in &prog.mem_deps[mem as usize] {
        st.comb_dirty[pos as usize] = true;
        st.comb_any = true;
    }
    // A write to a continuously driven memory re-wakes its element drivers,
    // exactly as `mark_net` re-wakes a driven net's driver.
    if let Some(pos) = prog.mem_driver[mem as usize] {
        st.comb_dirty[pos as usize] = true;
        st.comb_any = true;
    }
}

/// Runs one bytecode program to completion.
fn exec(
    prog: &CompiledProgram,
    st: &mut State,
    code: &[Op],
    env: &mut dyn SystemEnv,
) -> VlogResult<()> {
    let mut pc = 0usize;
    while pc < code.len() {
        match &code[pc] {
            Op::PushConst(i) => st.stack.push(prog.consts[*i as usize].clone()),
            Op::PushNet(i) => st.stack.push(st.nets[*i as usize].clone()),
            Op::PushMemElem0(i) => st.stack.push(st.mems[*i as usize].elems[0].clone()),
            Op::PushTime => st.stack.push(Val::Small(st.time, 64)),
            Op::PushValueReg => st.stack.push(st.value_reg.clone()),
            Op::MemRead(i) => {
                let idx = st.stack.pop().unwrap().to_u64() as usize;
                let mem = &st.mems[*i as usize];
                let v = mem
                    .elems
                    .get(idx)
                    .cloned()
                    .unwrap_or_else(|| Val::zero(mem.width as usize));
                st.stack.push(v);
            }
            Op::MemReadConst { mem, elem } => {
                let mem = &st.mems[*mem as usize];
                let v = mem
                    .elems
                    .get(*elem as usize)
                    .cloned()
                    .unwrap_or_else(|| Val::zero(mem.width as usize));
                st.stack.push(v);
            }
            Op::BitSelect => {
                let base = st.stack.pop().unwrap();
                let idx = st.stack.pop().unwrap().to_u64() as usize;
                st.stack.push(Val::Small(base.bit(idx) as u64, 1));
            }
            Op::SliceConst { hi, lo } => {
                let base = st.stack.pop().unwrap();
                st.stack.push(slice(&base, *hi as usize, *lo as usize));
            }
            Op::SliceDyn => {
                let lo = st.stack.pop().unwrap().to_u64() as usize;
                let hi = st.stack.pop().unwrap().to_u64() as usize;
                let base = st.stack.pop().unwrap();
                st.stack.push(slice(&base, hi.max(lo), hi.min(lo)));
            }
            Op::Unary(op) => {
                let a = st.stack.pop().unwrap();
                st.stack.push(unary(*op, &a));
            }
            Op::Binary(op) => {
                let b = st.stack.pop().unwrap();
                let a = st.stack.pop().unwrap();
                st.stack.push(binary(*op, &a, &b));
            }
            Op::Concat2 => {
                let b = st.stack.pop().unwrap();
                let a = st.stack.pop().unwrap();
                st.stack.push(concat(&a, &b));
            }
            Op::ReplicateDyn => {
                let v = st.stack.pop().unwrap();
                let n = st.stack.pop().unwrap().to_u64() as usize;
                st.stack.push(Val::from_bits(&v.to_bits().replicate(n)));
            }
            Op::Resize(w) => {
                let v = st.stack.pop().unwrap();
                st.stack.push(v.resize(*w as usize));
            }
            Op::Jump(t) => {
                pc = *t as usize;
                continue;
            }
            Op::JumpIfZero(t) => {
                if !st.stack.pop().unwrap().to_bool() {
                    pc = *t as usize;
                    continue;
                }
            }
            Op::JumpIfNonZero(t) => {
                if st.stack.pop().unwrap().to_bool() {
                    pc = *t as usize;
                    continue;
                }
            }
            Op::JumpIfNotFinished(t) => {
                if st.finished.is_none() {
                    pc = *t as usize;
                    continue;
                }
            }
            Op::CheckFinished(t) => {
                if st.finished.is_some() {
                    pc = *t as usize;
                    continue;
                }
            }
            Op::StoreTemp(i) => st.temps[*i as usize] = st.stack.pop().unwrap(),
            Op::PushTemp(i) => st.stack.push(st.temps[*i as usize].clone()),
            Op::Pop => {
                st.stack.pop();
            }
            Op::StoreNet(i) => {
                let v = st.stack.pop().unwrap();
                store_net(prog, st, *i, v);
            }
            Op::StoreMem(i) => {
                let idx = st.stack.pop().unwrap().to_u64() as usize;
                let value = st.stack.pop().unwrap();
                let mem = &mut st.mems[*i as usize];
                if idx < mem.elems.len() {
                    let new = value.resize(mem.width as usize);
                    if mem.elems[idx] != new {
                        mem.elems[idx] = new;
                        mark_mem(prog, st, *i);
                    }
                }
            }
            Op::StoreMemConst { mem, elem } => {
                let value = st.stack.pop().unwrap();
                let idx = *elem as usize;
                let m = &mut st.mems[*mem as usize];
                if idx < m.elems.len() {
                    let new = value.resize(m.width as usize);
                    if m.elems[idx] != new {
                        m.elems[idx] = new;
                        mark_mem(prog, st, *mem);
                    }
                }
            }
            Op::StoreBit(i) => {
                let idx = st.stack.pop().unwrap().to_u64() as usize;
                let value = st.stack.pop().unwrap();
                let width = prog.nets[*i as usize].width as usize;
                if idx < width {
                    let new_bit = value.bit(0);
                    let slot = &mut st.nets[*i as usize];
                    let changed = match slot {
                        Val::Small(v, _) => {
                            let old = (*v >> idx) & 1 == 1;
                            if new_bit {
                                *v |= 1 << idx;
                            } else {
                                *v &= !(1 << idx);
                            }
                            old != new_bit
                        }
                        Val::Big(b) => {
                            let old = b.bit(idx);
                            b.set_bit(idx, new_bit);
                            old != new_bit
                        }
                    };
                    if changed {
                        mark_net(prog, st, *i);
                    }
                }
            }
            Op::StoreSliceDyn(i) => {
                let lo = st.stack.pop().unwrap().to_u64() as usize;
                let hi = st.stack.pop().unwrap().to_u64() as usize;
                let value = st.stack.pop().unwrap();
                let (hi, lo) = (hi.max(lo), hi.min(lo));
                let slot = &mut st.nets[*i as usize];
                let old = slot.clone();
                let mut b = slot.to_bits();
                b.set_slice(hi, lo, &value.to_bits());
                let new = Val::from_bits(&b);
                if new != old {
                    *slot = new;
                    mark_net(prog, st, *i);
                }
            }
            Op::NbSchedule(site) => {
                let v = st.stack.pop().unwrap();
                st.nb.push((*site, v));
            }
            Op::LoopInit(slot) => st.loops[*slot as usize] = 0,
            Op::LoopCheck(slot) => {
                let c = &mut st.loops[*slot as usize];
                *c += 1;
                if *c > MAX_LOOP_ITERS {
                    return Err(VlogError::Elaborate(
                        "for loop exceeded iteration cap".into(),
                    ));
                }
            }
            Op::RepeatInit(slot) => {
                let n = st.stack.pop().unwrap().to_u64();
                st.loops[*slot as usize] = n.min(MAX_LOOP_ITERS);
            }
            Op::RepeatTest { slot, end } => {
                let c = &mut st.loops[*slot as usize];
                if *c == 0 {
                    pc = *end as usize;
                    continue;
                }
                *c -= 1;
            }
            Op::Fopen(s) => {
                let fd = env.fopen(&prog.strings[*s as usize]);
                st.stack.push(Val::Small(fd as u64, 32));
            }
            Op::Feof => {
                let fd = st.stack.pop().unwrap().to_u64() as u32;
                st.stack.push(Val::Small(env.feof(fd) as u64, 1));
            }
            Op::Random => st.stack.push(Val::Small(env.random() as u64, 32)),
            Op::Fread { width, skip } => {
                let fd = st.stack.pop().unwrap().to_u64() as u32;
                match env.fread(fd, *width as usize) {
                    Some(v) => st.value_reg = Val::from_bits(&v),
                    None => {
                        pc = *skip as usize;
                        continue;
                    }
                }
            }
            Op::Fclose => {
                let fd = st.stack.pop().unwrap().to_u64() as u32;
                env.fclose(fd);
            }
            Op::PrintStr(s) => st.print_buf.push_str(&prog.strings[*s as usize]),
            Op::PrintVal => {
                let v = st.stack.pop().unwrap();
                st.print_buf.push_str(&v.to_dec_string());
            }
            Op::PrintFlush { newline } => {
                if *newline {
                    st.print_buf.push('\n');
                }
                let text = std::mem::take(&mut st.print_buf);
                env.print(&text);
            }
            Op::Finish => {
                let code_val = st.stack.pop().unwrap().to_u64() as u32;
                st.finished = Some(code_val);
                st.effects.push(TaskEffect::Finish(code_val));
            }
            Op::Effect(i) => st.effects.push(prog.effects[*i as usize].clone()),
        }
        pc += 1;
    }
    Ok(())
}

impl CompiledSim {
    /// Instantiates execution state for a compiled program, with registers at
    /// their declared reset values.
    pub fn new(prog: CompiledProgram) -> Self {
        let nets = prog
            .nets
            .iter()
            .map(|n| match &n.init {
                Some(b) => Val::from_bits(b),
                None => Val::zero(n.width as usize),
            })
            .collect();
        let mems = prog
            .mems
            .iter()
            .map(|m| MemData {
                width: m.width,
                elems: vec![Val::zero(m.width as usize); m.depth as usize],
            })
            .collect();
        let st = State {
            nets,
            mems,
            temps: vec![Val::zero(1); prog.n_temps as usize],
            loops: vec![0; prog.n_loops as usize],
            stack: Vec::with_capacity(16),
            value_reg: Val::zero(1),
            print_buf: String::new(),
            nb: Vec::new(),
            comb_dirty: vec![true; prog.comb.len()],
            comb_any: !prog.comb.is_empty(),
            guard_prev: prog
                .always
                .iter()
                .map(|a| vec![Val::zero(1); a.guards.len()])
                .collect(),
            effects: Vec::new(),
            time: 0,
            finished: None,
            initials_run: false,
        };
        CompiledSim { prog, st }
    }

    /// The compiled program being executed.
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }

    /// Current simulation time (incremented by [`CompiledSim::tick`]).
    pub fn time(&self) -> u64 {
        self.st.time
    }

    /// The exit code passed to `$finish`, if the program has finished.
    pub fn finished(&self) -> Option<u32> {
        self.st.finished
    }

    /// Drains control-flow effects raised since the last call.
    pub fn take_effects(&mut self) -> Vec<TaskEffect> {
        std::mem::take(&mut self.st.effects)
    }

    fn slot(&self, name: &str) -> VlogResult<SlotRef> {
        self.prog
            .slot(name)
            .ok_or_else(|| VlogError::Elaborate(format!("no such variable '{}'", name)))
    }

    /// Resolves a variable name to its net id (inputs, clocks).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names or memories.
    pub fn net_id(&self, name: &str) -> VlogResult<u32> {
        match self.slot(name)? {
            SlotRef::Net(i) => Ok(i),
            SlotRef::Mem(_) => Err(VlogError::Elaborate(format!(
                "cannot scalar-assign memory '{}'",
                name
            ))),
        }
    }

    /// Reads a variable's current value.
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    pub fn get(&self, name: &str) -> VlogResult<Value> {
        Ok(match self.slot(name)? {
            SlotRef::Net(i) => Value::Scalar(self.st.nets[i as usize].to_bits()),
            SlotRef::Mem(i) => Value::Memory(
                self.st.mems[i as usize]
                    .elems
                    .iter()
                    .map(Val::to_bits)
                    .collect(),
            ),
        })
    }

    /// Reads a scalar variable as `Bits` (memories read as element 0).
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    pub fn get_bits(&self, name: &str) -> VlogResult<Bits> {
        Ok(match self.slot(name)? {
            SlotRef::Net(i) => self.st.nets[i as usize].to_bits(),
            SlotRef::Mem(i) => self.st.mems[i as usize].elems[0].to_bits(),
        })
    }

    /// Writes a scalar variable (an input port, or any register).
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist or is a memory.
    pub fn set(&mut self, name: &str, value: Bits) -> VlogResult<()> {
        let id = self.net_id(name)?;
        self.set_net(id, &value);
        Ok(())
    }

    /// Writes a scalar net by id (the fast path for clock toggling).
    pub fn set_net(&mut self, id: u32, value: &Bits) {
        let width = self.prog.nets[id as usize].width as usize;
        let new = Val::from_bits(value).resize(width);
        self.st.nets[id as usize] = new;
        mark_net(&self.prog, &mut self.st, id);
    }

    /// `true` if non-blocking assignments are waiting to be latched.
    pub fn there_are_updates(&self) -> bool {
        !self.st.nb.is_empty()
    }

    /// Re-evaluates dirty combinational cones in level order.
    fn propagate(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        if !self.st.comb_any {
            return Ok(());
        }
        for i in 0..self.prog.comb.len() {
            if !self.st.comb_dirty[i] {
                continue;
            }
            exec(&self.prog, &mut self.st, &self.prog.comb[i].code, env)?;
            // Clear after executing: the node's own store re-marks it (as the
            // target's driver), and that self-mark is already satisfied.
            self.st.comb_dirty[i] = false;
        }
        // Nodes are in topological order, so a single forward pass reaches the
        // fixpoint; anything marked during the pass sat strictly ahead of the
        // cursor and has been processed.
        self.st.comb_any = false;
        Ok(())
    }

    /// Determines which always blocks fire, updating stored guard values —
    /// the same edge-detection algorithm as the interpreter.
    fn triggered_blocks(&mut self) -> Vec<usize> {
        let mut triggered = Vec::new();
        for idx in 0..self.prog.always.len() {
            let ap = &self.prog.always[idx];
            if ap.guards.is_empty() {
                if self.st.guard_prev[idx].len() != ap.star.len() {
                    self.st.guard_prev[idx] = vec![Val::zero(1); ap.star.len()];
                }
                let mut fired = false;
                for (eidx, s) in ap.star.iter().enumerate() {
                    let current = match s {
                        SlotRef::Net(i) => &self.st.nets[*i as usize],
                        SlotRef::Mem(i) => &self.st.mems[*i as usize].elems[0],
                    };
                    if self.st.guard_prev[idx][eidx] != *current {
                        fired = true;
                        self.st.guard_prev[idx][eidx] = current.clone();
                    }
                }
                if fired {
                    triggered.push(idx);
                }
                continue;
            }
            let mut fired = false;
            for (eidx, (edge, code)) in ap.guards.iter().enumerate() {
                let mut noop = NoopEnv;
                let current = match exec(&self.prog, &mut self.st, code, &mut noop) {
                    Ok(()) => self.st.stack.pop().unwrap_or_else(|| Val::zero(1)),
                    Err(_) => {
                        self.st.stack.clear();
                        Val::zero(1)
                    }
                };
                let prev = &mut self.st.guard_prev[idx][eidx];
                fired |= match edge {
                    Edge::Pos => !prev.bit(0) && current.bit(0),
                    Edge::Neg => prev.bit(0) && !current.bit(0),
                    Edge::Any => *prev != current,
                };
                *prev = current;
            }
            if fired {
                triggered.push(idx);
            }
        }
        triggered
    }

    /// Runs `initial` blocks if they have not run yet.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the initial blocks.
    pub fn run_initials(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        if self.st.initials_run {
            return Ok(());
        }
        self.st.initials_run = true;
        for i in 0..self.prog.initials.len() {
            exec(&self.prog, &mut self.st, &self.prog.initials[i], env)?;
        }
        Ok(())
    }

    /// Runs evaluation events to a fixed point (the `evaluate` ABI request).
    ///
    /// # Errors
    ///
    /// Returns an error on oscillating designs or malformed programs.
    pub fn evaluate(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        self.run_initials(env)?;
        let mut iterations = 0usize;
        loop {
            self.propagate(env)?;
            let triggered = self.triggered_blocks();
            if triggered.is_empty() {
                return Ok(());
            }
            for idx in triggered {
                if self.st.finished.is_some() {
                    return Ok(());
                }
                exec(&self.prog, &mut self.st, &self.prog.always[idx].body, env)?;
                self.propagate(env)?;
            }
            iterations += 1;
            if iterations > MAX_PROPAGATION_ITERS {
                return Err(VlogError::Elaborate(
                    "always blocks did not stabilise (oscillating design?)".into(),
                ));
            }
        }
    }

    /// Latches pending non-blocking assignments (the `update` ABI request).
    /// Returns `true` if any were pending.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from index expressions.
    pub fn update(&mut self, env: &mut dyn SystemEnv) -> VlogResult<bool> {
        if self.st.nb.is_empty() {
            return Ok(false);
        }
        let pending = std::mem::take(&mut self.st.nb);
        for (site, value) in pending {
            self.st.value_reg = value;
            exec(
                &self.prog,
                &mut self.st,
                &self.prog.nb_sites[site as usize],
                env,
            )?;
        }
        Ok(true)
    }

    /// Runs evaluate/update until no more updates are pending.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`CompiledSim::evaluate`] and
    /// [`CompiledSim::update`], and rejects designs whose update rounds
    /// never drain (zero-delay self-triggering edges), exactly as the
    /// interpreter does.
    pub fn settle(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        for _ in 0..MAX_SETTLE_ITERS {
            self.evaluate(env)?;
            if !self.update(env)? {
                return Ok(());
            }
        }
        Err(VlogError::Elaborate(
            "non-blocking updates did not converge (self-triggering design?)".into(),
        ))
    }

    /// Advances one full virtual clock cycle on the named clock input.
    ///
    /// # Errors
    ///
    /// Returns an error if the clock does not exist or evaluation fails.
    pub fn tick(&mut self, clock: &str, env: &mut dyn SystemEnv) -> VlogResult<()> {
        let id = self.net_id(clock)?;
        self.tick_net(id, env)
    }

    /// Advances one full virtual clock cycle on a pre-resolved clock net.
    ///
    /// # Errors
    ///
    /// Returns an error if evaluation fails.
    pub fn tick_net(&mut self, clock: u32, env: &mut dyn SystemEnv) -> VlogResult<()> {
        self.set_net(clock, &Bits::from_u64(1, 1));
        self.settle(env)?;
        self.set_net(clock, &Bits::from_u64(1, 0));
        self.settle(env)?;
        self.st.time += 1;
        Ok(())
    }

    /// Captures the architectural state (registers and memories), in the same
    /// shape the interpreter produces.
    pub fn save_state(&self) -> StateSnapshot {
        let mut values = BTreeMap::new();
        for (name, slot) in &self.prog.slots {
            match slot {
                SlotRef::Net(i) => {
                    let decl = &self.prog.nets[*i as usize];
                    if decl.is_register {
                        values.insert(
                            name.clone(),
                            Value::Scalar(self.st.nets[*i as usize].to_bits()),
                        );
                    }
                }
                SlotRef::Mem(i) => {
                    let decl = &self.prog.mems[*i as usize];
                    if decl.is_register {
                        values.insert(
                            name.clone(),
                            Value::Memory(
                                self.st.mems[*i as usize]
                                    .elems
                                    .iter()
                                    .map(Val::to_bits)
                                    .collect(),
                            ),
                        );
                    }
                }
            }
        }
        StateSnapshot {
            values,
            time: self.st.time,
        }
    }

    /// Restores a previously captured snapshot (from this engine or the
    /// interpreter) and re-propagates combinational logic.
    pub fn restore_state(&mut self, snapshot: &StateSnapshot) {
        for (name, value) in &snapshot.values {
            match (self.prog.slot(name), value) {
                (Some(SlotRef::Net(i)), Value::Scalar(b)) => {
                    self.st.nets[i as usize] = Val::from_bits(b);
                }
                (Some(SlotRef::Mem(i)), Value::Memory(elems)) => {
                    self.st.mems[i as usize].elems = elems.iter().map(Val::from_bits).collect();
                }
                _ => {}
            }
        }
        self.st.time = snapshot.time;
        for d in self.st.comb_dirty.iter_mut() {
            *d = true;
        }
        self.st.comb_any = !self.prog.comb.is_empty();
        let mut noop = NoopEnv;
        let _ = self.propagate(&mut noop);
    }
}

// The hypervisor's parallel scheduler runs `CompiledSim`s on worker threads
// (one tenant per round job). The value arena (`State`) is plain owned data —
// dense vectors of values and dirty bits, no shared interior mutability — so
// the simulator is `Send` by construction; this pins that property.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CompiledSim>();
    assert_send::<CompiledProgram>();
};
